//! Differential tests proving the optimized kernels bit-equal to their
//! retained naive references for *all* inputs:
//!
//! * bounded SAD ([`me::sad_mb_bounded`]) vs. the exhaustive
//!   [`me::sad_mb`], including vectors that reach outside the frame and
//!   exercise border clamping;
//! * the fused `dct→quant→zigzag` kernel
//!   ([`pbpair_codec::fused::fdct_quant_scan`]) vs. the separate
//!   three-pass pipeline, over the full QP range 1..=31;
//! * the predicted-candidate pruning search ([`me::search_fast`]) vs.
//!   the naive [`me::search`], for both strategies and arbitrary
//!   prepass candidate lists — the optimized search must return the
//!   *identical* winner (vector, SAD, and cost) while never executing
//!   more SAD operations;
//! * every SIMD kernel tier ([`Kernels::available`]) vs. the scalar
//!   reference tier, per kernel — SAD, bounded SAD (value *and* op
//!   count), forward/inverse DCT, the fused transform, half-pel motion
//!   compensation, and the reconstruction rows — over arbitrary pixels,
//!   the full QP range, border-clamped vectors, and coefficients far
//!   outside what a legal bitstream can produce;
//! * the bounded-SAD caller contract: a deliberately coarser
//!   check granularity ([`Kernels::coarse2_for_tests`]) must still
//!   yield winner-identical searches
//!   ([`coarse_bounded_sad_is_winner_identical`]).

use pbpair_codec::blockcode::block_is_coded;
use pbpair_codec::fused::{fdct_quant_scan, fdct_quant_scan_with};
use pbpair_codec::mb::SubPelVector;
use pbpair_codec::mc::{
    predict_chroma_subpel_with, predict_luma_subpel_with, CHROMA_BLOCK, LUMA_BLOCK,
};
use pbpair_codec::me::{self, MvCandidates};
use pbpair_codec::quant::{dequantize_block, quantize_block};
use pbpair_codec::{dct, zigzag};
use pbpair_codec::{Kernels, MeConfig, MotionVector, Qp, SearchStrategy};
use pbpair_media::{MbIndex, Plane};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic pseudo-random plane. Generating from a seed keeps the
/// proptest cases small (one u64 shrinks much better than 12k pixels).
fn random_plane(width: usize, height: usize, seed: u64) -> Plane {
    let mut rng = StdRng::seed_from_u64(seed);
    Plane::from_fn(width, height, |_, _| rng.gen())
}

/// A plane with smooth content plus noise — more like video than white
/// noise, so searches have meaningful minima.
fn textured_plane(width: usize, height: usize, seed: u64) -> Plane {
    let mut rng = StdRng::seed_from_u64(seed);
    Plane::from_fn(width, height, |x, y| {
        let base = ((x / 7) * 13 + (y / 5) * 29) as u8;
        base.wrapping_add(rng.gen_range(0..32))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// With an infinite limit the bounded SAD degenerates to the full
    /// SAD (and charges the full 256 ops); with a finite limit its
    /// result is a valid SAD whenever it comes back under the limit.
    /// Vectors deliberately reach past every frame border.
    #[test]
    fn bounded_sad_equals_naive_sad(
        seed in any::<u64>(),
        mb_row in 0usize..6,
        mb_col in 0usize..8,
        mv_x in -24i16..=24,
        mv_y in -24i16..=24,
        limit in 1u64..60_000,
    ) {
        let cur = random_plane(128, 96, seed);
        let reference = random_plane(128, 96, seed.wrapping_add(1));
        let mb = MbIndex::new(mb_row, mb_col);
        let mv = MotionVector::new(mv_x, mv_y);
        let naive = me::sad_mb(&cur, &reference, mb, mv);

        let (full, full_ops) = me::sad_mb_bounded(&cur, &reference, mb, mv, u64::MAX);
        prop_assert_eq!(full, naive);
        prop_assert_eq!(full_ops, 256);

        let (bounded, ops) = me::sad_mb_bounded(&cur, &reference, mb, mv, limit);
        prop_assert!(ops <= 256);
        if bounded < limit {
            // Came in under the limit ⇒ must be the exact SAD.
            prop_assert_eq!(bounded, naive);
            prop_assert_eq!(ops, 256);
        } else {
            // Abandoned ⇒ the partial sum is a lower bound on the SAD.
            prop_assert!(bounded <= naive);
        }
    }

    /// The fused kernel's zigzag levels and coded flag equal the separate
    /// `dct::forward → quantize_block → zigzag::scan` pipeline for every
    /// QP and both block classes. Intra blocks see pixel-range input,
    /// inter blocks residual-range input.
    #[test]
    fn fused_transform_equals_separate_pipeline(
        seed in any::<u64>(),
        qp_v in 1u8..=31,
        intra in any::<bool>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let spatial: [i32; 64] = std::array::from_fn(|_| {
            if intra { rng.gen_range(0..=255) } else { rng.gen_range(-255..=255) }
        });
        let qp = Qp::new(qp_v).unwrap();

        let mut freq = [0i32; 64];
        dct::forward(&spatial, &mut freq);
        let levels = quantize_block(&freq, qp, intra);
        let want_zig = zigzag::scan(&levels);
        let want_coded = block_is_coded(&want_zig, usize::from(intra));

        let mut got_zig = [0i32; 64];
        let got_coded = fdct_quant_scan(&spatial, qp, intra, &mut got_zig);
        prop_assert_eq!(got_zig, want_zig);
        prop_assert_eq!(got_coded, want_coded);
    }

    /// `search_fast` returns the naive search's exact winner — vector,
    /// SAD, and biased cost — for both strategies, any bias, and *any*
    /// prepass candidate list, while never doing more SAD work. The
    /// prepass only tightens the pruning bound; it must never be able to
    /// change the outcome.
    #[test]
    fn fast_search_equals_naive_search(
        seed in any::<u64>(),
        mb_row in 0usize..6,
        mb_col in 0usize..8,
        full in any::<bool>(),
        range in prop::sample::select(vec![4u8, 7, 15]),
        bias_scale in 0i64..=40,
        cand_seeds in prop::collection::vec((-20i16..=20, -20i16..=20), 0..4),
    ) {
        let cur = textured_plane(128, 96, seed);
        let reference = textured_plane(128, 96, seed.wrapping_add(7));
        let mb = MbIndex::new(mb_row, mb_col);
        let cfg = MeConfig {
            search_range: range,
            strategy: if full { SearchStrategy::Full } else { SearchStrategy::ThreeStep },
        };
        let mut bias = |mv: MotionVector| {
            (mv.x.abs() as i64 + mv.y.abs() as i64) * bias_scale
        };
        let mut cands = MvCandidates::default();
        for (x, y) in cand_seeds {
            cands.push_clamped(MotionVector::new(x, y), range);
        }

        let naive = me::search(&cur, &reference, mb, cfg, &mut bias);
        let fast = me::search_fast(&cur, &reference, mb, cfg, &mut bias, &cands);

        prop_assert_eq!(fast.mv, naive.mv, "winning vector diverged");
        prop_assert_eq!(fast.sad, naive.sad, "winning SAD diverged");
        prop_assert_eq!(fast.cost, naive.cost, "winning cost diverged");
        prop_assert!(
            fast.sad_ops <= naive.sad_ops,
            "fast search did more work: {} vs {}",
            fast.sad_ops,
            naive.sad_ops
        );
    }
}

/// Corner macroblocks with the window reaching fully outside the frame:
/// the clamped-border code path of both SAD kernels and both searches.
#[test]
fn fast_search_equals_naive_at_frame_borders() {
    let cur = textured_plane(128, 96, 1001);
    let reference = textured_plane(128, 96, 1002);
    // All four corner MBs and the centre of each edge of an 8×6 grid.
    let corners = [
        (0, 0),
        (0, 7),
        (5, 0),
        (5, 7),
        (0, 3),
        (5, 3),
        (2, 0),
        (2, 7),
    ];
    for strategy in [SearchStrategy::Full, SearchStrategy::ThreeStep] {
        let cfg = MeConfig {
            search_range: 15,
            strategy,
        };
        for (row, col) in corners {
            let mb = MbIndex::new(row, col);
            let naive = me::search(&cur, &reference, mb, cfg, &mut |_| 0);
            let fast = me::search_fast(
                &cur,
                &reference,
                mb,
                cfg,
                &mut |_| 0,
                &MvCandidates::default(),
            );
            assert_eq!(fast.mv, naive.mv, "mb ({row},{col}) {strategy:?}");
            assert_eq!(fast.sad, naive.sad, "mb ({row},{col}) {strategy:?}");
            assert_eq!(fast.cost, naive.cost, "mb ({row},{col}) {strategy:?}");
        }
    }
}

/// The clamp in `push_clamped` must keep every prepass candidate inside
/// the legal window even when fed out-of-range predictions, so the fast
/// search never evaluates an illegal vector.
#[test]
fn candidate_clamping_respects_the_search_window() {
    let mut cands = MvCandidates::default();
    cands.push_clamped(MotionVector::new(100, -100), 15);
    cands.push_clamped(MotionVector::new(-3, 127), 7);
    for mv in cands.as_slice() {
        assert!(mv.x.abs() <= 15 && mv.y.abs() <= 15, "unclamped {mv:?}");
    }
}

// ---------------------------------------------------------------------
// Per-tier differential matrix: every SIMD tier against the scalar
// reference, kernel by kernel. Each property loops over
// `Kernels::available()` so the same binary exercises scalar-only hosts
// and AVX2 hosts alike; forcing a tier via PBPAIR_KERNELS is *not*
// needed for coverage here (the CI dispatch matrix covers the
// process-global selection path instead).
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// SAD and bounded SAD are tier-invariant in both the accumulated
    /// value and the charged op count, for interior *and* border-clamped
    /// candidates and every abandonment limit.
    #[test]
    fn sad_kernels_match_scalar_on_every_tier(
        seed in any::<u64>(),
        mb_row in 0usize..6,
        mb_col in 0usize..8,
        mv_x in -24i16..=24,
        mv_y in -24i16..=24,
        limit in 1u64..60_000,
    ) {
        let cur = random_plane(128, 96, seed);
        let reference = random_plane(128, 96, seed.wrapping_add(1));
        let mb = MbIndex::new(mb_row, mb_col);
        let mv = MotionVector::new(mv_x, mv_y);
        let scalar = Kernels::scalar();
        let want_full = me::sad_mb_with(scalar, &cur, &reference, mb, mv);
        let want_bounded = me::sad_mb_bounded_with(scalar, &cur, &reference, mb, mv, limit);
        for tier in Kernels::available() {
            let k = Kernels::get(tier).expect("available tier resolves");
            prop_assert_eq!(
                me::sad_mb_with(k, &cur, &reference, mb, mv),
                want_full,
                "sad16 diverged on {}", tier
            );
            prop_assert_eq!(
                me::sad_mb_bounded_with(k, &cur, &reference, mb, mv, limit),
                want_bounded,
                "sad16_bounded (acc, ops) diverged on {}", tier
            );
        }
    }

    /// Forward DCT, inverse DCT, and the fused transform are
    /// tier-invariant over pixel-range intra blocks, residual-range
    /// inter blocks, every QP, and — for the inverse — both legal
    /// dequantized coefficients and the oversized values a corrupt
    /// bitstream can produce (which must take the scalar fallback).
    #[test]
    fn transform_kernels_match_scalar_on_every_tier(
        seed in any::<u64>(),
        qp_v in 1u8..=31,
        intra in any::<bool>(),
        corrupt in any::<bool>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let spatial: [i32; 64] = std::array::from_fn(|_| {
            if intra { rng.gen_range(0..=255) } else { rng.gen_range(-255..=255) }
        });
        let qp = Qp::new(qp_v).unwrap();
        let scalar = Kernels::scalar();

        let mut want_freq = [0i32; 64];
        scalar.fdct8(&spatial, &mut want_freq);
        let mut want_zig = [0i32; 64];
        let want_coded = fdct_quant_scan_with(scalar, &spatial, qp, intra, &mut want_zig);

        // Inverse input: a genuine quantize→dequantize round trip, or —
        // when `corrupt` — coefficient magnitudes only a damaged stream
        // can carry (far outside the SIMD gate).
        let coefs: [i32; 64] = if corrupt {
            std::array::from_fn(|_| rng.gen_range(-300_000..=300_000))
        } else {
            let levels = quantize_block(&want_freq, qp, intra);
            dequantize_block(&levels, qp, intra)
        };
        let mut want_spatial = [0i32; 64];
        scalar.idct8(&coefs, &mut want_spatial);

        for tier in Kernels::available() {
            let k = Kernels::get(tier).expect("available tier resolves");
            let mut got = [0i32; 64];
            k.fdct8(&spatial, &mut got);
            prop_assert_eq!(got, want_freq, "fdct8 diverged on {}", tier);
            let mut got_zig = [0i32; 64];
            let got_coded = fdct_quant_scan_with(k, &spatial, qp, intra, &mut got_zig);
            prop_assert_eq!(got_zig, want_zig, "fused levels diverged on {}", tier);
            prop_assert_eq!(got_coded, want_coded, "fused coded flag diverged on {}", tier);
            let mut got_sp = [0i32; 64];
            k.idct8(&coefs, &mut got_sp);
            prop_assert_eq!(got_sp, want_spatial, "idct8 diverged on {}", tier);
        }
    }

    /// Half-pel motion compensation (luma 16×16 and chroma 8×8, all four
    /// phases, border-clamped vectors included) is tier-invariant.
    #[test]
    fn motion_comp_matches_scalar_on_every_tier(
        seed in any::<u64>(),
        mb_row in 0usize..6,
        mb_col in 0usize..8,
        hx in -40i16..=40,
        hy in -40i16..=40,
    ) {
        let reference = random_plane(128, 96, seed);
        let mb = MbIndex::new(mb_row, mb_col);
        let mv = SubPelVector::from_half_units(hx, hy);
        let scalar = Kernels::scalar();
        let mut want_y = [0u8; LUMA_BLOCK * LUMA_BLOCK];
        predict_luma_subpel_with(scalar, &reference, mb, mv, &mut want_y);
        let mut want_c = [0u8; CHROMA_BLOCK * CHROMA_BLOCK];
        predict_chroma_subpel_with(scalar, &reference, mb, mv, &mut want_c);
        for tier in Kernels::available() {
            let k = Kernels::get(tier).expect("available tier resolves");
            let mut got_y = [0u8; LUMA_BLOCK * LUMA_BLOCK];
            predict_luma_subpel_with(k, &reference, mb, mv, &mut got_y);
            prop_assert_eq!(&got_y[..], &want_y[..], "luma half-pel diverged on {}", tier);
            let mut got_c = [0u8; CHROMA_BLOCK * CHROMA_BLOCK];
            predict_chroma_subpel_with(k, &reference, mb, mv, &mut got_c);
            prop_assert_eq!(&got_c[..], &want_c[..], "chroma half-pel diverged on {}", tier);
        }
    }

    /// The reconstruction row kernels clamp identically on every tier,
    /// including residuals far outside the ±255 a legal stream yields.
    #[test]
    fn reconstruction_rows_match_scalar_on_every_tier(
        seed in any::<u64>(),
        wild in any::<bool>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let pred: [u8; 8] = std::array::from_fn(|_| rng.gen());
        let data: [i32; 8] = std::array::from_fn(|_| {
            if wild { rng.gen_range(-100_000..=100_000) } else { rng.gen_range(-512..=512) }
        });
        let scalar = Kernels::scalar();
        let mut want_add = [0u8; 8];
        scalar.add_residual8(&mut want_add, &pred, &data);
        let mut want_store = [0u8; 8];
        scalar.store_clamped8(&mut want_store, &data);
        for tier in Kernels::available() {
            let k = Kernels::get(tier).expect("available tier resolves");
            let mut got = [0u8; 8];
            k.add_residual8(&mut got, &pred, &data);
            prop_assert_eq!(got, want_add, "add_residual8 diverged on {}", tier);
            let mut got = [0u8; 8];
            k.store_clamped8(&mut got, &data);
            prop_assert_eq!(got, want_store, "store_clamped8 diverged on {}", tier);
        }
    }
}

/// The `sad_mb_bounded` caller contract ([`me::sad_mb_bounded`] § Contract)
/// promises that any check granularity yields winner-identical searches:
/// searches adopt a candidate only when `sad < limit`, and in that regime
/// the accumulated value is the *exact* SAD regardless of how often the
/// kernel compared against the limit. This test drives the deliberately
/// coarser two-row-granularity tier ([`Kernels::coarse2_for_tests`])
/// through both search strategies and requires the identical winner —
/// vector, SAD, and cost — while only the op counts may differ.
#[test]
fn coarse_bounded_sad_is_winner_identical() {
    let scalar = Kernels::scalar();
    let coarse = Kernels::coarse2_for_tests();

    // Point contract check first: wherever the coarse kernel comes back
    // under the limit it must equal the exact SAD; over the limit it must
    // still be a lower bound that proves the true SAD >= limit.
    let cur = textured_plane(128, 96, 4242);
    let reference = textured_plane(128, 96, 4243);
    for (mb_row, mb_col, mv_x, mv_y, limit) in [
        (2usize, 3usize, 4i16, -3i16, 900u64),
        (0, 0, -15, -15, 2_000),
        (5, 7, 15, 15, 50),
        (3, 1, 0, 0, u64::MAX),
    ] {
        let mb = MbIndex::new(mb_row, mb_col);
        let mv = MotionVector::new(mv_x, mv_y);
        let exact = me::sad_mb_with(scalar, &cur, &reference, mb, mv);
        let (acc, _ops) = me::sad_mb_bounded_with(coarse, &cur, &reference, mb, mv, limit);
        if acc < limit {
            assert_eq!(acc, exact, "in-limit coarse SAD must be exact");
        } else {
            assert!(
                acc <= exact,
                "abandoned coarse SAD must lower-bound the true SAD"
            );
        }
    }

    // Whole-search winner identity, both strategies, biased and unbiased.
    for strategy in [SearchStrategy::Full, SearchStrategy::ThreeStep] {
        let cfg = MeConfig {
            search_range: 15,
            strategy,
        };
        for (seed, bias_scale) in [(7u64, 0i64), (8, 5), (9, 40)] {
            let cur = textured_plane(128, 96, seed);
            let reference = textured_plane(128, 96, seed.wrapping_add(101));
            for (row, col) in [(0usize, 0usize), (2, 3), (5, 7), (0, 4), (3, 0)] {
                let mb = MbIndex::new(row, col);
                let mut cands = MvCandidates::default();
                cands.push_clamped(MotionVector::new(2, -1), 15);
                let mut bias_a =
                    |mv: MotionVector| (mv.x.abs() as i64 + mv.y.abs() as i64) * bias_scale;
                let mut bias_b =
                    |mv: MotionVector| (mv.x.abs() as i64 + mv.y.abs() as i64) * bias_scale;
                let want =
                    me::search_fast_with(scalar, &cur, &reference, mb, cfg, &mut bias_a, &cands);
                let got =
                    me::search_fast_with(coarse, &cur, &reference, mb, cfg, &mut bias_b, &cands);
                assert_eq!(got.mv, want.mv, "mb ({row},{col}) {strategy:?} vector");
                assert_eq!(got.sad, want.sad, "mb ({row},{col}) {strategy:?} SAD");
                assert_eq!(got.cost, want.cost, "mb ({row},{col}) {strategy:?} cost");
                // Only the amount of work may differ — and the coarse
                // granularity can only ever do *more* row accumulation.
                assert!(
                    got.sad_ops >= want.sad_ops,
                    "coarse granularity cannot do less work: {} vs {}",
                    got.sad_ops,
                    want.sad_ops
                );
            }
        }
    }
}
