//! Golden-vector bitstream tests.
//!
//! Each vector is a committed, length-prefixed concatenation of encoded
//! frames produced from a seeded synthetic sequence with a fixed encoder
//! configuration (`tests/golden/*.bin`). The tests assert that:
//!
//! * the encoder still produces those exact bytes (any drift in DCT,
//!   quantization, VLC tables, ME tie-breaking or header layout is a
//!   silent compatibility break this catches), and
//! * the decoder round-trips the committed bytes bit-exactly: decoding
//!   the golden stream must match decoding a freshly encoded one, and
//!   the decoded-plane digest must match the committed digest.
//!
//! To re-bless after an *intentional* format change, run
//! `PBPAIR_BLESS=1 cargo test -p pbpair-codec --test golden` and commit
//! the rewritten files together with the new digests printed by the
//! blessing run.

use pbpair_codec::policy::NaturalPolicy;
use pbpair_codec::{Decoder, Encoder, EncoderConfig, Qp};
use pbpair_media::synth::{MotionClass, SyntheticSequence};
use pbpair_media::Frame;

/// FNV-1a, the same digest DESIGN.md uses for deterministic reports.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn digest_frame(frame: &Frame) -> u64 {
    let mut all = Vec::new();
    all.extend_from_slice(frame.y().samples());
    all.extend_from_slice(frame.cb().samples());
    all.extend_from_slice(frame.cr().samples());
    fnv1a(&all)
}

/// One golden vector: a named encoder configuration over a seeded
/// sequence, with the expected digests committed alongside.
struct Vector {
    name: &'static str,
    class: MotionClass,
    seed: u64,
    qp: u8,
    frames: usize,
    /// FNV-1a of the serialized (length-prefixed) bitstream.
    bitstream_digest: u64,
    /// FNV-1a over the digests of the decoded frames.
    decoded_digest: u64,
}

const VECTORS: &[Vector] = &[
    Vector {
        name: "natural_qcif_foreman_qp8",
        class: MotionClass::MediumForeman,
        seed: 2005,
        qp: 8,
        frames: 8,
        bitstream_digest: 0x67c5_4c84_abee_1e75,
        decoded_digest: 0x1638_547a_c273_a446,
    },
    Vector {
        name: "natural_qcif_akiyo_qp16",
        class: MotionClass::LowAkiyo,
        seed: 7,
        qp: 16,
        frames: 8,
        bitstream_digest: 0x410a_518d_03e5_add3,
        decoded_digest: 0xcaaa_beb0_63af_a878,
    },
];

fn golden_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.bin"))
}

/// Encodes the vector's sequence and returns the per-frame bitstreams.
fn encode_vector(v: &Vector) -> Vec<Vec<u8>> {
    let mut encoder = Encoder::new(EncoderConfig {
        qp: Qp::new(v.qp).expect("valid QP"),
        ..EncoderConfig::default()
    });
    let mut policy = NaturalPolicy::new();
    let mut seq = SyntheticSequence::for_class(v.class, v.seed);
    (0..v.frames)
        .map(|_| encoder.encode_frame(&seq.next_frame(), &mut policy).data)
        .collect()
}

/// Length-prefixed serialization: `u32 LE length` then the frame bytes.
fn serialize(frames: &[Vec<u8>]) -> Vec<u8> {
    let mut out = Vec::new();
    for f in frames {
        out.extend_from_slice(
            &u32::try_from(f.len())
                .expect("frame fits u32")
                .to_le_bytes(),
        );
        out.extend_from_slice(f);
    }
    out
}

fn deserialize(mut bytes: &[u8]) -> Vec<Vec<u8>> {
    let mut frames = Vec::new();
    while !bytes.is_empty() {
        let (len, rest) = bytes.split_at(4);
        let len = u32::from_le_bytes(len.try_into().expect("4 bytes")) as usize;
        let (frame, rest) = rest.split_at(len);
        frames.push(frame.to_vec());
        bytes = rest;
    }
    frames
}

fn blessing() -> bool {
    std::env::var_os("PBPAIR_BLESS").is_some()
}

#[test]
fn golden_vectors_encode_to_committed_bytes() {
    for v in VECTORS {
        let serialized = serialize(&encode_vector(v));
        let path = golden_path(v.name);
        if blessing() {
            std::fs::create_dir_all(path.parent().expect("parent")).expect("mkdir golden");
            std::fs::write(&path, &serialized).expect("write golden");
            println!(
                "blessed {}: {} bytes, bitstream_digest: 0x{:016x}",
                v.name,
                serialized.len(),
                fnv1a(&serialized)
            );
            continue;
        }
        let committed = std::fs::read(&path)
            .unwrap_or_else(|e| panic!("missing golden file {} ({e}); re-bless", path.display()));
        assert_eq!(
            fnv1a(&committed),
            v.bitstream_digest,
            "{}: committed golden file does not match its recorded digest — \
             the file was edited without updating VECTORS",
            v.name
        );
        assert_eq!(
            serialized.len(),
            committed.len(),
            "{}: encoded size drifted from golden",
            v.name
        );
        // Byte-exact, and name the first divergent frame when not.
        if serialized != committed {
            let fresh = deserialize(&serialized);
            let golden = deserialize(&committed);
            for (i, (f, g)) in fresh.iter().zip(&golden).enumerate() {
                assert_eq!(f, g, "{}: frame {i} bitstream drifted from golden", v.name);
            }
            unreachable!("serialized != committed but every frame matched");
        }
    }
}

#[test]
fn golden_vectors_round_trip_exactly() {
    for v in VECTORS {
        let path = golden_path(v.name);
        if blessing() {
            // Bless decoded digests from the freshly encoded stream.
            let mut decoder = Decoder::new(pbpair_media::VideoFormat::QCIF);
            let mut digests = Vec::new();
            for data in &encode_vector(v) {
                let (frame, _) = decoder.decode_frame(data).expect("golden frame decodes");
                digests.extend_from_slice(&digest_frame(&frame).to_le_bytes());
            }
            println!(
                "blessed {}: decoded_digest: 0x{:016x}",
                v.name,
                fnv1a(&digests)
            );
            continue;
        }
        let committed = std::fs::read(&path)
            .unwrap_or_else(|e| panic!("missing golden file {} ({e}); re-bless", path.display()));
        let golden_frames = deserialize(&committed);
        assert_eq!(golden_frames.len(), v.frames);

        // Decode the committed bytes; every frame must decode cleanly
        // (index intact, no resync) and the plane digests must match.
        let mut decoder = Decoder::new(pbpair_media::VideoFormat::QCIF);
        let mut digests = Vec::new();
        let mut decoded = Vec::new();
        for (i, data) in golden_frames.iter().enumerate() {
            let (frame, info) = decoder
                .decode_frame(data)
                .unwrap_or_else(|e| panic!("{}: frame {i} failed to decode: {e:?}", v.name));
            assert_eq!(
                info.temporal_ref as usize,
                i % 256,
                "{}: frame index",
                v.name
            );
            digests.extend_from_slice(&digest_frame(&frame).to_le_bytes());
            decoded.push(frame);
        }
        assert_eq!(
            fnv1a(&digests),
            v.decoded_digest,
            "{}: decoded planes drifted from golden digest",
            v.name
        );

        // The decoder's output for the golden stream must equal its
        // output for a fresh encode — encoder and golden agree end to
        // end, not just byte-wise.
        let mut fresh_decoder = Decoder::new(pbpair_media::VideoFormat::QCIF);
        for (i, data) in encode_vector(v).iter().enumerate() {
            let (frame, _) = fresh_decoder.decode_frame(data).expect("fresh decode");
            assert_eq!(
                frame.y().samples(),
                decoded[i].y().samples(),
                "{}: fresh vs golden luma mismatch at frame {i}",
                v.name
            );
        }
    }
}
