//! Edge coverage for the two places the ISSUE calls out as easy to get
//! subtly wrong: motion estimation at frame borders (vectors that clamp
//! against every edge must survive the full encode→decode loop), and VLC
//! escape coding at the extreme corners of the (LAST, RUN, LEVEL) event
//! space.

use pbpair_codec::bitstream::{BitReader, BitWriter};
use pbpair_codec::blockcode::{read_coeff_block, write_coeff_block};
use pbpair_codec::vlc::{self, TcoefEvent, MVD_MAX, TCOEF_LEVEL_MAX, TCOEF_RUN_MAX};
use pbpair_codec::{
    Decoder, Encoder, EncoderConfig, MeConfig, NaturalPolicy, OptConfig, SearchStrategy,
};
use pbpair_media::{metrics, Frame, Plane, VideoFormat};

/// A frame in `format` whose texture is globally shifted by `(dx, dy)` —
/// every macroblock's true motion is the same large vector, so border MBs
/// must search (and clamp) against the frame edge.
fn shifted_frame_in(format: VideoFormat, dx: isize, dy: isize) -> Frame {
    let texture = |x: isize, y: isize| -> u8 {
        let (x, y) = (x.rem_euclid(256), y.rem_euclid(256));
        ((x * 7 + y * 13 + (x * y) / 9) % 256) as u8
    };
    let (w, h) = (format.width(), format.height());
    let y = Plane::from_fn(w, h, |x, yy| texture(x as isize + dx, yy as isize + dy));
    let cb = Plane::from_fn(w / 2, h / 2, |x, yy| {
        texture(x as isize + dx / 2, yy as isize + dy / 2)
    });
    let cr = Plane::from_fn(w / 2, h / 2, |x, yy| {
        texture(x as isize - dx / 2, yy as isize - dy / 2)
    });
    Frame::from_planes(format, y, cb, cr).unwrap()
}

/// [`shifted_frame_in`] at QCIF.
fn shifted_frame(dx: isize, dy: isize) -> Frame {
    shifted_frame_in(VideoFormat::QCIF, dx, dy)
}

/// Large global motion right at the search-range limit, both strategies,
/// optimizations on and off: the encoded stream must decode to exactly
/// the encoder's reconstruction, and the two optimization settings must
/// agree bit for bit even when every border MB clamps its window.
#[test]
fn border_motion_survives_the_full_codec_loop() {
    for strategy in [SearchStrategy::Full, SearchStrategy::ThreeStep] {
        for opt in [OptConfig::default(), OptConfig::naive()] {
            let cfg = EncoderConfig {
                me: MeConfig {
                    search_range: 15,
                    strategy,
                },
                opt,
                ..EncoderConfig::default()
            };
            let mut enc = Encoder::new(cfg);
            let mut dec = Decoder::new(VideoFormat::QCIF);
            let mut policy = NaturalPolicy::new();
            // Pan at the full search range per frame, alternating axes so
            // all four frame edges clamp.
            let motions = [(0, 0), (15, 0), (15, 15), (0, 15), (-15, -15)];
            for (i, (dx, dy)) in motions.iter().enumerate() {
                let frame = shifted_frame(*dx, *dy);
                let encoded = enc.encode_frame(&frame, &mut policy);
                let (decoded, _) = dec.decode_frame(&encoded.data).expect("decodable");
                let drift = metrics::psnr_y(&decoded, enc.reconstructed());
                assert!(
                    drift.is_infinite(),
                    "decoder drifted from encoder reconstruction at frame {i} \
                     ({strategy:?}, fast={}): {drift} dB",
                    opt.fast_me,
                );
            }
        }
    }
}

/// The two optimization settings must also produce identical bitstreams
/// under border-clamping motion (the golden vectors only cover moderate
/// motion).
#[test]
fn optimized_and_naive_bitstreams_match_under_border_motion() {
    let run = |opt: OptConfig| -> Vec<Vec<u8>> {
        let mut enc = Encoder::new(EncoderConfig {
            opt,
            ..EncoderConfig::default()
        });
        let mut policy = NaturalPolicy::new();
        [(0, 0), (15, 7), (-15, -15), (12, -15)]
            .iter()
            .map(|(dx, dy)| enc.encode_frame(&shifted_frame(*dx, *dy), &mut policy).data)
            .collect()
    };
    assert_eq!(run(OptConfig::default()), run(OptConfig::naive()));
}

/// Every extreme corner of the TCOEF event space: maximal regular
/// run/level, the first escaped run and level, the largest legal escaped
/// values, and both signs.
#[test]
fn tcoef_escape_extremes_roundtrip() {
    let extremes = [
        // Regular-table boundary.
        TcoefEvent {
            last: false,
            run: TCOEF_RUN_MAX,
            level: TCOEF_LEVEL_MAX,
        },
        TcoefEvent {
            last: true,
            run: TCOEF_RUN_MAX,
            level: -TCOEF_LEVEL_MAX,
        },
        // First escapes past each boundary.
        TcoefEvent {
            last: false,
            run: TCOEF_RUN_MAX + 1,
            level: 1,
        },
        TcoefEvent {
            last: false,
            run: 0,
            level: TCOEF_LEVEL_MAX + 1,
        },
        TcoefEvent {
            last: true,
            run: 0,
            level: -(TCOEF_LEVEL_MAX + 1),
        },
        // Largest values the decoder accepts.
        TcoefEvent {
            last: true,
            run: 63,
            level: 4096,
        },
        TcoefEvent {
            last: true,
            run: 63,
            level: -4096,
        },
        TcoefEvent {
            last: false,
            run: 63,
            level: 1,
        },
    ];
    let mut w = BitWriter::new();
    for ev in extremes {
        vlc::write_tcoef(&mut w, ev);
    }
    let bytes = w.finish();
    let mut r = BitReader::new(&bytes);
    for ev in extremes {
        assert_eq!(vlc::read_tcoef(&mut r).unwrap(), ev, "{ev:?}");
    }
}

/// Coefficient blocks whose events sit at the extreme scan positions: a
/// lone coefficient in the final zigzag slot (run 63 — the longest legal
/// run), clamped-magnitude levels, and the intra variant where the scan
/// starts at 1.
#[test]
fn coeff_block_roundtrips_at_extreme_positions() {
    type Build = Box<dyn Fn(&mut [i32; 64])>;
    let cases: [(usize, Build); 4] = [
        // Inter: only the very last coefficient — run 63.
        (0, Box::new(|z| z[63] = 127)),
        // Inter: first and last — run 0 then run 62.
        (
            0,
            Box::new(|z| {
                z[0] = -127;
                z[63] = 1;
            }),
        ),
        // Intra: scan starts at 1, lone final coefficient — run 62.
        (1, Box::new(|z| z[63] = -90)),
        // Intra: every slot from 1 populated at escape-range magnitude.
        (
            1,
            Box::new(|z| {
                for (i, slot) in z.iter_mut().enumerate().skip(1) {
                    *slot = if i % 2 == 0 { 100 } else { -100 };
                }
            }),
        ),
    ];
    for (i, (first, build)) in cases.iter().enumerate() {
        let mut zig = [0i32; 64];
        build(&mut zig);
        let mut w = BitWriter::new();
        write_coeff_block(&mut w, &zig, *first);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        let got = read_coeff_block(&mut r, *first).unwrap();
        assert_eq!(got, zig, "case {i}");
    }
}

/// Vector-tail coverage for the SIMD kernel tiers: frame widths whose
/// macroblock rows are *not* a multiple of any vector width force the
/// kernels through their per-row (rather than whole-plane) load paths —
/// a 48-wide luma plane has 16-sample SAD rows starting at stride
/// offsets 0/16/32, and QCIF's 88-wide chroma planes put half of every
/// chroma block row on an odd 8-byte boundary. Every available tier must
/// produce the identical bitstream and a drift-free decode on both.
#[test]
fn kernel_tiers_agree_on_vector_tail_formats() {
    use pbpair_codec::{KernelChoice, Kernels};
    let formats = [
        (
            "48x48",
            VideoFormat::custom(48, 48).expect("multiple of 16"),
        ),
        ("qcif", VideoFormat::QCIF),
    ];
    let motions = [(0isize, 0isize), (15, 7), (-15, -15), (3, 12)];
    for (label, format) in formats {
        let mut reference_streams: Option<Vec<Vec<u8>>> = None;
        for tier in Kernels::available() {
            let mut enc = Encoder::new(EncoderConfig {
                format,
                opt: OptConfig {
                    kernels: KernelChoice::forced(tier),
                    ..OptConfig::default()
                },
                ..EncoderConfig::default()
            });
            let mut dec = Decoder::new(format);
            dec.set_kernels(KernelChoice::forced(tier));
            let mut policy = NaturalPolicy::new();
            let mut streams = Vec::new();
            for (i, (dx, dy)) in motions.iter().enumerate() {
                let frame = shifted_frame_in(format, *dx, *dy);
                let encoded = enc.encode_frame(&frame, &mut policy);
                let (decoded, _) = dec.decode_frame(&encoded.data).expect("decodable");
                let drift = metrics::psnr_y(&decoded, enc.reconstructed());
                assert!(
                    drift.is_infinite(),
                    "{label} frame {i}: decoder drifted from encoder on tier {tier}"
                );
                streams.push(encoded.data);
            }
            match &reference_streams {
                None => reference_streams = Some(streams),
                Some(want) => assert_eq!(
                    &streams, want,
                    "{label}: tier {tier} bitstream diverged from the first tier"
                ),
            }
        }
    }
}

/// Motion-vector components at and past the escape boundary.
#[test]
fn mvd_escape_extremes_roundtrip() {
    let values = [MVD_MAX, -MVD_MAX, MVD_MAX + 1, -(MVD_MAX + 1), 2048, -2048];
    let mut w = BitWriter::new();
    for v in values {
        vlc::write_mvd(&mut w, v);
    }
    let bytes = w.finish();
    let mut r = BitReader::new(&bytes);
    for v in values {
        assert_eq!(vlc::read_mvd(&mut r).unwrap(), v, "mvd {v}");
    }
}
