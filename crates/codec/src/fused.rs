//! Fused `DCT → quantize → zigzag` block kernel.
//!
//! The separate pipeline ([`crate::dct::forward`], then
//! [`crate::quant::quantize_block`], then [`crate::zigzag::scan`])
//! materializes two intermediate natural-order 8×8 buffers and runs a
//! per-coefficient intra-DC branch plus a dead-zone sign branch. This
//! kernel performs all three steps in one pass: the column stage of the
//! separable DCT quantizes each coefficient the moment it is produced
//! (branchlessly) and scatters it directly into its zigzag slot.
//!
//! The output is **bit-identical** to the separate pipeline for every
//! input — `tests/kernel_equiv.rs` proves it by exhaustive property
//! testing over random blocks and the full QP range — because it
//! multiplies by the exact same Q12 basis table with the same rounding,
//! and the branchless quantizer is algebraically equal to
//! [`crate::quant::quantize_ac`].

use crate::dct::{basis, BLOCK, BLOCK_LEN, HALF, Q};
use crate::kernels::{KernelTier, Kernels};
use crate::quant::{quantize_intra_dc, Qp};
use crate::zigzag::ZIGZAG;
use std::sync::OnceLock;

/// Zigzag position of each natural-order coefficient — the inverse
/// permutation of [`ZIGZAG`], computed at compile time.
const UNZIGZAG: [usize; BLOCK_LEN] = {
    let mut inv = [0usize; BLOCK_LEN];
    let mut i = 0;
    while i < BLOCK_LEN {
        inv[ZIGZAG[i]] = i;
        i += 1;
    }
    inv
};

/// Branch-free H.263 dead-zone quantizer, equal to
/// [`crate::quant::quantize_ac`] for all DCT-range inputs:
/// `(mag − q/2)/(2q)` truncates to 0 whenever the numerator is negative
/// (it is bounded below by `−q/2 > −2q`), so clamping the numerator at 0
/// first changes nothing; the clamp-to-127 acts on a non-negative
/// quotient, so `min` suffices; and the sign is re-applied by two's-
/// complement folding instead of a branch.
#[inline(always)]
fn quantize_ac_branchless(coef: i32, q: i32, dead_zone: i32) -> i32 {
    let level = ((coef.abs() - dead_zone).max(0) / (2 * q)).min(127);
    let s = coef >> 31; // 0 or -1
    (level ^ s) - s
}

/// Shift for the magic-multiply division used by the SIMD quantize path.
/// 18 is the smallest shift whose round-up multiplier is exact for every
/// H.263 divisor `2q` over the verified numerator range (17 fails for
/// `d = 54` and `d = 62`), and `MAGIC_NUM_MAX · (2¹⁸/2 + 1)` still fits
/// `u32`.
const MAGIC_SHIFT: u32 = 18;
/// Largest numerator the magic multiply is verified for. Legitimate
/// forward-DCT coefficients of 8-bit content are bounded by ~2 040, so
/// production numerators never exceed this; larger ones (possible only
/// for synthetic out-of-range inputs) take the division fallback.
const MAGIC_NUM_MAX: i32 = 4095;

/// Per-QP magic multipliers `M = ⌊2¹⁸/(2q)⌋ + 1` such that
/// `(num·M) >> 18 == num/(2q)` for every `num` in `0..=MAGIC_NUM_MAX` —
/// **exhaustively verified at init** (an entry that failed verification
/// would be stored as 0, routing every numerator to the division
/// fallback; the `magic_multipliers_verified_for_all_qp` test asserts
/// this never happens).
fn magic_table() -> &'static [u32; 31] {
    static T: OnceLock<[u32; 31]> = OnceLock::new();
    T.get_or_init(|| {
        std::array::from_fn(|i| {
            let d = 2 * (i as u32 + 1);
            let m = (1u32 << MAGIC_SHIFT) / d + 1;
            let exact = (0..=MAGIC_NUM_MAX as u32).all(|num| (num * m) >> MAGIC_SHIFT == num / d);
            if exact {
                m
            } else {
                0
            }
        })
    })
}

/// Forward-transforms `spatial`, quantizes at `qp`, and writes the levels
/// in zigzag order into `zig`. Returns whether the block is coded: any
/// non-zero level at zigzag position ≥ 1 for intra (the DC travels
/// separately) or ≥ 0 for inter — the same value
/// [`crate::blockcode::block_is_coded`] would report.
pub fn fdct_quant_scan(
    spatial: &[i32; BLOCK_LEN],
    qp: Qp,
    intra: bool,
    zig: &mut [i32; BLOCK_LEN],
) -> bool {
    let b = basis();
    let q = qp.get() as i32;
    let dead_zone = q / 2;
    let first = usize::from(intra);
    // Row stage, identical to `dct::forward`.
    let mut tmp = [0i64; BLOCK_LEN];
    for y in 0..BLOCK {
        for k in 0..BLOCK {
            let mut acc = 0i64;
            for n in 0..BLOCK {
                acc += spatial[y * BLOCK + n] as i64 * b[k][n] as i64;
            }
            tmp[y * BLOCK + k] = (acc + HALF) >> Q;
        }
    }
    // Column stage: quantize each coefficient as it is produced and
    // scatter it straight to its zigzag slot.
    let mut coded = false;
    for (k, bk) in b.iter().enumerate() {
        for x in 0..BLOCK {
            let mut acc = 0i64;
            for n in 0..BLOCK {
                acc += bk[n] as i64 * tmp[n * BLOCK + x];
            }
            let coef = ((acc + HALF) >> Q) as i32;
            let nat = k * BLOCK + x;
            let level = if intra && nat == 0 {
                quantize_intra_dc(coef)
            } else {
                quantize_ac_branchless(coef, q, dead_zone)
            };
            let zpos = UNZIGZAG[nat];
            zig[zpos] = level;
            coded |= level != 0 && zpos >= first;
        }
    }
    coded
}

/// [`fdct_quant_scan`] through an explicit kernel table.
///
/// The scalar tier runs the fused single-pass kernel above (its i64 row
/// intermediates never materialize a frequency block). SIMD tiers run the
/// vectorized forward transform ([`Kernels::fdct8`], bit-identical to
/// [`crate::dct::forward`]) and then quantize + zigzag-scatter the
/// resulting block with a magic-multiply dead-zone quantizer that equals
/// `quantize_ac_branchless` coefficient-for-coefficient — so every tier
/// produces the same `zig` and the same coded flag for every input.
pub fn fdct_quant_scan_with(
    k: &Kernels,
    spatial: &[i32; BLOCK_LEN],
    qp: Qp,
    intra: bool,
    zig: &mut [i32; BLOCK_LEN],
) -> bool {
    if k.tier() == KernelTier::Scalar {
        return fdct_quant_scan(spatial, qp, intra, zig);
    }
    let mut freq = [0i32; BLOCK_LEN];
    k.fdct8(spatial, &mut freq);
    quant_scan_natural(&freq, qp, intra, zig)
}

/// Quantizes a natural-order frequency block and scatters the levels into
/// zigzag order — the post-transform half of the fused kernel, shared by
/// every SIMD tier.
fn quant_scan_natural(
    freq: &[i32; BLOCK_LEN],
    qp: Qp,
    intra: bool,
    zig: &mut [i32; BLOCK_LEN],
) -> bool {
    let q = qp.get() as i32;
    let dead_zone = q / 2;
    let first = usize::from(intra);
    let m = magic_table()[qp.get() as usize - 1];
    let mut coded = false;
    for (nat, &coef) in freq.iter().enumerate() {
        let level = if intra && nat == 0 {
            quantize_intra_dc(coef)
        } else {
            let num = (coef.abs() - dead_zone).max(0);
            let lv = if m != 0 && num <= MAGIC_NUM_MAX {
                ((num as u32 * m) >> MAGIC_SHIFT) as i32
            } else {
                num / (2 * q)
            };
            let s = coef >> 31; // 0 or -1
            (lv.min(127) ^ s) - s
        };
        let zpos = UNZIGZAG[nat];
        zig[zpos] = level;
        coded |= level != 0 && zpos >= first;
    }
    coded
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blockcode::block_is_coded;
    use crate::quant::quantize_block;
    use crate::zigzag::scan;
    use crate::{dct, quant};

    /// The separate three-pass pipeline the fused kernel replaces.
    fn reference(spatial: &[i32; BLOCK_LEN], qp: Qp, intra: bool) -> ([i32; BLOCK_LEN], bool) {
        let mut freq = [0i32; BLOCK_LEN];
        dct::forward(spatial, &mut freq);
        let levels = quantize_block(&freq, qp, intra);
        let zig = scan(&levels);
        let coded = block_is_coded(&zig, usize::from(intra));
        (zig, coded)
    }

    #[test]
    fn fused_matches_reference_on_structured_blocks() {
        let patterns: [fn(usize) -> i32; 4] = [
            |i| (i as i32 % 13) * 17 - 80,
            |i| if i == 0 { 255 } else { 0 },
            |i| ((i * i) % 511) as i32 - 255,
            |_| 0,
        ];
        for (pi, pat) in patterns.iter().enumerate() {
            let spatial: [i32; BLOCK_LEN] = std::array::from_fn(pat);
            for qp_v in [1u8, 2, 8, 17, 31] {
                let qp = Qp::new(qp_v).unwrap();
                for intra in [false, true] {
                    let (want_zig, want_coded) = reference(&spatial, qp, intra);
                    let mut got_zig = [0i32; BLOCK_LEN];
                    let got_coded = fdct_quant_scan(&spatial, qp, intra, &mut got_zig);
                    assert_eq!(got_zig, want_zig, "pattern {pi} qp {qp_v} intra {intra}");
                    assert_eq!(
                        got_coded, want_coded,
                        "pattern {pi} qp {qp_v} intra {intra}"
                    );
                }
            }
        }
    }

    #[test]
    fn branchless_quantizer_equals_quantize_ac_exhaustively() {
        for qp_v in 1..=31u8 {
            let qp = Qp::new(qp_v).unwrap();
            let q = qp_v as i32;
            for coef in -2500..=2500 {
                assert_eq!(
                    quantize_ac_branchless(coef, q, q / 2),
                    quant::quantize_ac(coef, qp),
                    "qp={qp_v} coef={coef}"
                );
            }
        }
    }

    #[test]
    fn unzigzag_inverts_zigzag() {
        for (zpos, &nat) in ZIGZAG.iter().enumerate() {
            assert_eq!(UNZIGZAG[nat], zpos);
        }
    }

    #[test]
    fn magic_multipliers_verified_for_all_qp() {
        // Every QP's magic multiplier must pass its init-time exhaustive
        // verification — a zero entry would silently demote that QP to
        // the division fallback.
        for (i, &m) in magic_table().iter().enumerate() {
            assert_ne!(m, 0, "qp {} failed magic verification", i + 1);
        }
    }

    #[test]
    fn fused_with_matches_scalar_fused_on_every_tier() {
        let mut state = 0x243f6a8885a308d3u64;
        let mut rng = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        for tier in Kernels::available() {
            let k = Kernels::get(tier).unwrap();
            for round in 0..40 {
                // Residual/pixel-range blocks plus out-of-gate extremes
                // (scalar-transform fallback + division-fallback quant).
                let amp: i32 = if round % 8 == 7 { 3_000_000 } else { 255 };
                let spatial: [i32; BLOCK_LEN] =
                    std::array::from_fn(|_| (rng() % (2 * amp as u32 + 1)) as i32 - amp);
                for qp_v in [1u8, 7, 8, 17, 31] {
                    let qp = Qp::new(qp_v).unwrap();
                    for intra in [false, true] {
                        let mut want = [0i32; BLOCK_LEN];
                        let mut got = [0i32; BLOCK_LEN];
                        let want_coded = fdct_quant_scan(&spatial, qp, intra, &mut want);
                        let got_coded = fdct_quant_scan_with(k, &spatial, qp, intra, &mut got);
                        assert_eq!(got, want, "{tier} round {round} qp {qp_v} intra {intra}");
                        assert_eq!(got_coded, want_coded, "{tier} round {round} qp {qp_v}");
                    }
                }
            }
        }
    }
}
