//! Fused `DCT → quantize → zigzag` block kernel.
//!
//! The separate pipeline ([`crate::dct::forward`], then
//! [`crate::quant::quantize_block`], then [`crate::zigzag::scan`])
//! materializes two intermediate natural-order 8×8 buffers and runs a
//! per-coefficient intra-DC branch plus a dead-zone sign branch. This
//! kernel performs all three steps in one pass: the column stage of the
//! separable DCT quantizes each coefficient the moment it is produced
//! (branchlessly) and scatters it directly into its zigzag slot.
//!
//! The output is **bit-identical** to the separate pipeline for every
//! input — `tests/kernel_equiv.rs` proves it by exhaustive property
//! testing over random blocks and the full QP range — because it
//! multiplies by the exact same Q12 basis table with the same rounding,
//! and the branchless quantizer is algebraically equal to
//! [`crate::quant::quantize_ac`].

use crate::dct::{basis, BLOCK, BLOCK_LEN, HALF, Q};
use crate::quant::{quantize_intra_dc, Qp};
use crate::zigzag::ZIGZAG;

/// Zigzag position of each natural-order coefficient — the inverse
/// permutation of [`ZIGZAG`], computed at compile time.
const UNZIGZAG: [usize; BLOCK_LEN] = {
    let mut inv = [0usize; BLOCK_LEN];
    let mut i = 0;
    while i < BLOCK_LEN {
        inv[ZIGZAG[i]] = i;
        i += 1;
    }
    inv
};

/// Branch-free H.263 dead-zone quantizer, equal to
/// [`crate::quant::quantize_ac`] for all DCT-range inputs:
/// `(mag − q/2)/(2q)` truncates to 0 whenever the numerator is negative
/// (it is bounded below by `−q/2 > −2q`), so clamping the numerator at 0
/// first changes nothing; the clamp-to-127 acts on a non-negative
/// quotient, so `min` suffices; and the sign is re-applied by two's-
/// complement folding instead of a branch.
#[inline(always)]
fn quantize_ac_branchless(coef: i32, q: i32, dead_zone: i32) -> i32 {
    let level = ((coef.abs() - dead_zone).max(0) / (2 * q)).min(127);
    let s = coef >> 31; // 0 or -1
    (level ^ s) - s
}

/// Forward-transforms `spatial`, quantizes at `qp`, and writes the levels
/// in zigzag order into `zig`. Returns whether the block is coded: any
/// non-zero level at zigzag position ≥ 1 for intra (the DC travels
/// separately) or ≥ 0 for inter — the same value
/// [`crate::blockcode::block_is_coded`] would report.
pub fn fdct_quant_scan(
    spatial: &[i32; BLOCK_LEN],
    qp: Qp,
    intra: bool,
    zig: &mut [i32; BLOCK_LEN],
) -> bool {
    let b = basis();
    let q = qp.get() as i32;
    let dead_zone = q / 2;
    let first = usize::from(intra);
    // Row stage, identical to `dct::forward`.
    let mut tmp = [0i64; BLOCK_LEN];
    for y in 0..BLOCK {
        for k in 0..BLOCK {
            let mut acc = 0i64;
            for n in 0..BLOCK {
                acc += spatial[y * BLOCK + n] as i64 * b[k][n] as i64;
            }
            tmp[y * BLOCK + k] = (acc + HALF) >> Q;
        }
    }
    // Column stage: quantize each coefficient as it is produced and
    // scatter it straight to its zigzag slot.
    let mut coded = false;
    for (k, bk) in b.iter().enumerate() {
        for x in 0..BLOCK {
            let mut acc = 0i64;
            for n in 0..BLOCK {
                acc += bk[n] as i64 * tmp[n * BLOCK + x];
            }
            let coef = ((acc + HALF) >> Q) as i32;
            let nat = k * BLOCK + x;
            let level = if intra && nat == 0 {
                quantize_intra_dc(coef)
            } else {
                quantize_ac_branchless(coef, q, dead_zone)
            };
            let zpos = UNZIGZAG[nat];
            zig[zpos] = level;
            coded |= level != 0 && zpos >= first;
        }
    }
    coded
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blockcode::block_is_coded;
    use crate::quant::quantize_block;
    use crate::zigzag::scan;
    use crate::{dct, quant};

    /// The separate three-pass pipeline the fused kernel replaces.
    fn reference(spatial: &[i32; BLOCK_LEN], qp: Qp, intra: bool) -> ([i32; BLOCK_LEN], bool) {
        let mut freq = [0i32; BLOCK_LEN];
        dct::forward(spatial, &mut freq);
        let levels = quantize_block(&freq, qp, intra);
        let zig = scan(&levels);
        let coded = block_is_coded(&zig, usize::from(intra));
        (zig, coded)
    }

    #[test]
    fn fused_matches_reference_on_structured_blocks() {
        let patterns: [fn(usize) -> i32; 4] = [
            |i| (i as i32 % 13) * 17 - 80,
            |i| if i == 0 { 255 } else { 0 },
            |i| ((i * i) % 511) as i32 - 255,
            |_| 0,
        ];
        for (pi, pat) in patterns.iter().enumerate() {
            let spatial: [i32; BLOCK_LEN] = std::array::from_fn(pat);
            for qp_v in [1u8, 2, 8, 17, 31] {
                let qp = Qp::new(qp_v).unwrap();
                for intra in [false, true] {
                    let (want_zig, want_coded) = reference(&spatial, qp, intra);
                    let mut got_zig = [0i32; BLOCK_LEN];
                    let got_coded = fdct_quant_scan(&spatial, qp, intra, &mut got_zig);
                    assert_eq!(got_zig, want_zig, "pattern {pi} qp {qp_v} intra {intra}");
                    assert_eq!(
                        got_coded, want_coded,
                        "pattern {pi} qp {qp_v} intra {intra}"
                    );
                }
            }
        }
    }

    #[test]
    fn branchless_quantizer_equals_quantize_ac_exhaustively() {
        for qp_v in 1..=31u8 {
            let qp = Qp::new(qp_v).unwrap();
            let q = qp_v as i32;
            for coef in -2500..=2500 {
                assert_eq!(
                    quantize_ac_branchless(coef, q, q / 2),
                    quant::quantize_ac(coef, qp),
                    "qp={qp_v} coef={coef}"
                );
            }
        }
    }

    #[test]
    fn unzigzag_inverts_zigzag() {
        for (zpos, &nat) in ZIGZAG.iter().enumerate() {
            assert_eq!(UNZIGZAG[nat], zpos);
        }
    }
}
