//! The video decoder, with error concealment for lost frames.
//!
//! The decoder mirrors the encoder's reconstruction loop bit-exactly. When
//! the network drops a packet (= one frame in the paper's setup), the
//! caller invokes [`Decoder::conceal_lost_frame`]; the default concealment
//! is the paper's **simple copy scheme** — repeat the previous
//! reconstructed frame — and the strategy is pluggable so richer
//! concealments slot in (the paper notes they only change PBPAIR's
//! similarity factor).

use crate::bitstream::{BitReader, BitstreamError};
use crate::block::{store_block_clamped_with, store_pred, store_pred_plus_residual_with};
use crate::blockcode::read_coeff_block;
use crate::encoder::{PICTURE_START_CODE, PICTURE_START_CODE_LEN};
use crate::kernels::{KernelChoice, Kernels};
use crate::mb::{MbMode, MotionVector, SubPelVector};
use crate::mc::{
    predict_chroma, predict_chroma_subpel_with, predict_luma, predict_luma_subpel_with,
    CHROMA_BLOCK, LUMA_BLOCK,
};
use crate::policy::FrameKind;
use crate::quant::{dequantize_block, Qp};
use crate::vlc;
use crate::zigzag;
use pbpair_media::{Frame, MbGrid, MbIndex, VideoFormat};
use pbpair_telemetry::{Counter, Stage, Telemetry};
use pbpair_trace::{Event as TraceEvent, Tracer};
use std::error::Error;
use std::fmt;

/// Errors produced while decoding a frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The bitstream ended early or a code was malformed.
    Bitstream(BitstreamError),
    /// The picture start code was absent (corrupt or non-frame data).
    BadStartCode,
    /// The header carried an illegal quantizer.
    BadQp(u8),
    /// The stream's source format differs from the decoder's configured
    /// format.
    FormatMismatch {
        /// Format declared in the picture header.
        stream: VideoFormat,
        /// Format this decoder was built for.
        decoder: VideoFormat,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Bitstream(e) => write!(f, "bitstream error: {e}"),
            DecodeError::BadStartCode => write!(f, "missing picture start code"),
            DecodeError::BadQp(q) => write!(f, "illegal quantizer {q} in picture header"),
            DecodeError::FormatMismatch { stream, decoder } => write!(
                f,
                "stream format {stream} does not match decoder format {decoder}"
            ),
        }
    }
}

impl Error for DecodeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DecodeError::Bitstream(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BitstreamError> for DecodeError {
    fn from(e: BitstreamError) -> Self {
        DecodeError::Bitstream(e)
    }
}

/// How the decoder fills in a lost frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Concealment {
    /// Repeat the previous reconstructed frame (the paper's "simple copy
    /// scheme").
    #[default]
    CopyPrevious,
    /// Extrapolate motion: rebuild the lost frame by re-applying each
    /// macroblock's most recent motion vector to the reference — the
    /// classic temporal-concealment upgrade the paper's §3.1.3 anticipates
    /// ("we can easily adopt various error concealment schemes ... by
    /// modifying the similarity factor"). Falls back to copy behaviour
    /// when no motion history exists (e.g. after an I-frame).
    MotionCopy,
}

/// Parsed picture-header fields (internal).
#[derive(Debug, Clone, Copy)]
struct PictureHeader {
    temporal_ref: u8,
    kind: FrameKind,
    qp: Qp,
    half_pel: bool,
    deblock: bool,
}

/// Aggregated outcome of resilient decoding — what the error-tolerant
/// entry points ([`Decoder::decode_frame_resilient`],
/// [`Decoder::decode_stream`]) return instead of an error.
///
/// Reports from successive calls add together with
/// [`absorb`](DecodeReport::absorb), so a session-level tally is one
/// running struct.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct DecodeReport {
    /// Pictures emitted in total (clean + recovered).
    pub frames_decoded: u64,
    /// Pictures emitted through the damage-recovery path — part or all
    /// of the picture was concealed rather than decoded.
    pub frames_recovered: u64,
    /// Macroblocks filled in by concealment instead of decoded data.
    pub mbs_concealed: u64,
    /// Forward scans to a new picture start code after damage.
    pub resyncs: u64,
    /// Bytes discarded while hunting for a start code.
    pub bytes_skipped: u64,
}

impl DecodeReport {
    /// Adds another report's counts into this one.
    pub fn absorb(&mut self, other: &DecodeReport) {
        self.frames_decoded += other.frames_decoded;
        self.frames_recovered += other.frames_recovered;
        self.mbs_concealed += other.mbs_concealed;
        self.resyncs += other.resyncs;
        self.bytes_skipped += other.bytes_skipped;
    }

    /// Whether any recovery action was taken.
    pub fn any_damage(&self) -> bool {
        self.frames_recovered > 0 || self.resyncs > 0 || self.bytes_skipped > 0
    }
}

/// Side information about one decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedInfo {
    /// Temporal reference from the header (frame index mod 256).
    pub temporal_ref: u8,
    /// Frame coding type.
    pub kind: FrameKind,
    /// Quantizer from the header.
    pub qp: Qp,
    /// Decoded mode of every macroblock in raster order.
    pub mb_modes: Vec<MbMode>,
}

/// The decoder.
///
/// # Example
///
/// ```rust
/// use pbpair_codec::{Decoder, Encoder, EncoderConfig, NaturalPolicy};
/// use pbpair_media::{metrics, synth::SyntheticSequence, VideoFormat};
///
/// # fn main() -> Result<(), pbpair_codec::DecodeError> {
/// let mut enc = Encoder::new(EncoderConfig::default());
/// let mut dec = Decoder::new(VideoFormat::QCIF);
/// let mut policy = NaturalPolicy::new();
/// let mut seq = SyntheticSequence::akiyo_class(1);
/// let original = seq.next_frame();
/// let encoded = enc.encode_frame(&original, &mut policy);
/// let (decoded, _info) = dec.decode_frame(&encoded.data)?;
/// assert!(metrics::psnr_y(&original, &decoded) > 28.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Decoder {
    format: VideoFormat,
    /// The pixel-kernel tier (IDCT, motion compensation, reconstruction
    /// clamps); defaults to the process-wide active tier and is
    /// re-pinnable via [`Decoder::set_kernels`]. Every tier reconstructs
    /// pixel-identically.
    kernels: &'static Kernels,
    grid: MbGrid,
    recon: Frame,
    concealment: Concealment,
    decoded_any: bool,
    /// Motion vector of each macroblock in the most recent decoded frame
    /// (zero for intra/skip) — the input to motion-copy concealment.
    last_mvs: Vec<SubPelVector>,
    /// Pre-resolved telemetry handles; `None` until
    /// [`Decoder::set_telemetry`] attaches an enabled context. Flushed
    /// once per decode call from the already-deterministic
    /// [`DecodeReport`] quantities.
    tel: Option<DecoderTelemetry>,
    /// Trace handle; `None` until [`Decoder::set_tracer`] attaches an
    /// enabled tracer. Concealment/resync events are stamped with the
    /// frame index the pipeline owner published via
    /// [`Tracer::set_frame`].
    trace: Option<Tracer>,
}

/// Telemetry handles the decoder flushes per decode/conceal call.
#[derive(Debug)]
struct DecoderTelemetry {
    /// Stage `"decode"`; virtual units = input bytes consumed.
    stage: Stage,
    frames: Counter,
    frames_recovered: Counter,
    mbs_concealed: Counter,
    resyncs: Counter,
    bytes_skipped: Counter,
    /// Whole-frame concealments requested by the caller (frame never
    /// arrived, as opposed to damage found inside a bitstream).
    lost_frames: Counter,
}

impl DecoderTelemetry {
    fn new(tel: &Telemetry) -> Self {
        DecoderTelemetry {
            stage: tel.stage("decode"),
            frames: tel.counter("dec.frames"),
            frames_recovered: tel.counter("dec.frames_recovered"),
            mbs_concealed: tel.counter("dec.mbs_concealed"),
            resyncs: tel.counter("dec.resyncs"),
            bytes_skipped: tel.counter("dec.bytes_skipped"),
            lost_frames: tel.counter("dec.lost_frames"),
        }
    }

    fn note_report(&self, report: &DecodeReport, input_bytes: usize) {
        self.stage.record(input_bytes as u64);
        self.frames.inc(report.frames_decoded);
        self.frames_recovered.inc(report.frames_recovered);
        self.mbs_concealed.inc(report.mbs_concealed);
        self.resyncs.inc(report.resyncs);
        self.bytes_skipped.inc(report.bytes_skipped);
    }
}

impl Decoder {
    /// Creates a decoder for `format` with copy-previous concealment.
    pub fn new(format: VideoFormat) -> Self {
        Decoder::with_concealment(format, Concealment::default())
    }

    /// Creates a decoder with an explicit concealment strategy.
    pub fn with_concealment(format: VideoFormat, concealment: Concealment) -> Self {
        let grid = MbGrid::new(format);
        Decoder {
            format,
            kernels: Kernels::active(),
            recon: Frame::new(format),
            concealment,
            decoded_any: false,
            last_mvs: vec![SubPelVector::ZERO; grid.len()],
            grid,
            tel: None,
            trace: None,
        }
    }

    /// Pins the pixel-kernel tier for subsequent decoding — the decoder
    /// side of the forced-dispatch test matrix. Reconstruction is
    /// pixel-identical under every tier.
    ///
    /// # Panics
    ///
    /// Panics if a forced tier is not available on this host (see
    /// [`KernelChoice::resolve`]).
    pub fn set_kernels(&mut self, choice: KernelChoice) {
        self.kernels = choice.resolve();
    }

    /// Attaches a telemetry context; subsequent decode and concealment
    /// calls flush their deterministic counts into it (`dec.*` metrics
    /// and the `"decode"` stage). A disabled context detaches.
    pub fn set_telemetry(&mut self, tel: &Telemetry) {
        self.tel = tel.is_enabled().then(|| DecoderTelemetry::new(tel));
    }

    /// Attaches a tracer; subsequent concealment and resync actions
    /// emit trace events. A disabled tracer detaches.
    pub fn set_tracer(&mut self, tracer: &Tracer) {
        self.trace = tracer.is_enabled().then(|| tracer.clone());
    }

    /// Emits a trace event stamped with the published frame index.
    fn trace_emit(&self, make: impl FnOnce(u32) -> TraceEvent) {
        if let Some(t) = &self.trace {
            t.emit(make(t.current_frame()));
        }
    }

    /// The picture format this decoder expects.
    pub fn format(&self) -> VideoFormat {
        self.format
    }

    /// The most recent output frame (decoded or concealed).
    pub fn last_frame(&self) -> &Frame {
        &self.recon
    }

    /// Decodes one encoded frame and returns the reconstructed picture
    /// plus header/mode side info.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] on truncation or corruption; the
    /// decoder's reference frame is left unchanged in that case, so the
    /// caller can treat a corrupt frame exactly like a lost one.
    pub fn decode_frame(&mut self, data: &[u8]) -> Result<(Frame, DecodedInfo), DecodeError> {
        let mut r = BitReader::new(data);
        let result = self.decode_picture(&mut r);
        if result.is_ok() {
            if let Some(t) = &self.tel {
                t.stage.record(data.len() as u64);
                t.frames.inc(1);
            }
        }
        result
    }

    /// Parses the picture header, validating the quantizer and the
    /// format against this decoder's configuration.
    fn parse_header(&self, r: &mut BitReader<'_>) -> Result<PictureHeader, DecodeError> {
        if r.get_bits(PICTURE_START_CODE_LEN)? != PICTURE_START_CODE {
            return Err(DecodeError::BadStartCode);
        }
        let temporal_ref = r.get_bits(8)? as u8;
        let kind = if r.get_bit()? {
            FrameKind::Inter
        } else {
            FrameKind::Intra
        };
        let raw_qp = r.get_bits(5)? as u8;
        let qp = Qp::new(raw_qp).ok_or(DecodeError::BadQp(raw_qp))?;
        let half_pel = r.get_bit()?;
        let deblock = r.get_bit()?;
        let stream_format = match r.get_bits(2)? {
            0 => VideoFormat::SQCIF,
            1 => VideoFormat::QCIF,
            2 => VideoFormat::CIF,
            _ => {
                let cols = r.get_bits(8)? as usize;
                let rows = r.get_bits(8)? as usize;
                VideoFormat::custom(cols * 16, rows * 16).ok_or(DecodeError::Bitstream(
                    BitstreamError::ValueOutOfRange {
                        what: "custom format dimensions",
                        value: (cols * rows) as i64,
                    },
                ))?
            }
        };
        if stream_format != self.format {
            return Err(DecodeError::FormatMismatch {
                stream: stream_format,
                decoder: self.format,
            });
        }
        Ok(PictureHeader {
            temporal_ref,
            kind,
            qp,
            half_pel,
            deblock,
        })
    }

    /// Decodes one picture from the reader (header + all macroblocks).
    fn decode_picture(
        &mut self,
        r: &mut BitReader<'_>,
    ) -> Result<(Frame, DecodedInfo), DecodeError> {
        let PictureHeader {
            temporal_ref,
            kind,
            qp,
            half_pel,
            deblock,
        } = self.parse_header(r)?;

        let mut new_recon = Frame::new(self.format);
        let mut mb_modes = Vec::with_capacity(self.grid.len());
        let mut mvs = vec![SubPelVector::ZERO; self.grid.len()];
        for mb in self.grid.iter().collect::<Vec<_>>() {
            let mode = match kind {
                FrameKind::Intra => {
                    self.decode_intra_mb(r, qp, &mut new_recon, mb)?;
                    MbMode::Intra
                }
                FrameKind::Inter => {
                    let (mode, mv) = self.decode_p_mb(r, qp, half_pel, &mut new_recon, mb)?;
                    mvs[self.grid.flat_index(mb)] = mv;
                    mode
                }
            };
            mb_modes.push(mode);
        }

        if deblock {
            crate::deblock::deblock_frame(&mut new_recon, qp);
        }

        self.recon = new_recon;
        self.last_mvs = mvs;
        self.decoded_any = true;
        Ok((
            self.recon.clone(),
            DecodedInfo {
                temporal_ref,
                kind,
                qp,
                mb_modes,
            },
        ))
    }

    /// Produces the concealed output for a lost frame and keeps it as the
    /// new reference (so subsequent inter frames predict from the
    /// concealment, propagating the error exactly as the paper models).
    pub fn conceal_lost_frame(&mut self) -> Frame {
        if let Some(t) = &self.tel {
            t.lost_frames.inc(1);
            t.mbs_concealed.inc(self.grid.len() as u64);
        }
        let mbs = self.grid.len() as u16;
        self.trace_emit(|frame| TraceEvent::FrameConcealed { frame, mbs });
        self.conceal_lost_frame_inner()
    }

    /// Concealment without telemetry accounting — the resilient decode
    /// paths call this so damage already tallied in a [`DecodeReport`]
    /// is not double-counted.
    fn conceal_lost_frame_inner(&mut self) -> Frame {
        match self.concealment {
            // Copy-previous: the reference *is* the concealment, no work.
            Concealment::CopyPrevious => self.recon.clone(),
            Concealment::MotionCopy => {
                let mut concealed = Frame::new(self.format);
                let mut pred_y = [0u8; LUMA_BLOCK * LUMA_BLOCK];
                let mut pred_cb = [0u8; CHROMA_BLOCK * CHROMA_BLOCK];
                let mut pred_cr = [0u8; CHROMA_BLOCK * CHROMA_BLOCK];
                for mb in self.grid.iter().collect::<Vec<_>>() {
                    let mv = self.last_mvs[self.grid.flat_index(mb)];
                    let (lx, ly) = mb.luma_origin();
                    let (cx, cy) = mb.chroma_origin();
                    predict_luma_subpel_with(self.kernels, self.recon.y(), mb, mv, &mut pred_y);
                    predict_chroma_subpel_with(self.kernels, self.recon.cb(), mb, mv, &mut pred_cb);
                    predict_chroma_subpel_with(self.kernels, self.recon.cr(), mb, mv, &mut pred_cr);
                    store_pred(
                        concealed.y_mut(),
                        lx,
                        ly,
                        &pred_y,
                        LUMA_BLOCK,
                        0,
                        0,
                        LUMA_BLOCK,
                    );
                    store_pred(
                        concealed.cb_mut(),
                        cx,
                        cy,
                        &pred_cb,
                        CHROMA_BLOCK,
                        0,
                        0,
                        CHROMA_BLOCK,
                    );
                    store_pred(
                        concealed.cr_mut(),
                        cx,
                        cy,
                        &pred_cr,
                        CHROMA_BLOCK,
                        0,
                        0,
                        CHROMA_BLOCK,
                    );
                }
                // The concealed frame becomes the reference; the motion
                // history is retained so consecutive losses keep
                // extrapolating the same field.
                self.recon = concealed.clone();
                concealed
            }
        }
    }

    /// Decodes one frame **totally**: any damage — truncation, flipped
    /// bits, a destroyed header — produces a concealed picture instead of
    /// an error. The output frame always becomes the new reference.
    ///
    /// Recovery ladder:
    ///
    /// 1. Scan for a picture start code (tolerating leading garbage).
    /// 2. Decode macroblocks until the entropy data turns bad; conceal
    ///    the damaged MB range `k..end` via the configured
    ///    [`Concealment`] and keep the partial picture.
    /// 3. If the header itself is unusable, skip past the false start
    ///    code and rescan.
    /// 4. If nothing decodable remains, conceal the whole frame.
    ///
    /// # Example
    ///
    /// ```rust
    /// use pbpair_codec::Decoder;
    /// use pbpair_media::VideoFormat;
    ///
    /// let mut dec = Decoder::new(VideoFormat::QCIF);
    /// // Pure garbage: no panic, no error — a concealed frame plus a
    /// // report saying the whole picture was concealed.
    /// let (frame, report) = dec.decode_frame_resilient(&[0xAB; 64]);
    /// assert_eq!(frame.format(), VideoFormat::QCIF);
    /// assert_eq!(report.frames_recovered, 1);
    /// ```
    pub fn decode_frame_resilient(&mut self, data: &[u8]) -> (Frame, DecodeReport) {
        let mut report = DecodeReport::default();
        let mut offset = 0usize;
        loop {
            let Some(delta) = find_start_code(&data[offset..]) else {
                // Nothing decodable left: conceal the whole picture.
                report.bytes_skipped += (data.len() - offset) as u64;
                report.frames_decoded += 1;
                report.frames_recovered += 1;
                report.mbs_concealed += self.grid.len() as u64;
                let mbs = self.grid.len() as u16;
                self.trace_emit(|frame| TraceEvent::FrameConcealed { frame, mbs });
                let frame = self.conceal_lost_frame_inner();
                if let Some(t) = &self.tel {
                    t.note_report(&report, data.len());
                }
                return (frame, report);
            };
            report.bytes_skipped += delta as u64;
            if offset + delta > 0 {
                report.resyncs += 1;
                let skipped = delta as u32;
                self.trace_emit(|frame| TraceEvent::Resync {
                    frame,
                    bytes_skipped: skipped,
                });
            }
            offset += delta;
            let mut r = BitReader::new(&data[offset..]);
            match self.decode_picture_resilient(&mut r, false) {
                PictureOutcome::Clean { frame } => {
                    report.frames_decoded += 1;
                    if let Some(t) = &self.tel {
                        t.note_report(&report, data.len());
                    }
                    return (frame, report);
                }
                PictureOutcome::Recovered {
                    frame,
                    mbs_concealed,
                } => {
                    report.frames_decoded += 1;
                    report.frames_recovered += 1;
                    report.mbs_concealed += mbs_concealed;
                    let start = (self.grid.len() as u64 - mbs_concealed) as u16;
                    self.trace_emit(|fidx| TraceEvent::MbConcealed {
                        frame: fidx,
                        mb_start: start,
                        count: mbs_concealed as u16,
                    });
                    if let Some(t) = &self.tel {
                        t.note_report(&report, data.len());
                    }
                    return (frame, report);
                }
                PictureOutcome::HeaderLost(_) | PictureOutcome::Phantom => {
                    // False or damaged start code: step past it, rescan.
                    report.bytes_skipped += 1;
                    offset += 1;
                }
            }
        }
    }

    /// Decodes a concatenation of pictures (e.g. several frames'
    /// payloads fused by damaged packetization), resynchronizing on
    /// picture start codes after damage. Returns every picture that
    /// could be emitted, clean or partially concealed.
    ///
    /// After a partially-concealed picture the scanner resumes inside
    /// the damaged tail, where payload bits can emulate a start code
    /// and parse as a plausible header. Such a *phantom* picture would
    /// conceal — and count — the same frame's macroblocks a second
    /// time, so while in the damaged tail a candidate whose first
    /// macroblock already fails is rejected as an emulation (skipped
    /// byte-by-byte) instead of being emitted. A candidate that
    /// decodes at least one macroblock is accepted as a genuine
    /// picture, and a clean picture ends the suspect state.
    pub fn decode_stream(&mut self, data: &[u8]) -> (Vec<Frame>, DecodeReport) {
        let mut report = DecodeReport::default();
        let mut frames = Vec::new();
        let mut offset = 0usize;
        // True while scanning the damaged tail of a recovered picture.
        let mut suspect_tail = false;
        while offset < data.len() {
            let Some(delta) = find_start_code(&data[offset..]) else {
                report.bytes_skipped += (data.len() - offset) as u64;
                break;
            };
            report.bytes_skipped += delta as u64;
            if delta > 0 {
                report.resyncs += 1;
                let skipped = delta as u32;
                self.trace_emit(|frame| TraceEvent::Resync {
                    frame,
                    bytes_skipped: skipped,
                });
            }
            offset += delta;
            let mut r = BitReader::new(&data[offset..]);
            match self.decode_picture_resilient(&mut r, suspect_tail) {
                PictureOutcome::Clean { frame } => {
                    frames.push(frame);
                    report.frames_decoded += 1;
                    suspect_tail = false;
                    // The encoder byte-aligns each picture, so the next
                    // one starts at the following byte boundary.
                    offset += (r.position() as usize).div_ceil(8).max(1);
                }
                PictureOutcome::Recovered {
                    frame,
                    mbs_concealed,
                } => {
                    frames.push(frame);
                    report.frames_decoded += 1;
                    report.frames_recovered += 1;
                    report.mbs_concealed += mbs_concealed;
                    let start = (self.grid.len() as u64 - mbs_concealed) as u16;
                    self.trace_emit(|fidx| TraceEvent::MbConcealed {
                        frame: fidx,
                        mb_start: start,
                        count: mbs_concealed as u16,
                    });
                    suspect_tail = true;
                    // Resume scanning after the bits that decoded before
                    // the damage; the scan ahead finds the next picture.
                    offset += ((r.position() / 8) as usize).max(1);
                }
                PictureOutcome::HeaderLost(_) | PictureOutcome::Phantom => {
                    report.bytes_skipped += 1;
                    offset += 1;
                }
            }
        }
        if let Some(t) = &self.tel {
            t.note_report(&report, data.len());
        }
        (frames, report)
    }

    /// Decodes one picture, capturing mid-stream damage: on the first
    /// bad macroblock the remaining range is concealed and the partial
    /// picture is committed as the new reference.
    ///
    /// With `reject_empty` set, a picture whose very first macroblock
    /// fails is treated as a start-code emulation: nothing is
    /// committed and [`PictureOutcome::Phantom`] is returned. Callers
    /// set this only while scanning the damaged tail of a recovered
    /// picture, where emulations would double-conceal (and
    /// double-count) the same frame's macroblocks.
    fn decode_picture_resilient(
        &mut self,
        r: &mut BitReader<'_>,
        reject_empty: bool,
    ) -> PictureOutcome {
        let header = match self.parse_header(r) {
            Ok(h) => h,
            Err(e) => return PictureOutcome::HeaderLost(e),
        };
        let PictureHeader {
            kind,
            qp,
            half_pel,
            deblock,
            ..
        } = header;

        let mut new_recon = Frame::new(self.format);
        // Concealed macroblocks keep their previous motion so a later
        // motion-copy concealment still has a plausible field.
        let mut mvs = self.last_mvs.clone();
        let mb_list: Vec<MbIndex> = self.grid.iter().collect();
        let mut failed_at: Option<usize> = None;
        for (k, &mb) in mb_list.iter().enumerate() {
            let decoded = match kind {
                FrameKind::Intra => self
                    .decode_intra_mb(r, qp, &mut new_recon, mb)
                    .map(|()| SubPelVector::ZERO),
                FrameKind::Inter => self
                    .decode_p_mb(r, qp, half_pel, &mut new_recon, mb)
                    .map(|(_, mv)| mv),
            };
            match decoded {
                Ok(mv) => mvs[self.grid.flat_index(mb)] = mv,
                Err(_) => {
                    failed_at = Some(k);
                    break;
                }
            }
        }

        match failed_at {
            None => {
                if deblock {
                    crate::deblock::deblock_frame(&mut new_recon, qp);
                }
                self.recon = new_recon;
                self.last_mvs = mvs;
                self.decoded_any = true;
                PictureOutcome::Clean {
                    frame: self.recon.clone(),
                }
            }
            Some(k) => {
                if reject_empty && k == 0 {
                    return PictureOutcome::Phantom;
                }
                self.conceal_mb_range(&mut new_recon, &mb_list[k..]);
                // No deblocking: filtering across the decoded/concealed
                // seam would smear the damage outward.
                self.recon = new_recon;
                self.last_mvs = mvs;
                self.decoded_any = true;
                PictureOutcome::Recovered {
                    frame: self.recon.clone(),
                    mbs_concealed: (mb_list.len() - k) as u64,
                }
            }
        }
    }

    /// Fills the given macroblocks of `new_recon` from the current
    /// reference using the configured concealment strategy.
    fn conceal_mb_range(&self, new_recon: &mut Frame, mbs: &[MbIndex]) {
        let mut pred_y = [0u8; LUMA_BLOCK * LUMA_BLOCK];
        let mut pred_cb = [0u8; CHROMA_BLOCK * CHROMA_BLOCK];
        let mut pred_cr = [0u8; CHROMA_BLOCK * CHROMA_BLOCK];
        for &mb in mbs {
            let mv = match self.concealment {
                Concealment::CopyPrevious => SubPelVector::ZERO,
                Concealment::MotionCopy => self.last_mvs[self.grid.flat_index(mb)],
            };
            let (lx, ly) = mb.luma_origin();
            let (cx, cy) = mb.chroma_origin();
            predict_luma_subpel_with(self.kernels, self.recon.y(), mb, mv, &mut pred_y);
            predict_chroma_subpel_with(self.kernels, self.recon.cb(), mb, mv, &mut pred_cb);
            predict_chroma_subpel_with(self.kernels, self.recon.cr(), mb, mv, &mut pred_cr);
            store_pred(
                new_recon.y_mut(),
                lx,
                ly,
                &pred_y,
                LUMA_BLOCK,
                0,
                0,
                LUMA_BLOCK,
            );
            store_pred(
                new_recon.cb_mut(),
                cx,
                cy,
                &pred_cb,
                CHROMA_BLOCK,
                0,
                0,
                CHROMA_BLOCK,
            );
            store_pred(
                new_recon.cr_mut(),
                cx,
                cy,
                &pred_cr,
                CHROMA_BLOCK,
                0,
                0,
                CHROMA_BLOCK,
            );
        }
    }

    fn decode_intra_mb(
        &mut self,
        r: &mut BitReader<'_>,
        qp: Qp,
        new_recon: &mut Frame,
        mb: MbIndex,
    ) -> Result<(), DecodeError> {
        let (lx, ly) = mb.luma_origin();
        let (cx, cy) = mb.chroma_origin();
        let cbp = vlc::read_cbp(r)?;
        for i in 0..6usize {
            let dc = r.get_bits(8)? as i32;
            let mut zig = if cbp & (1 << (5 - i)) != 0 {
                read_coeff_block(r, 1)?
            } else {
                [0i32; 64]
            };
            zig[0] = dc;
            let quantized = zigzag::unscan(&zig);
            let coefs = dequantize_block(&quantized, qp, true);
            let mut spatial = [0i32; 64];
            self.kernels.idct8(&coefs, &mut spatial);
            let (dx, dy, plane) = match i {
                0 => (lx, ly, new_recon.y_mut()),
                1 => (lx + 8, ly, new_recon.y_mut()),
                2 => (lx, ly + 8, new_recon.y_mut()),
                3 => (lx + 8, ly + 8, new_recon.y_mut()),
                4 => (cx, cy, new_recon.cb_mut()),
                _ => (cx, cy, new_recon.cr_mut()),
            };
            store_block_clamped_with(self.kernels, plane, dx, dy, &spatial);
        }
        Ok(())
    }

    fn decode_p_mb(
        &mut self,
        r: &mut BitReader<'_>,
        qp: Qp,
        half_pel: bool,
        new_recon: &mut Frame,
        mb: MbIndex,
    ) -> Result<(MbMode, SubPelVector), DecodeError> {
        let (lx, ly) = mb.luma_origin();
        let (cx, cy) = mb.chroma_origin();
        if r.get_bit()? {
            // COD = 1: skipped — copy colocated from the reference.
            let mut pred_y = [0u8; LUMA_BLOCK * LUMA_BLOCK];
            predict_luma(self.recon.y(), mb, MotionVector::ZERO, &mut pred_y);
            let mut pred_cb = [0u8; CHROMA_BLOCK * CHROMA_BLOCK];
            let mut pred_cr = [0u8; CHROMA_BLOCK * CHROMA_BLOCK];
            predict_chroma(self.recon.cb(), mb, MotionVector::ZERO, &mut pred_cb);
            predict_chroma(self.recon.cr(), mb, MotionVector::ZERO, &mut pred_cr);
            store_pred(
                new_recon.y_mut(),
                lx,
                ly,
                &pred_y,
                LUMA_BLOCK,
                0,
                0,
                LUMA_BLOCK,
            );
            store_pred(
                new_recon.cb_mut(),
                cx,
                cy,
                &pred_cb,
                CHROMA_BLOCK,
                0,
                0,
                CHROMA_BLOCK,
            );
            store_pred(
                new_recon.cr_mut(),
                cx,
                cy,
                &pred_cr,
                CHROMA_BLOCK,
                0,
                0,
                CHROMA_BLOCK,
            );
            return Ok((MbMode::Skip, SubPelVector::ZERO));
        }
        if r.get_bit()? {
            // Intra macroblock inside a P-frame.
            self.decode_intra_mb(r, qp, new_recon, mb)?;
            return Ok((MbMode::Intra, SubPelVector::ZERO));
        }

        let mvx = vlc::read_mvd(r)?;
        let mvy = vlc::read_mvd(r)?;
        let mv = if half_pel {
            SubPelVector::from_half_units(mvx, mvy)
        } else {
            SubPelVector::integer(MotionVector::new(mvx, mvy))
        };
        let cbp = vlc::read_cbp(r)?;

        let mut pred_y = [0u8; LUMA_BLOCK * LUMA_BLOCK];
        predict_luma_subpel_with(self.kernels, self.recon.y(), mb, mv, &mut pred_y);
        let mut pred_cb = [0u8; CHROMA_BLOCK * CHROMA_BLOCK];
        let mut pred_cr = [0u8; CHROMA_BLOCK * CHROMA_BLOCK];
        predict_chroma_subpel_with(self.kernels, self.recon.cb(), mb, mv, &mut pred_cb);
        predict_chroma_subpel_with(self.kernels, self.recon.cr(), mb, mv, &mut pred_cr);

        let sub = [(0usize, 0usize), (8, 0), (0, 8), (8, 8)];
        #[allow(clippy::needless_range_loop)] // i indexes both cbp bits and sub[]
        for i in 0..6usize {
            let resid = if cbp & (1 << (5 - i)) != 0 {
                let zig = read_coeff_block(r, 0)?;
                let quantized = zigzag::unscan(&zig);
                let coefs = dequantize_block(&quantized, qp, false);
                let mut spatial = [0i32; 64];
                self.kernels.idct8(&coefs, &mut spatial);
                spatial
            } else {
                [0i32; 64]
            };
            match i {
                0..=3 => {
                    let (sx, sy) = sub[i];
                    store_pred_plus_residual_with(
                        self.kernels,
                        new_recon.y_mut(),
                        lx + sx,
                        ly + sy,
                        &pred_y,
                        LUMA_BLOCK,
                        sx,
                        sy,
                        &resid,
                    );
                }
                4 => store_pred_plus_residual_with(
                    self.kernels,
                    new_recon.cb_mut(),
                    cx,
                    cy,
                    &pred_cb,
                    CHROMA_BLOCK,
                    0,
                    0,
                    &resid,
                ),
                _ => store_pred_plus_residual_with(
                    self.kernels,
                    new_recon.cr_mut(),
                    cx,
                    cy,
                    &pred_cr,
                    CHROMA_BLOCK,
                    0,
                    0,
                    &resid,
                ),
            }
        }
        Ok((MbMode::Inter, mv))
    }
}

/// Outcome of one resilient picture decode (internal).
enum PictureOutcome {
    /// Every macroblock decoded; the picture is exact.
    Clean {
        /// The decoded picture.
        frame: Frame,
    },
    /// The entropy data went bad mid-picture; the tail was concealed.
    Recovered {
        /// The partially-decoded, partially-concealed picture.
        frame: Frame,
        /// How many macroblocks were concealed.
        mbs_concealed: u64,
    },
    /// The header was unusable; nothing was committed.
    HeaderLost(#[allow(dead_code)] DecodeError),
    /// A start-code emulation inside a damaged tail: the header
    /// parsed but not a single macroblock decoded. Nothing was
    /// committed; the caller skips past the false start code.
    Phantom,
}

/// Finds the byte offset of the next picture start code in `data`.
///
/// The 17-bit start code (value 1) is byte-aligned by the encoder, so it
/// reads as two zero bytes followed by a byte with the top bit set.
/// Payload bits can emulate this pattern; resilient decoding treats such
/// emulations as candidates and rejects them via header validation.
fn find_start_code(data: &[u8]) -> Option<usize> {
    data.windows(3)
        .position(|w| w[0] == 0 && w[1] == 0 && w[2] & 0x80 != 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::{Encoder, EncoderConfig};
    use crate::policy::NaturalPolicy;
    use pbpair_media::metrics;
    use pbpair_media::synth::SyntheticSequence;

    #[test]
    fn decoder_matches_encoder_reconstruction_bit_exactly() {
        let mut enc = Encoder::new(EncoderConfig::default());
        let mut dec = Decoder::new(VideoFormat::QCIF);
        let mut policy = NaturalPolicy::new();
        let mut seq = SyntheticSequence::foreman_class(9);
        for _ in 0..6 {
            let f = seq.next_frame();
            let e = enc.encode_frame(&f, &mut policy);
            let (decoded, info) = dec.decode_frame(&e.data).unwrap();
            assert_eq!(&decoded, enc.reconstructed(), "drift at frame {}", e.index);
            assert_eq!(info.kind, e.kind);
            assert_eq!(info.mb_modes, e.mb_modes);
            assert_eq!(info.temporal_ref as u64, e.index & 0xFF);
        }
    }

    #[test]
    fn decoded_quality_is_reasonable() {
        let mut enc = Encoder::new(EncoderConfig::default());
        let mut dec = Decoder::new(VideoFormat::QCIF);
        let mut policy = NaturalPolicy::new();
        let mut seq = SyntheticSequence::garden_class(10);
        let mut last_psnr = 0.0;
        for _ in 0..4 {
            let f = seq.next_frame();
            let e = enc.encode_frame(&f, &mut policy);
            let (decoded, _) = dec.decode_frame(&e.data).unwrap();
            last_psnr = metrics::psnr_y(&f, &decoded);
        }
        assert!(last_psnr > 26.0, "end-to-end PSNR too low: {last_psnr}");
    }

    #[test]
    fn concealment_repeats_previous_frame() {
        let mut enc = Encoder::new(EncoderConfig::default());
        let mut dec = Decoder::new(VideoFormat::QCIF);
        let mut policy = NaturalPolicy::new();
        let mut seq = SyntheticSequence::akiyo_class(2);
        let f0 = seq.next_frame();
        let e0 = enc.encode_frame(&f0, &mut policy);
        let (d0, _) = dec.decode_frame(&e0.data).unwrap();
        let concealed = dec.conceal_lost_frame();
        assert_eq!(concealed, d0);
        assert_eq!(dec.last_frame(), &d0);
    }

    #[test]
    fn error_propagates_through_p_frames_after_a_loss() {
        // Encode 3 frames; decoder drops frame 1. Frame 2's prediction
        // then mismatches, and quality must be worse than the loss-free
        // path at frame 2.
        let make = || {
            let mut enc = Encoder::new(EncoderConfig::default());
            let mut policy = NaturalPolicy::new();
            let mut seq = SyntheticSequence::foreman_class(33);
            let fs: Vec<_> = (0..3).map(|_| seq.next_frame()).collect();
            let es: Vec<_> = fs
                .iter()
                .map(|f| enc.encode_frame(f, &mut policy))
                .collect();
            (fs, es)
        };
        let (fs, es) = make();

        let mut clean = Decoder::new(VideoFormat::QCIF);
        for e in &es {
            let _ = clean.decode_frame(&e.data).unwrap();
        }
        let clean_last = clean.last_frame().clone();

        let mut lossy = Decoder::new(VideoFormat::QCIF);
        let _ = lossy.decode_frame(&es[0].data).unwrap();
        let _ = lossy.conceal_lost_frame(); // frame 1 lost
        let (lossy_last, _) = lossy.decode_frame(&es[2].data).unwrap();

        let p_clean = metrics::psnr_y(&fs[2], &clean_last);
        let p_lossy = metrics::psnr_y(&fs[2], &lossy_last);
        assert!(
            p_lossy < p_clean,
            "loss must hurt quality: clean {p_clean} vs lossy {p_lossy}"
        );
    }

    #[test]
    fn motion_copy_beats_plain_copy_on_panning_content() {
        // GARDEN-class content pans steadily; extrapolating the motion
        // field must conceal a lost frame better than freezing.
        let run = |concealment: Concealment| {
            let mut enc = Encoder::new(EncoderConfig::default());
            let mut dec = Decoder::with_concealment(VideoFormat::QCIF, concealment);
            let mut policy = NaturalPolicy::new();
            let mut seq = SyntheticSequence::garden_class(12);
            let mut last_psnr = 0.0;
            for i in 0..6 {
                let f = seq.next_frame();
                let e = enc.encode_frame(&f, &mut policy);
                let shown = if i == 4 {
                    dec.conceal_lost_frame()
                } else {
                    dec.decode_frame(&e.data).unwrap().0
                };
                if i == 4 {
                    last_psnr = metrics::psnr_y(&f, &shown);
                }
            }
            last_psnr
        };
        let copy = run(Concealment::CopyPrevious);
        let motion = run(Concealment::MotionCopy);
        assert!(
            motion > copy + 0.5,
            "motion-copy {motion} must beat copy {copy} on a pan"
        );
    }

    #[test]
    fn motion_copy_without_history_degenerates_to_copy() {
        // After only an I-frame, the motion field is all-zero, so both
        // concealments produce the same frame.
        let mut enc = Encoder::new(EncoderConfig::default());
        let mut policy = NaturalPolicy::new();
        let mut seq = SyntheticSequence::akiyo_class(3);
        let f0 = seq.next_frame();
        let e0 = enc.encode_frame(&f0, &mut policy);
        let mut a = Decoder::with_concealment(VideoFormat::QCIF, Concealment::CopyPrevious);
        let mut b = Decoder::with_concealment(VideoFormat::QCIF, Concealment::MotionCopy);
        let _ = a.decode_frame(&e0.data).unwrap();
        let _ = b.decode_frame(&e0.data).unwrap();
        assert_eq!(a.conceal_lost_frame(), b.conceal_lost_frame());
    }

    #[test]
    fn truncated_data_is_rejected_and_reference_preserved() {
        let mut enc = Encoder::new(EncoderConfig::default());
        let mut dec = Decoder::new(VideoFormat::QCIF);
        let mut policy = NaturalPolicy::new();
        let mut seq = SyntheticSequence::foreman_class(5);
        let e0 = enc.encode_frame(&seq.next_frame(), &mut policy);
        let (d0, _) = dec.decode_frame(&e0.data).unwrap();
        let e1 = enc.encode_frame(&seq.next_frame(), &mut policy);
        let err = dec.decode_frame(&e1.data[..e1.data.len() / 2]);
        assert!(err.is_err());
        assert_eq!(dec.last_frame(), &d0, "reference must survive a bad frame");
    }

    #[test]
    fn deblocked_streams_decode_bit_exactly_and_reduce_blockiness() {
        let cfg = EncoderConfig {
            deblock: true,
            qp: crate::quant::Qp::new(16).unwrap(), // coarse: visible blocking
            ..EncoderConfig::default()
        };
        let mut enc = Encoder::new(cfg);
        let mut enc_plain = Encoder::new(EncoderConfig {
            deblock: false,
            ..cfg
        });
        let mut dec = Decoder::new(VideoFormat::QCIF);
        let mut policy = NaturalPolicy::new();
        let mut policy2 = NaturalPolicy::new();
        let mut seq = SyntheticSequence::foreman_class(6);
        for _ in 0..4 {
            let f = seq.next_frame();
            let e = enc.encode_frame(&f, &mut policy);
            let _ = enc_plain.encode_frame(&f, &mut policy2);
            let (decoded, _) = dec.decode_frame(&e.data).unwrap();
            assert_eq!(&decoded, enc.reconstructed(), "deblock recon drift");
        }
        let filtered = crate::deblock::blockiness(enc.reconstructed().y());
        let plain = crate::deblock::blockiness(enc_plain.reconstructed().y());
        assert!(
            filtered < plain,
            "deblocking must reduce boundary steps: {filtered} vs {plain}"
        );
    }

    #[test]
    fn half_pel_streams_decode_bit_exactly() {
        let cfg = EncoderConfig {
            half_pel: true,
            ..EncoderConfig::default()
        };
        let mut enc = Encoder::new(cfg);
        let mut dec = Decoder::new(VideoFormat::QCIF);
        let mut policy = NaturalPolicy::new();
        let mut seq = SyntheticSequence::garden_class(14);
        for _ in 0..5 {
            let f = seq.next_frame();
            let e = enc.encode_frame(&f, &mut policy);
            let (decoded, _) = dec.decode_frame(&e.data).unwrap();
            assert_eq!(&decoded, enc.reconstructed(), "half-pel recon drift");
        }
    }

    #[test]
    fn half_pel_improves_quality_on_sub_pel_motion() {
        // GARDEN pans at 2.5 px/frame — an exact half-pel component.
        // Half-pel prediction must improve loss-free PSNR at equal QP.
        let run = |half_pel: bool| {
            let cfg = EncoderConfig {
                half_pel,
                ..EncoderConfig::default()
            };
            let mut enc = Encoder::new(cfg);
            let mut policy = NaturalPolicy::new();
            let mut seq = SyntheticSequence::garden_class(5);
            let mut psnr = 0.0;
            let mut bits = 0u64;
            for i in 0..8 {
                let f = seq.next_frame();
                let e = enc.encode_frame(&f, &mut policy);
                bits += e.stats.bits;
                if i >= 4 {
                    psnr += metrics::psnr_y(&f, enc.reconstructed());
                }
            }
            (psnr / 4.0, bits)
        };
        let (p_int, bits_int) = run(false);
        let (p_half, bits_half) = run(true);
        // Half-pel buys quality, bits, or both; require a clear win on
        // the combined rate-distortion picture.
        let better_quality = p_half > p_int + 0.3;
        let fewer_bits = bits_half * 10 < bits_int * 95 / 10; // <95%
        assert!(
            better_quality || fewer_bits,
            "half-pel must help: psnr {p_int}→{p_half}, bits {bits_int}→{bits_half}"
        );
    }

    #[test]
    fn garbage_start_code_is_rejected() {
        let mut dec = Decoder::new(VideoFormat::QCIF);
        let garbage = vec![0xFFu8; 100];
        assert_eq!(
            dec.decode_frame(&garbage).unwrap_err(),
            DecodeError::BadStartCode
        );
    }

    #[test]
    fn format_mismatch_is_rejected_not_misparsed() {
        // A CIF stream offered to a QCIF decoder must fail cleanly.
        let cif_cfg = EncoderConfig {
            format: VideoFormat::CIF,
            ..EncoderConfig::default()
        };
        let mut enc = Encoder::new(cif_cfg);
        let mut policy = NaturalPolicy::new();
        let frame = pbpair_media::Frame::flat(VideoFormat::CIF, 100);
        let e = enc.encode_frame(&frame, &mut policy);
        let mut dec = Decoder::new(VideoFormat::QCIF);
        match dec.decode_frame(&e.data) {
            Err(DecodeError::FormatMismatch { stream, decoder }) => {
                assert_eq!(stream, VideoFormat::CIF);
                assert_eq!(decoder, VideoFormat::QCIF);
            }
            other => panic!("expected FormatMismatch, got {other:?}"),
        }
    }

    #[test]
    fn custom_format_travels_in_the_header() {
        let fmt = VideoFormat::custom(64, 48).unwrap();
        let cfg = EncoderConfig {
            format: fmt,
            ..EncoderConfig::default()
        };
        let mut enc = Encoder::new(cfg);
        let mut dec = Decoder::new(fmt);
        let mut policy = NaturalPolicy::new();
        let frame = pbpair_media::Frame::flat(fmt, 80);
        let e = enc.encode_frame(&frame, &mut policy);
        let (decoded, _) = dec.decode_frame(&e.data).unwrap();
        assert_eq!(&decoded, enc.reconstructed());
    }

    #[test]
    fn resilient_decode_of_clean_stream_is_bit_exact() {
        let mut enc = Encoder::new(EncoderConfig::default());
        let mut strict = Decoder::new(VideoFormat::QCIF);
        let mut resilient = Decoder::new(VideoFormat::QCIF);
        let mut policy = NaturalPolicy::new();
        let mut seq = SyntheticSequence::foreman_class(21);
        for _ in 0..5 {
            let e = enc.encode_frame(&seq.next_frame(), &mut policy);
            let (a, _) = strict.decode_frame(&e.data).unwrap();
            let (b, report) = resilient.decode_frame_resilient(&e.data);
            assert_eq!(a, b, "resilient path must match strict on clean data");
            assert_eq!(report.frames_decoded, 1);
            assert!(!report.any_damage(), "clean data must report no damage");
        }
    }

    #[test]
    fn resilient_decode_conceals_truncated_tail() {
        let mut enc = Encoder::new(EncoderConfig::default());
        let mut dec = Decoder::new(VideoFormat::QCIF);
        let mut policy = NaturalPolicy::new();
        let mut seq = SyntheticSequence::foreman_class(5);
        let e0 = enc.encode_frame(&seq.next_frame(), &mut policy);
        let (_, r0) = dec.decode_frame_resilient(&e0.data);
        assert_eq!(r0.frames_recovered, 0);
        let e1 = enc.encode_frame(&seq.next_frame(), &mut policy);
        let (frame, r1) = dec.decode_frame_resilient(&e1.data[..e1.data.len() / 2]);
        assert_eq!(r1.frames_decoded, 1);
        assert_eq!(r1.frames_recovered, 1);
        assert!(r1.mbs_concealed > 0, "a cut stream must conceal its tail");
        assert!(
            (r1.mbs_concealed as usize) < MbGrid::new(VideoFormat::QCIF).len(),
            "half the stream should still decode some leading MBs"
        );
        // The partially-recovered picture is committed as the reference.
        assert_eq!(dec.last_frame(), &frame);
    }

    #[test]
    fn resilient_decode_of_garbage_conceals_whole_frame() {
        let mut dec = Decoder::new(VideoFormat::QCIF);
        let (frame, report) = dec.decode_frame_resilient(&[0xABu8; 200]);
        assert_eq!(frame.format(), VideoFormat::QCIF);
        assert_eq!(report.frames_decoded, 1);
        assert_eq!(report.frames_recovered, 1);
        assert_eq!(
            report.mbs_concealed as usize,
            MbGrid::new(VideoFormat::QCIF).len()
        );
        assert_eq!(report.bytes_skipped, 200);
    }

    #[test]
    fn resilient_decode_resyncs_past_leading_garbage() {
        let mut enc = Encoder::new(EncoderConfig::default());
        let mut dec = Decoder::new(VideoFormat::QCIF);
        let mut policy = NaturalPolicy::new();
        let mut seq = SyntheticSequence::akiyo_class(8);
        let e = enc.encode_frame(&seq.next_frame(), &mut policy);
        // Garbage prefix free of start-code patterns (no 00 00 bytes).
        let mut data = vec![0x55u8; 37];
        data.extend_from_slice(&e.data);
        let (frame, report) = dec.decode_frame_resilient(&data);
        assert_eq!(report.frames_decoded, 1);
        assert_eq!(report.frames_recovered, 0, "picture itself is clean");
        assert_eq!(report.bytes_skipped, 37);
        assert_eq!(report.resyncs, 1);
        let mut strict = Decoder::new(VideoFormat::QCIF);
        assert_eq!(frame, strict.decode_frame(&e.data).unwrap().0);
    }

    #[test]
    fn decode_stream_walks_concatenated_pictures() {
        let mut enc = Encoder::new(EncoderConfig::default());
        let mut policy = NaturalPolicy::new();
        let mut seq = SyntheticSequence::foreman_class(11);
        let mut blob = Vec::new();
        let mut strict = Decoder::new(VideoFormat::QCIF);
        let mut expected = Vec::new();
        for _ in 0..4 {
            let e = enc.encode_frame(&seq.next_frame(), &mut policy);
            expected.push(strict.decode_frame(&e.data).unwrap().0);
            blob.extend_from_slice(&e.data);
        }
        let mut dec = Decoder::new(VideoFormat::QCIF);
        let (frames, report) = dec.decode_stream(&blob);
        assert_eq!(frames, expected);
        assert_eq!(report.frames_decoded, 4);
        assert!(!report.any_damage());
    }

    #[test]
    fn decode_stream_conceals_truncated_final_picture() {
        let mut enc = Encoder::new(EncoderConfig::default());
        let mut policy = NaturalPolicy::new();
        let mut seq = SyntheticSequence::foreman_class(19);
        let e0 = enc.encode_frame(&seq.next_frame(), &mut policy);
        let e1 = enc.encode_frame(&seq.next_frame(), &mut policy);
        let mut blob = e0.data.clone();
        blob.extend_from_slice(&e1.data[..e1.data.len() / 2]);

        let mut dec = Decoder::new(VideoFormat::QCIF);
        let (frames, report) = dec.decode_stream(&blob);
        assert_eq!(frames.len(), 2, "both pictures must be emitted");
        assert_eq!(report.frames_decoded, 2);
        assert_eq!(report.frames_recovered, 1, "the cut picture recovers");
        assert!(report.mbs_concealed > 0);
    }

    #[test]
    fn decode_stream_resyncs_past_an_obliterated_picture() {
        // Picture 1 is replaced entirely by garbage containing no
        // start-code pattern; the scanner must skip it and pick up
        // picture 2 at its real start code.
        let mut enc = Encoder::new(EncoderConfig::default());
        let mut policy = NaturalPolicy::new();
        let mut seq = SyntheticSequence::foreman_class(19);
        let e0 = enc.encode_frame(&seq.next_frame(), &mut policy);
        let e1 = enc.encode_frame(&seq.next_frame(), &mut policy);
        let e2 = enc.encode_frame(&seq.next_frame(), &mut policy);
        let garbage = vec![0x55u8; e1.data.len()];
        let mut blob = e0.data.clone();
        blob.extend_from_slice(&garbage);
        blob.extend_from_slice(&e2.data);

        let mut dec = Decoder::new(VideoFormat::QCIF);
        let (frames, report) = dec.decode_stream(&blob);
        assert_eq!(frames.len(), 2, "pictures 0 and 2 must be emitted");
        assert_eq!(report.frames_decoded, 2);
        assert_eq!(report.resyncs, 1, "one forward scan past the garbage");
        assert_eq!(report.bytes_skipped, garbage.len() as u64);
    }

    /// Builds a byte-aligned Inter QCIF picture header with a valid
    /// quantizer and no payload — exactly what a start-code emulation
    /// in a damaged tail can look like.
    fn phantom_header() -> Vec<u8> {
        use crate::bitstream::BitWriter;
        let mut w = BitWriter::new();
        w.put_bits(PICTURE_START_CODE, PICTURE_START_CODE_LEN);
        w.put_bits(5, 8); // temporal_ref
        w.put_bit(true); // Inter
        w.put_bits(8, 5); // valid QP
        w.put_bit(false); // half_pel
        w.put_bit(false); // deblock
        w.put_bits(1, 2); // format = QCIF
        w.finish()
    }

    #[test]
    fn decode_stream_does_not_double_count_phantom_picture_in_damaged_tail() {
        // A truncated picture leaves the scanner inside its damaged
        // tail, where a start-code emulation that parses as a header
        // but decodes zero MBs used to be emitted as a second
        // whole-frame concealment — double-counting the same frame's
        // MBs. The stream must decode identically to feeding the
        // pictures through decode_frame_resilient one at a time.
        let mut enc = Encoder::new(EncoderConfig::default());
        let mut policy = NaturalPolicy::new();
        let mut seq = SyntheticSequence::foreman_class(19);
        let e0 = enc.encode_frame(&seq.next_frame(), &mut policy);
        let e1 = enc.encode_frame(&seq.next_frame(), &mut policy);
        let cut = &e1.data[..e1.data.len() / 2];

        let mut blob = e0.data.clone();
        blob.extend_from_slice(cut);
        blob.extend_from_slice(&phantom_header());

        let mut reference = Decoder::new(VideoFormat::QCIF);
        let (r0_frame, r0) = reference.decode_frame_resilient(&e0.data);
        let (r1_frame, r1) = reference.decode_frame_resilient(cut);
        assert_eq!(r0.frames_recovered, 0);
        assert_eq!(r1.frames_recovered, 1);

        let mut dec = Decoder::new(VideoFormat::QCIF);
        let (frames, report) = dec.decode_stream(&blob);
        assert_eq!(
            frames,
            vec![r0_frame, r1_frame],
            "the phantom header must not become a third picture"
        );
        assert_eq!(report.frames_decoded, 2);
        assert_eq!(report.frames_recovered, 1);
        assert_eq!(
            report.mbs_concealed, r1.mbs_concealed,
            "each MB may be counted at most once per frame"
        );
        assert!(
            (report.mbs_concealed as usize) < MbGrid::new(VideoFormat::QCIF).len(),
            "only the damaged tail of the cut picture is concealed"
        );
    }

    #[test]
    fn decode_frame_resilient_still_conceals_header_only_picture() {
        // Outside a damaged tail a header with no payload is a
        // genuinely truncated picture and must still be concealed
        // (the phantom rejection only applies in-stream after damage).
        let mut dec = Decoder::new(VideoFormat::QCIF);
        let (frame, report) = dec.decode_frame_resilient(&phantom_header());
        assert_eq!(frame.format(), VideoFormat::QCIF);
        assert_eq!(report.frames_decoded, 1);
        assert_eq!(report.frames_recovered, 1);
        assert_eq!(
            report.mbs_concealed as usize,
            MbGrid::new(VideoFormat::QCIF).len()
        );
    }

    #[test]
    fn decode_report_absorbs() {
        let mut total = DecodeReport::default();
        total.absorb(&DecodeReport {
            frames_decoded: 2,
            frames_recovered: 1,
            mbs_concealed: 9,
            resyncs: 1,
            bytes_skipped: 100,
        });
        total.absorb(&DecodeReport {
            frames_decoded: 1,
            ..DecodeReport::default()
        });
        assert_eq!(total.frames_decoded, 3);
        assert_eq!(total.frames_recovered, 1);
        assert_eq!(total.mbs_concealed, 9);
        assert!(total.any_damage());
        assert!(!DecodeReport::default().any_damage());
    }

    #[test]
    fn find_start_code_locates_aligned_codes() {
        assert_eq!(find_start_code(&[0x00, 0x00, 0x80]), Some(0));
        assert_eq!(find_start_code(&[0x55, 0x00, 0x00, 0xFF]), Some(1));
        assert_eq!(find_start_code(&[0x00, 0x00, 0x7F]), None);
        assert_eq!(find_start_code(&[0x00, 0x00]), None);
        assert_eq!(find_start_code(&[]), None);
    }

    #[test]
    fn bad_qp_is_rejected() {
        // Hand-build a header with QP = 0.
        use crate::bitstream::BitWriter;
        let mut w = BitWriter::new();
        w.put_bits(PICTURE_START_CODE, PICTURE_START_CODE_LEN);
        w.put_bits(0, 8);
        w.put_bit(false);
        w.put_bits(0, 5);
        let mut dec = Decoder::new(VideoFormat::QCIF);
        assert_eq!(
            dec.decode_frame(&w.finish()).unwrap_err(),
            DecodeError::BadQp(0)
        );
    }
}
