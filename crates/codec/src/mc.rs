//! Motion compensation: building predictions from the reference frame.
//!
//! Integer-pixel prediction with H.263-style edge extension (reference
//! reads outside the picture clamp to the border), plus optional
//! half-pixel bilinear interpolation with H.263 rounding
//! ([`predict_luma_subpel`]). Chroma uses the floor-halved luma vector.
//! Both encoder and decoder use these exact functions, so prediction is
//! bit-identical end to end.

use crate::kernels::Kernels;
use crate::mb::{MotionVector, SubPelVector};
use pbpair_media::{MbIndex, Plane};

/// Side of a luma prediction block.
pub const LUMA_BLOCK: usize = 16;
/// Side of a chroma prediction block.
pub const CHROMA_BLOCK: usize = 8;

/// Fills `out` (16×16 row-major) with the motion-compensated luma
/// prediction for macroblock `mb` displaced by `mv`.
///
/// # Panics
///
/// Panics if `out.len() != 256`.
pub fn predict_luma(reference: &Plane, mb: MbIndex, mv: MotionVector, out: &mut [u8]) {
    assert_eq!(out.len(), LUMA_BLOCK * LUMA_BLOCK);
    let (ox, oy) = mb.luma_origin();
    reference.copy_block_clamped(
        ox as isize + mv.x as isize,
        oy as isize + mv.y as isize,
        LUMA_BLOCK,
        LUMA_BLOCK,
        out,
    );
}

/// Fills `out` (16×16 row-major) with the half-pixel motion-compensated
/// luma prediction for macroblock `mb`. The sub-pel position is
/// interpolated bilinearly with H.263 rounding:
/// horizontal/vertical half positions average 2 samples with `+1`
/// rounding, the diagonal position averages 4 with `+2`.
///
/// # Panics
///
/// Panics if `out.len() != 256`.
pub fn predict_luma_subpel(reference: &Plane, mb: MbIndex, mv: SubPelVector, out: &mut [u8]) {
    predict_luma_subpel_with(Kernels::active(), reference, mb, mv, out)
}

/// [`predict_luma_subpel`] through an explicit kernel table: the region
/// fetch (edge clamping) stays scalar, the averaging runs on the tier's
/// half-pel kernel.
///
/// # Panics
///
/// Panics if `out.len() != 256`.
pub fn predict_luma_subpel_with(
    k: &Kernels,
    reference: &Plane,
    mb: MbIndex,
    mv: SubPelVector,
    out: &mut [u8],
) {
    assert_eq!(out.len(), LUMA_BLOCK * LUMA_BLOCK);
    let (hx, hy) = (mv.half_x as usize, mv.half_y as usize);
    if hx == 0 && hy == 0 {
        predict_luma(reference, mb, mv.int, out);
        return;
    }
    // Fetch the (16+hx) × (16+hy) integer-pel region, then average.
    let (ox, oy) = mb.luma_origin();
    let w = LUMA_BLOCK + hx;
    let h = LUMA_BLOCK + hy;
    let mut region = [0u8; (LUMA_BLOCK + 1) * (LUMA_BLOCK + 1)];
    reference.copy_block_clamped(
        ox as isize + mv.int.x as isize,
        oy as isize + mv.int.y as isize,
        w,
        h,
        &mut region[..w * h],
    );
    k.halfpel(&region[..w * h], w, hx, hy, out, LUMA_BLOCK);
}

/// Fills `out` (8×8 row-major) with the motion-compensated chroma
/// prediction for macroblock `mb`; the luma vector is halved internally.
///
/// # Panics
///
/// Panics if `out.len() != 64`.
pub fn predict_chroma(reference: &Plane, mb: MbIndex, mv: MotionVector, out: &mut [u8]) {
    assert_eq!(out.len(), CHROMA_BLOCK * CHROMA_BLOCK);
    let (ox, oy) = mb.chroma_origin();
    let cmv = mv.chroma();
    reference.copy_block_clamped(
        ox as isize + cmv.x as isize,
        oy as isize + cmv.y as isize,
        CHROMA_BLOCK,
        CHROMA_BLOCK,
        out,
    );
}

/// Fills `out` (8×8 row-major) with the half-pixel motion-compensated
/// chroma prediction for macroblock `mb`. The chroma displacement is the
/// floor-halved luma half-pel vector, itself in half-pel chroma units.
///
/// # Panics
///
/// Panics if `out.len() != 64`.
pub fn predict_chroma_subpel(reference: &Plane, mb: MbIndex, mv: SubPelVector, out: &mut [u8]) {
    predict_chroma_subpel_with(Kernels::active(), reference, mb, mv, out)
}

/// [`predict_chroma_subpel`] through an explicit kernel table.
///
/// # Panics
///
/// Panics if `out.len() != 64`.
pub fn predict_chroma_subpel_with(
    k: &Kernels,
    reference: &Plane,
    mb: MbIndex,
    mv: SubPelVector,
    out: &mut [u8],
) {
    assert_eq!(out.len(), CHROMA_BLOCK * CHROMA_BLOCK);
    let (chx, chy) = mv.chroma_half_units();
    let (ix, hx) = (chx.div_euclid(2), chx.rem_euclid(2) as usize);
    let (iy, hy) = (chy.div_euclid(2), chy.rem_euclid(2) as usize);
    let (ox, oy) = mb.chroma_origin();
    if hx == 0 && hy == 0 {
        reference.copy_block_clamped(
            ox as isize + ix as isize,
            oy as isize + iy as isize,
            CHROMA_BLOCK,
            CHROMA_BLOCK,
            out,
        );
        return;
    }
    let w = CHROMA_BLOCK + hx;
    let h = CHROMA_BLOCK + hy;
    let mut region = [0u8; (CHROMA_BLOCK + 1) * (CHROMA_BLOCK + 1)];
    reference.copy_block_clamped(
        ox as isize + ix as isize,
        oy as isize + iy as isize,
        w,
        h,
        &mut region[..w * h],
    );
    k.halfpel(&region[..w * h], w, hx, hy, out, CHROMA_BLOCK);
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbpair_media::VideoFormat;

    fn gradient_plane(w: usize, h: usize) -> Plane {
        Plane::from_fn(w, h, |x, y| ((x * 3 + y * 5) % 256) as u8)
    }

    #[test]
    fn zero_vector_copies_colocated_block() {
        let fmt = VideoFormat::QCIF;
        let refp = gradient_plane(fmt.width(), fmt.height());
        let mb = MbIndex::new(2, 3);
        let mut out = vec![0u8; 256];
        predict_luma(&refp, mb, MotionVector::ZERO, &mut out);
        let (ox, oy) = mb.luma_origin();
        for y in 0..16 {
            for x in 0..16 {
                assert_eq!(out[y * 16 + x], refp.get(ox + x, oy + y));
            }
        }
    }

    #[test]
    fn displaced_vector_shifts_the_source() {
        let fmt = VideoFormat::QCIF;
        let refp = gradient_plane(fmt.width(), fmt.height());
        let mb = MbIndex::new(4, 5);
        let mv = MotionVector::new(-3, 7);
        let mut out = vec![0u8; 256];
        predict_luma(&refp, mb, mv, &mut out);
        let (ox, oy) = mb.luma_origin();
        assert_eq!(
            out[0],
            refp.get((ox as isize - 3) as usize, (oy as isize + 7) as usize)
        );
    }

    #[test]
    fn prediction_at_frame_edge_clamps() {
        let fmt = VideoFormat::QCIF;
        let refp = gradient_plane(fmt.width(), fmt.height());
        let mb = MbIndex::new(0, 0);
        let mv = MotionVector::new(-10, -10);
        let mut out = vec![0u8; 256];
        predict_luma(&refp, mb, mv, &mut out);
        // The top-left of the prediction clamps to sample (0,0).
        assert_eq!(out[0], refp.get(0, 0));
    }

    #[test]
    fn subpel_integer_position_matches_integer_predictor() {
        let fmt = VideoFormat::QCIF;
        let refp = gradient_plane(fmt.width(), fmt.height());
        let mb = MbIndex::new(3, 3);
        let mv = MotionVector::new(2, -1);
        let mut a = vec![0u8; 256];
        let mut b = vec![0u8; 256];
        predict_luma(&refp, mb, mv, &mut a);
        predict_luma_subpel(&refp, mb, SubPelVector::integer(mv), &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn half_pel_interpolation_averages_with_h263_rounding() {
        // A plane where row y has value 10y and column structure 4x: make
        // averages easy to verify.
        let refp = Plane::from_fn(64, 64, |x, y| (4 * x + 2 * y) as u8);
        let mb = MbIndex::new(1, 1);
        // Horizontal half position: avg of (x, x+1) = 4x+2y + 2.
        let mut out = vec![0u8; 256];
        predict_luma_subpel(&refp, mb, SubPelVector::from_half_units(1, 0), &mut out);
        let (ox, oy) = mb.luma_origin();
        let a = refp.get(ox, oy) as u16;
        let b = refp.get(ox + 1, oy) as u16;
        assert_eq!(out[0] as u16, (a + b).div_ceil(2));
        // Diagonal half position: average of 4 with +2 rounding.
        predict_luma_subpel(&refp, mb, SubPelVector::from_half_units(1, 1), &mut out);
        let c = refp.get(ox, oy + 1) as u16;
        let d = refp.get(ox + 1, oy + 1) as u16;
        assert_eq!(out[0] as u16, (a + b + c + d + 2) / 4);
    }

    #[test]
    fn subpel_prediction_reduces_error_for_true_half_pel_motion() {
        // Build a smooth reference; current = reference shifted by
        // exactly half a pixel (sampled via the same averaging). The
        // half-pel predictor must beat the best integer predictor.
        let fmt = VideoFormat::QCIF;
        let refp = Plane::from_fn(fmt.width(), fmt.height(), |x, y| {
            (128.0 + 60.0 * (x as f64 * 0.10).sin() + 40.0 * (y as f64 * 0.08).cos()) as u8
        });
        let mb = MbIndex::new(4, 4);
        // Target block: the reference at +0.5 px horizontally.
        let mut target = [0u8; 256];
        predict_luma_subpel(&refp, mb, SubPelVector::from_half_units(1, 0), &mut target);

        let sad_vs = |pred: &[u8]| -> u64 {
            pred.iter()
                .zip(&target)
                .map(|(a, b)| (*a as i32 - *b as i32).unsigned_abs() as u64)
                .sum()
        };
        let mut int0 = vec![0u8; 256];
        predict_luma(&refp, mb, MotionVector::ZERO, &mut int0);
        let mut int1 = vec![0u8; 256];
        predict_luma(&refp, mb, MotionVector::new(1, 0), &mut int1);
        let best_int = sad_vs(&int0).min(sad_vs(&int1));
        assert!(best_int > 0, "integer prediction cannot be exact here");
        // The half-pel position reproduces the target exactly.
        let mut half = vec![0u8; 256];
        predict_luma_subpel(&refp, mb, SubPelVector::from_half_units(1, 0), &mut half);
        assert_eq!(sad_vs(&half), 0);
    }

    #[test]
    fn chroma_subpel_integer_case_matches_plain_chroma() {
        let fmt = VideoFormat::QCIF;
        let refc = gradient_plane(fmt.chroma_width(), fmt.chroma_height());
        let mb = MbIndex::new(2, 2);
        let mv = MotionVector::new(4, -2); // even: chroma lands on integers
        let mut a = vec![0u8; 64];
        let mut b = vec![0u8; 64];
        predict_chroma(&refc, mb, mv, &mut a);
        predict_chroma_subpel(&refc, mb, SubPelVector::integer(mv), &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn chroma_uses_halved_vector() {
        let fmt = VideoFormat::QCIF;
        let refc = gradient_plane(fmt.chroma_width(), fmt.chroma_height());
        let mb = MbIndex::new(1, 1);
        let mv = MotionVector::new(6, -4); // chroma (3, -2)
        let mut out = vec![0u8; 64];
        predict_chroma(&refc, mb, mv, &mut out);
        let (ox, oy) = mb.chroma_origin();
        assert_eq!(
            out[0],
            refc.get((ox as isize + 3) as usize, (oy as isize - 2) as usize)
        );
    }
}
