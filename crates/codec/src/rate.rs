//! Frame-level rate control.
//!
//! The paper treats rate control as an orthogonal mechanism ("PBPAIR is
//! independent from any other encoder and/or decoder side control
//! mechanisms (i.e. rate control, channel coding, etc.)") and lists
//! cooperation with it as future work. This module provides a TMN-style
//! frame-level controller so that cooperation can actually be exercised:
//! a virtual buffer tracks the debt/credit against a constant target
//! rate, and the quantizer moves one step at a time to drain it.
//!
//! The controller is deliberately frame-granular (no macroblock-level QP
//! modulation): per-frame `PQUANT` is what this codec's picture header
//! carries, and frame granularity keeps the interaction with refresh
//! policies legible — more intra macroblocks → more bits → higher QP on
//! subsequent frames, which is exactly the coupling the paper's
//! "further optimization" remark is about.

use crate::quant::Qp;
use serde::{Deserialize, Serialize};

/// A frame-level rate controller with a virtual buffer.
///
/// # Example
///
/// ```rust
/// use pbpair_codec::rate::RateController;
/// use pbpair_codec::Qp;
///
/// let mut rc = RateController::new(64_000, 15.0, Qp::new(8).unwrap());
/// // An oversized frame raises the quantizer...
/// let qp_after_big = rc.frame_encoded(40_000);
/// assert!(qp_after_big.get() > 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RateController {
    target_bits_per_frame: f64,
    /// Virtual buffer fullness in bits; positive = over budget.
    buffer_bits: f64,
    qp: u8,
    min_qp: u8,
    max_qp: u8,
}

impl RateController {
    /// Creates a controller for `target_bps` at `fps` frames per second,
    /// starting from `initial_qp`.
    ///
    /// # Panics
    ///
    /// Panics if `target_bps` is zero or `fps` is not positive.
    pub fn new(target_bps: u64, fps: f64, initial_qp: Qp) -> Self {
        assert!(target_bps > 0, "target bit rate must be positive");
        assert!(fps > 0.0, "frame rate must be positive");
        RateController {
            target_bits_per_frame: target_bps as f64 / fps,
            buffer_bits: 0.0,
            qp: initial_qp.get(),
            min_qp: 1,
            max_qp: 31,
        }
    }

    /// Restricts the controller to a QP band (e.g. to bound quality).
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= min <= max <= 31`.
    pub fn with_qp_bounds(mut self, min: Qp, max: Qp) -> Self {
        assert!(min <= max, "min qp must not exceed max qp");
        self.min_qp = min.get();
        self.max_qp = max.get();
        self.qp = self.qp.clamp(self.min_qp, self.max_qp);
        self
    }

    /// The quantizer to use for the next frame.
    pub fn qp(&self) -> Qp {
        Qp::new(self.qp).expect("controller keeps qp in range")
    }

    /// Target bits per frame.
    pub fn target_bits_per_frame(&self) -> f64 {
        self.target_bits_per_frame
    }

    /// Virtual buffer fullness in bits (positive = over budget).
    pub fn buffer_fullness(&self) -> f64 {
        self.buffer_bits
    }

    /// Reports the size of the frame just encoded; returns the quantizer
    /// for the next frame.
    pub fn frame_encoded(&mut self, bits: u64) -> Qp {
        self.buffer_bits += bits as f64 - self.target_bits_per_frame;
        // Clamp the buffer to ±2 seconds of debt so one I-frame cannot
        // wind the controller up indefinitely.
        let clamp = 2.0 * 15.0 * self.target_bits_per_frame;
        self.buffer_bits = self.buffer_bits.clamp(-clamp, clamp);

        // Dead zone of ±¼ frame budget, then single steps; a large
        // overshoot (more than two frame budgets) takes a double step.
        let t = self.target_bits_per_frame;
        let step: i8 = if self.buffer_bits > 2.0 * t {
            2
        } else if self.buffer_bits > 0.25 * t {
            1
        } else if self.buffer_bits < -2.0 * t {
            -2
        } else if self.buffer_bits < -0.25 * t {
            -1
        } else {
            0
        };
        self.qp =
            (self.qp as i16 + step as i16).clamp(self.min_qp as i16, self.max_qp as i16) as u8;
        self.qp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oversized_frames_raise_qp_and_undersized_lower_it() {
        let mut rc = RateController::new(48_000, 15.0, Qp::new(8).unwrap());
        let budget = rc.target_bits_per_frame() as u64; // 3200
        let up = rc.frame_encoded(budget * 3);
        assert!(up.get() > 8);
        // Several tiny frames drain the buffer and bring QP back down.
        let mut qp = up;
        for _ in 0..12 {
            qp = rc.frame_encoded(100);
        }
        assert!(qp.get() < up.get());
    }

    #[test]
    fn on_budget_frames_hold_qp_steady() {
        let mut rc = RateController::new(60_000, 15.0, Qp::new(10).unwrap());
        let budget = rc.target_bits_per_frame() as u64;
        for _ in 0..20 {
            assert_eq!(rc.frame_encoded(budget).get(), 10);
        }
        assert!(rc.buffer_fullness().abs() < 1.0);
    }

    #[test]
    fn qp_respects_bounds() {
        let mut rc = RateController::new(10_000, 15.0, Qp::new(8).unwrap())
            .with_qp_bounds(Qp::new(6).unwrap(), Qp::new(12).unwrap());
        for _ in 0..50 {
            rc.frame_encoded(1_000_000); // hopeless overshoot
        }
        assert_eq!(rc.qp().get(), 12);
        for _ in 0..50 {
            rc.frame_encoded(0);
        }
        assert_eq!(rc.qp().get(), 6);
    }

    #[test]
    fn buffer_is_clamped() {
        let mut rc = RateController::new(15_000, 15.0, Qp::new(8).unwrap());
        for _ in 0..100 {
            rc.frame_encoded(10_000_000);
        }
        let clamp = 2.0 * 15.0 * rc.target_bits_per_frame();
        assert!(rc.buffer_fullness() <= clamp + 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        let _ = RateController::new(0, 15.0, Qp::new(8).unwrap());
    }

    /// Closed loop against the real encoder: the mean bit rate over a
    /// clip must converge near the target.
    #[test]
    fn converges_on_the_real_encoder() {
        use crate::encoder::{Encoder, EncoderConfig};
        use crate::policy::NaturalPolicy;
        use pbpair_media::synth::SyntheticSequence;

        let fps = 15.0;
        let target_bps = 48_000u64;
        let mut rc = RateController::new(target_bps, fps, Qp::new(8).unwrap());
        let mut enc = Encoder::new(EncoderConfig::default());
        let mut policy = NaturalPolicy::new();
        let mut seq = SyntheticSequence::foreman_class(3);
        let mut total_bits = 0u64;
        let frames = 45;
        for _ in 0..frames {
            enc.set_qp(rc.qp());
            let e = enc.encode_frame(&seq.next_frame(), &mut policy);
            total_bits += e.stats.bits;
            rc.frame_encoded(e.stats.bits);
        }
        // Skip the I-frame when judging the steady state.
        let achieved_bps = total_bits as f64 * fps / frames as f64;
        assert!(
            achieved_bps < target_bps as f64 * 1.5 && achieved_bps > target_bps as f64 * 0.3,
            "achieved {achieved_bps} vs target {target_bps}"
        );
    }
}
