//! Joint rate–distortion–energy (RDE) macroblock mode control.
//!
//! PBPAIR as reproduced saves energy through its intra/inter decisions
//! alone. This module adds the joint controller of ROADMAP item 4: every
//! P-frame macroblock's candidate codings (the baseline policy decision,
//! intra, inter with the searched vector, and outright skip) are *trial
//! coded* and scored by
//!
//! ```text
//! J = D + λ1·R + λ2·E
//! ```
//!
//! where `D` is the reconstruction sum of squared errors against the
//! original, `R` the candidate's actual coded bits (COD/mode prefix
//! included), and `E` the candidate's modeled coding energy in integer
//! picojoules — the op-count model extended with a memory-traffic term
//! (reference-window reads, reconstruction writes). Scoring intra and
//! inter directly at every macroblock subsumes sweeping the paper's
//! `Intra_Th`: each λ point induces exactly the per-MB threshold
//! perturbation that the weighted cost asks for.
//!
//! # Fixed-point formats
//!
//! Everything is integer so decisions are deterministic and identical
//! across worker counts and SIMD kernel tiers:
//!
//! * λ1 and λ2 are unsigned **Q16.16** weights ([`LAMBDA_ONE`] = 1.0 —
//!   one SSE unit per bit / per picojoule);
//! * energy is in integer **picojoules** ([`EnergyPrice`]); the
//!   documented canonical scale is µJ with a fixed `1e-6` resolution,
//!   i.e. [`PJ_PER_UJ`] pJ per µJ. `pbpair-energy` converts its nJ
//!   device profiles exactly (×1000) and a cross-crate test pins the
//!   scales to each other;
//! * costs accumulate in `u128`: `J = (D << 16) + λ1·R + λ2·E` never
//!   overflows (D ≤ 384·255², R and E fit comfortably in 64 bits).
//!
//! # The zero-λ gate
//!
//! At `λ1 = λ2 = 0` the controller is **inert by definition**: the
//! encoder bypasses trial coding entirely and the bitstream is
//! bit-identical to the plain PBPAIR/natural path. A pure distortion
//! argmin would silently change decisions even with both prices at zero;
//! the gate makes "RDE disabled" and "RDE at zero λ" the same encoder,
//! which the metamorphic suite asserts.
//!
//! # Tie-breaking and monotonicity
//!
//! Candidates are evaluated baseline-first in a fixed order, and a later
//! candidate displaces the incumbent only with a strictly smaller `J`.
//! The standard exchange argument then gives, for a fixed reference
//! frame and candidate set, monotonicity in each price: sweeping λ2 up
//! never raises the chosen energy, and sweeping λ1 up never raises the
//! chosen bits. `tests/rde_metamorphic.rs` sweeps the plane and checks
//! both, plus the all-skip floor at extreme λ2 (skip is always the
//! cheapest candidate in `E`, so a large enough λ2 forces it
//! everywhere).
//!
//! # Energy honesty
//!
//! Trial coding is search work, not stream work: its operations are
//! tallied into a scratch counter and discarded, exactly as RDO search
//! bits are never counted as rate. Only the chosen candidate's coding is
//! charged to the encoder's [`OpCounts`]. ME energy is sunk before the
//! controller runs (the search happens either way) and is therefore not
//! part of any candidate's `E`.

use crate::bitstream::BitWriter;
use crate::mb::{MbMode, SubPelVector};
use crate::mbcode::{code_inter_mb, code_intra_mb, code_skip_mb, BlockCodeCfg};
use crate::ops::OpCounts;
use pbpair_media::{Frame, MbIndex};
use serde::{Deserialize, Serialize};

/// Picojoules per microjoule — the canonical fixed-point energy scale.
/// Every crate that prices operations in integers must agree with this
/// constant; `pbpair-energy` asserts it against its own nJ→pJ factor.
pub const PJ_PER_UJ: u64 = 1_000_000;

/// Picojoules per nanojoule (the device profiles are authored in nJ).
pub const PJ_PER_NJ: u64 = 1_000;

/// The Q16.16 fixed-point one for the λ weights.
pub const LAMBDA_ONE: u32 = 1 << 16;

/// Bytes one macroblock occupies across all three planes (16×16 luma +
/// two 8×8 chroma blocks): the reconstruction-write footprint of every
/// coded or skipped macroblock and the reference-read footprint of an
/// integer-pel prediction.
pub const MB_FOOTPRINT_BYTES: u64 = 16 * 16 + 2 * 8 * 8;

/// Reference bytes a motion-compensated prediction reads for one
/// macroblock: the luma and chroma windows, each one sample wider/taller
/// per half-pel component (the interpolator averages two neighbours).
/// Defined purely from the vector, so the count is identical under every
/// SIMD kernel tier — the differential test replays it brute-force.
pub fn mc_read_bytes(mv: SubPelVector) -> u64 {
    let lw = 16 + mv.half_x as u64;
    let lh = 16 + mv.half_y as u64;
    let (chx, chy) = mv.chroma_half_units();
    let cw = 8 + (chx.rem_euclid(2) == 1) as u64;
    let ch = 8 + (chy.rem_euclid(2) == 1) as u64;
    lw * lh + 2 * cw * ch
}

/// Integer per-operation energy prices in picojoules — the fixed-point
/// mirror of `pbpair-energy`'s nJ device profiles, restricted to the
/// operation classes a macroblock coding decision controls. The default
/// is the iPAQ H5555 profile ×[`PJ_PER_NJ`]; `pbpair-energy` provides
/// exact conversions for every profile and a test pinning this default
/// to the float constants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EnergyPrice {
    /// One forward 8×8 DCT.
    pub dct_block_pj: u64,
    /// One inverse 8×8 DCT.
    pub idct_block_pj: u64,
    /// Quantizing one 8×8 block.
    pub quant_block_pj: u64,
    /// Dequantizing one 8×8 block.
    pub dequant_block_pj: u64,
    /// Motion-compensating one 16×16 luma block.
    pub mc_luma_pj: u64,
    /// Motion-compensating one 8×8 chroma block.
    pub mc_chroma_pj: u64,
    /// Entropy-coding one output bit.
    pub vlc_bit_pj: u64,
    /// Fixed per-macroblock bookkeeping.
    pub mb_overhead_pj: u64,
    /// Reading one reference byte from memory.
    pub mem_read_byte_pj: u64,
    /// Writing one reconstruction byte to memory.
    pub mem_write_byte_pj: u64,
}

impl Default for EnergyPrice {
    /// iPAQ H5555 in picojoules (the profile's nJ constants ×1000).
    fn default() -> Self {
        EnergyPrice {
            dct_block_pj: 1_500_000,
            idct_block_pj: 1_500_000,
            quant_block_pj: 320_000,
            dequant_block_pj: 320_000,
            mc_luma_pj: 640_000,
            mc_chroma_pj: 160_000,
            vlc_bit_pj: 10_000,
            mb_overhead_pj: 625_000,
            mem_read_byte_pj: 2_500,
            mem_write_byte_pj: 3_750,
        }
    }
}

impl EnergyPrice {
    /// Prices one candidate's coding work in integer picojoules: the
    /// transform/MC/overhead op classes of `ops` (a delta for just this
    /// macroblock), the memory-traffic term, and `bits` of entropy
    /// coding. SAD work is deliberately not priced here — motion
    /// estimation is sunk before the mode decision.
    pub fn mb_energy_pj(&self, ops: &OpCounts, bits: u64) -> u64 {
        self.dct_block_pj * ops.dct_blocks
            + self.idct_block_pj * ops.idct_blocks
            + self.quant_block_pj * ops.quant_blocks
            + self.dequant_block_pj * ops.dequant_blocks
            + self.mc_luma_pj * ops.mc_luma_blocks
            + self.mc_chroma_pj * ops.mc_chroma_blocks
            + self.mem_read_byte_pj * ops.ref_read_bytes
            + self.mem_write_byte_pj * ops.recon_write_bytes
            + self.vlc_bit_pj * bits
            + self.mb_overhead_pj
    }
}

/// Configuration of the RDE controller. All-integer (`Eq`, `Copy`) so an
/// [`crate::EncoderConfig`] carrying it stays hashable and serializable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RdeConfig {
    /// Q16.16 weight on coded bits ([`LAMBDA_ONE`] = one SSE unit/bit).
    #[serde(default)]
    pub lambda1_q16: u32,
    /// Q16.16 weight on picojoules of coding energy.
    #[serde(default)]
    pub lambda2_q16: u32,
    /// Per-operation prices. Defaults to the iPAQ H5555 profile.
    #[serde(default)]
    pub price: EnergyPrice,
}

impl Default for RdeConfig {
    /// Zero λ — the inert configuration (bit-identical to no RDE).
    fn default() -> Self {
        RdeConfig {
            lambda1_q16: 0,
            lambda2_q16: 0,
            price: EnergyPrice::default(),
        }
    }
}

impl RdeConfig {
    /// Whether the controller actually reprices decisions. At zero λ the
    /// encoder bypasses trial coding entirely (the zero-λ gate).
    pub fn is_active(&self) -> bool {
        self.lambda1_q16 != 0 || self.lambda2_q16 != 0
    }

    /// A configuration weighting only bits.
    pub fn rate_weighted(lambda1_q16: u32) -> Self {
        RdeConfig {
            lambda1_q16,
            ..RdeConfig::default()
        }
    }

    /// A configuration weighting only energy.
    pub fn energy_weighted(lambda2_q16: u32) -> Self {
        RdeConfig {
            lambda2_q16,
            ..RdeConfig::default()
        }
    }
}

/// The joint cost `J = (D << 16) + λ1·R + λ2·E` in Q16.16 SSE units.
/// `u128` holds the worst case with > 40 bits of headroom.
pub fn rde_cost(sse: u64, bits: u64, energy_pj: u64, lambda1_q16: u32, lambda2_q16: u32) -> u128 {
    ((sse as u128) << 16)
        + lambda1_q16 as u128 * bits as u128
        + lambda2_q16 as u128 * energy_pj as u128
}

/// Sum of squared errors between the two frames' pixels over one
/// macroblock (16×16 luma plus both 8×8 chroma blocks).
pub fn mb_sse(a: &Frame, b: &Frame, mb: MbIndex) -> u64 {
    let (lx, ly) = mb.luma_origin();
    let (cx, cy) = mb.chroma_origin();
    let mut sse = 0u64;
    for y in 0..16 {
        let ra = &a.y().row(ly + y)[lx..lx + 16];
        let rb = &b.y().row(ly + y)[lx..lx + 16];
        for (pa, pb) in ra.iter().zip(rb) {
            let d = *pa as i64 - *pb as i64;
            sse += (d * d) as u64;
        }
    }
    for (pa, pb) in [(a.cb(), b.cb()), (a.cr(), b.cr())] {
        for y in 0..8 {
            let ra = &pa.row(cy + y)[cx..cx + 8];
            let rb = &pb.row(cy + y)[cx..cx + 8];
            for (va, vb) in ra.iter().zip(rb) {
                let d = *va as i64 - *vb as i64;
                sse += (d * d) as u64;
            }
        }
    }
    sse
}

/// One candidate coding of a P-frame macroblock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RdeCandidate {
    /// Intra coding (COD=0, mode=intra prefix included in its rate).
    Intra,
    /// Inter coding with this vector (may demote itself to skip).
    Inter(SubPelVector),
    /// Outright skip: one COD bit, colocated copy.
    Skip,
}

/// Codes `cand` in full — COD/mode prefix plus payload — into `w`,
/// reconstructing into `new_recon` and tallying into `ops`. Returns the
/// mode actually produced (inter may demote to skip).
#[allow(clippy::too_many_arguments)]
fn code_candidate(
    cand: RdeCandidate,
    bcfg: &BlockCodeCfg,
    w: &mut BitWriter,
    frame: &Frame,
    reference: &Frame,
    new_recon: &mut Frame,
    mb: MbIndex,
    ops: &mut OpCounts,
) -> MbMode {
    match cand {
        RdeCandidate::Intra => {
            w.put_bit(false); // COD = 0: coded
            w.put_bit(true); // intra
            code_intra_mb(bcfg, w, frame, new_recon, mb, ops);
            MbMode::Intra
        }
        RdeCandidate::Inter(mv) => code_inter_mb(bcfg, w, frame, reference, new_recon, mb, mv, ops),
        RdeCandidate::Skip => code_skip_mb(w, reference, new_recon, mb, ops),
    }
}

/// Trial-codes every candidate for one P-frame macroblock, scores each
/// by `J = D + λ1·R + λ2·E`, and codes the argmin into the real writer.
///
/// The baseline (the policy/natural decision the plain encoder would
/// have made) is evaluated first and a challenger needs a strictly
/// smaller `J` to displace it, so ties preserve the baseline. Each trial
/// overwrites the macroblock's region of `new_recon` completely, and the
/// winner is coded last, so the reconstruction the next stage sees is
/// the chosen candidate's. Trial operations are tallied into a local
/// scratch and discarded; only the final coding is charged to `ops`.
///
/// Every input is macroblock-local (the frame, the frozen reference, the
/// baseline decision), so the choice is invariant to slice partitioning
/// and worker count.
#[allow(clippy::too_many_arguments)]
pub(crate) fn choose_and_code_mb(
    rde: &RdeConfig,
    bcfg: &BlockCodeCfg,
    w: &mut BitWriter,
    scratch: &mut BitWriter,
    frame: &Frame,
    reference: &Frame,
    new_recon: &mut Frame,
    mb: MbIndex,
    baseline: RdeCandidate,
    ops: &mut OpCounts,
) -> MbMode {
    let mut candidates: [Option<RdeCandidate>; 4] = [Some(baseline), None, None, None];
    let mut n = 1;
    let push = |c: RdeCandidate, cands: &mut [Option<RdeCandidate>; 4], n: &mut usize| {
        if c != baseline {
            cands[*n] = Some(c);
            *n += 1;
        }
    };
    push(RdeCandidate::Intra, &mut candidates, &mut n);
    if let RdeCandidate::Inter(mv) = baseline {
        push(RdeCandidate::Inter(mv), &mut candidates, &mut n);
    }
    push(RdeCandidate::Skip, &mut candidates, &mut n);

    let mut best = baseline;
    let mut best_j = u128::MAX;
    for cand in candidates.iter().take(n).flatten() {
        scratch.reset();
        let mut trial_ops = OpCounts::new();
        code_candidate(
            *cand,
            bcfg,
            scratch,
            frame,
            reference,
            new_recon,
            mb,
            &mut trial_ops,
        );
        let bits = scratch.bit_len();
        let sse = mb_sse(frame, new_recon, mb);
        let energy = rde.price.mb_energy_pj(&trial_ops, bits);
        let j = rde_cost(sse, bits, energy, rde.lambda1_q16, rde.lambda2_q16);
        if j < best_j {
            best_j = j;
            best = *cand;
        }
    }

    code_candidate(best, bcfg, w, frame, reference, new_recon, mb, ops)
}

/// Outcome of [`bisect_min_lambda`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BisectOutcome {
    /// The minimal λ in `[lo, hi]` whose evaluation meets the budget
    /// (minimal up to the interval the iteration cap left open).
    Converged {
        /// The λ found.
        lambda: u32,
        /// `eval(lambda)`, ≤ the budget.
        value: u64,
        /// Evaluations performed.
        iters: u32,
    },
    /// Even `hi` misses the budget: the boundary proof. `value` is
    /// `eval(hi)`, the closest the plane gets.
    Boundary {
        /// The upper bound that still misses.
        lambda: u32,
        /// `eval(lambda)`, > the budget.
        value: u64,
        /// Evaluations performed.
        iters: u32,
    },
}

impl BisectOutcome {
    /// The λ the solver settled on, feasible or boundary.
    pub fn lambda(&self) -> u32 {
        match *self {
            BisectOutcome::Converged { lambda, .. } | BisectOutcome::Boundary { lambda, .. } => {
                lambda
            }
        }
    }

    /// Evaluations the solver spent.
    pub fn iters(&self) -> u32 {
        match *self {
            BisectOutcome::Converged { iters, .. } | BisectOutcome::Boundary { iters, .. } => iters,
        }
    }
}

/// Integer bisection for the λ-plane budget problem: given `eval`
/// non-increasing in λ (a larger price never yields more of the priced
/// quantity — the metamorphic property the test battery pins), finds the
/// minimal `λ ∈ [lo, hi]` with `eval(λ) ≤ budget`.
///
/// The solver is pure and deterministic: same inputs, same λ sequence,
/// regardless of worker count or evaluation backend. It performs at most
/// `⌈log2(hi−lo)⌉ + 2` evaluations and never more than
/// `max_iters.max(2)`; if the cap closes the search early the returned
/// feasible λ is minimal only up to the unexplored interval (the
/// proptest exercises both regimes).
///
/// # Panics
///
/// Panics if `lo > hi`.
pub fn bisect_min_lambda(
    lo: u32,
    hi: u32,
    budget: u64,
    max_iters: u32,
    mut eval: impl FnMut(u32) -> u64,
) -> BisectOutcome {
    assert!(lo <= hi, "bisection interval is inverted");
    let mut iters = 0u32;
    let mut eval_counted = |l: u32, iters: &mut u32| {
        *iters += 1;
        eval(l)
    };
    let at_lo = eval_counted(lo, &mut iters);
    if at_lo <= budget {
        return BisectOutcome::Converged {
            lambda: lo,
            value: at_lo,
            iters,
        };
    }
    if lo == hi {
        return BisectOutcome::Boundary {
            lambda: hi,
            value: at_lo,
            iters,
        };
    }
    let at_hi = eval_counted(hi, &mut iters);
    if at_hi > budget {
        return BisectOutcome::Boundary {
            lambda: hi,
            value: at_hi,
            iters,
        };
    }
    // Invariant: eval(infeasible_lo) > budget ≥ eval(feasible_hi).
    let (mut infeasible, mut feasible, mut feasible_value) = (lo, hi, at_hi);
    let cap = max_iters.max(2);
    while feasible - infeasible > 1 && iters < cap {
        let mid = infeasible + (feasible - infeasible) / 2;
        let v = eval_counted(mid, &mut iters);
        if v <= budget {
            feasible = mid;
            feasible_value = v;
        } else {
            infeasible = mid;
        }
    }
    BisectOutcome::Converged {
        lambda: feasible,
        value: feasible_value,
        iters,
    }
}

/// Cross-frame λ adaptation: a closed-loop bracket bisection that uses
/// each frame's *measured* bits or picojoules to refine the λ bracket
/// for the next frame, converging on a per-frame budget without ever
/// re-encoding. Integer-only and sequential, so a fleet of sessions
/// adapting independently stays deterministic at any worker count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrameLambdaAdapter {
    /// Largest λ observed infeasible (measurement above budget).
    lo: u32,
    /// Smallest λ observed feasible, or the configured upper bound.
    hi: u32,
    /// λ to apply to the next frame.
    cur: u32,
    /// Per-frame budget in the measured unit (bits or picojoules).
    budget: u64,
}

impl FrameLambdaAdapter {
    /// A new adapter bisecting `[lo, hi]` toward `budget`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn new(lo: u32, hi: u32, budget: u64) -> Self {
        assert!(lo <= hi, "adapter interval is inverted");
        FrameLambdaAdapter {
            lo,
            hi,
            cur: lo + (hi - lo) / 2,
            budget,
        }
    }

    /// The λ to encode the next frame with.
    pub fn lambda(&self) -> u32 {
        self.cur
    }

    /// The budget being tracked.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Whether the bracket has collapsed (further observations keep λ
    /// pinned at the boundary-or-converged point).
    pub fn settled(&self) -> bool {
        self.hi - self.lo <= 1
    }

    /// Feeds back the measured quantity of the frame just encoded at
    /// [`FrameLambdaAdapter::lambda`] and returns the λ for the next
    /// frame. Over budget → λ must rise (the bracket's low end moves
    /// up); within budget → λ may fall (the high end moves down).
    pub fn observe(&mut self, measured: u64) -> u32 {
        if !self.settled() {
            if measured > self.budget {
                self.lo = self.cur;
            } else {
                self.hi = self.cur;
            }
            self.cur = self.lo + (self.hi - self.lo) / 2;
        } else if measured > self.budget {
            // Settled but still over: pin to the top of the bracket —
            // the boundary answer.
            self.cur = self.hi;
        }
        self.cur
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbpair_media::VideoFormat;

    #[test]
    fn cost_is_linear_in_each_price() {
        let j0 = rde_cost(100, 50, 1_000, 0, 0);
        assert_eq!(j0, 100 << 16);
        assert_eq!(rde_cost(100, 50, 1_000, LAMBDA_ONE, 0) - j0, 50 << 16);
        assert_eq!(rde_cost(100, 50, 1_000, 0, LAMBDA_ONE) - j0, 1_000 << 16);
    }

    #[test]
    fn mb_sse_is_zero_on_identical_frames_and_counts_all_planes() {
        let a = Frame::flat(VideoFormat::QCIF, 100);
        let mut b = Frame::flat(VideoFormat::QCIF, 100);
        let mb = MbIndex::new(0, 0);
        assert_eq!(mb_sse(&a, &b, mb), 0);
        b.y_mut().set(3, 3, 110); // +10² in luma
        b.cb_mut().set(1, 1, 125); // 128 → 125: +3² in chroma
        assert_eq!(mb_sse(&a, &b, mb), 100 + 9);
        // A pixel outside the MB footprint does not count.
        b.y_mut().set(40, 3, 0);
        assert_eq!(mb_sse(&a, &b, mb), 109);
    }

    #[test]
    fn mc_read_bytes_grows_with_half_pel_components() {
        use crate::mb::MotionVector;
        assert_eq!(mc_read_bytes(SubPelVector::ZERO), MB_FOOTPRINT_BYTES);
        // Even integer components keep chroma on the integer grid.
        assert_eq!(
            mc_read_bytes(SubPelVector::integer(MotionVector::new(-8, 12))),
            MB_FOOTPRINT_BYTES
        );
        // Odd integer components floor-halve to half-pel *chroma*
        // positions, which read one extra chroma row/column each.
        assert_eq!(
            mc_read_bytes(SubPelVector::integer(MotionVector::new(-7, 13))),
            16 * 16 + 2 * 9 * 9
        );
        let half_x = SubPelVector::from_half_units(1, 0);
        assert_eq!(mc_read_bytes(half_x), 17 * 16 + 2 * 8 * 8);
        let half_both = SubPelVector::from_half_units(3, 5);
        // Luma 17×17; chroma half units (1, 2) → x fractional only: 9×8.
        assert_eq!(mc_read_bytes(half_both), 17 * 17 + 2 * 9 * 8);
    }

    #[test]
    fn default_price_is_ipaq_times_1000() {
        let p = EnergyPrice::default();
        assert_eq!(p.dct_block_pj, 1_500 * PJ_PER_NJ);
        assert_eq!(p.vlc_bit_pj, 10 * PJ_PER_NJ);
        assert_eq!(PJ_PER_UJ, 1_000 * PJ_PER_NJ);
    }

    #[test]
    fn zero_lambda_config_is_inert() {
        assert!(!RdeConfig::default().is_active());
        assert!(RdeConfig::rate_weighted(1).is_active());
        assert!(RdeConfig::energy_weighted(1).is_active());
    }

    #[test]
    fn bisection_finds_the_minimal_feasible_lambda() {
        // eval(λ) = 1000 − λ (non-increasing); budget 400 → λ* = 600.
        let out = bisect_min_lambda(0, 1_000, 400, 32, |l| 1_000 - l as u64);
        match out {
            BisectOutcome::Converged { lambda, value, .. } => {
                assert_eq!(lambda, 600);
                assert_eq!(value, 400);
            }
            other => panic!("expected convergence, got {other:?}"),
        }
    }

    #[test]
    fn bisection_proves_the_boundary() {
        let out = bisect_min_lambda(0, 100, 10, 32, |_| 50);
        match out {
            BisectOutcome::Boundary { lambda, value, .. } => {
                assert_eq!(lambda, 100);
                assert_eq!(value, 50);
            }
            other => panic!("expected boundary, got {other:?}"),
        }
    }

    #[test]
    fn adapter_converges_to_the_budget_crossing() {
        // Measured(λ) = 1000 − λ, budget 300 → crossing at λ = 700.
        let mut a = FrameLambdaAdapter::new(0, 1_024, 300);
        for _ in 0..16 {
            let measured = 1_000u64.saturating_sub(a.lambda() as u64);
            a.observe(measured);
        }
        assert!(a.settled());
        let measured = 1_000u64.saturating_sub(a.lambda() as u64);
        assert!(
            measured <= 300,
            "settled λ {} still over budget: {measured}",
            a.lambda()
        );
        assert!(a.lambda() <= 704, "overshot the crossing: {}", a.lambda());
    }
}
