//! SSE2 and AVX2 kernel tiers (x86-64).
//!
//! SSE2 is baseline on `x86_64`, so its kernels are plain safe functions
//! (`unsafe` only for the unaligned loads/stores, whose bounds the
//! [`Kernels`](super::Kernels) wrappers assert). AVX2 entry points are
//! safe shims over `#[target_feature(enable = "avx2")]` inner functions
//! — `target_feature` functions cannot coerce to the vtable's plain `fn`
//! pointers — and the AVX2 table is only ever handed out after
//! `is_x86_feature_detected!("avx2")`.
//!
//! # Exactness
//!
//! * SAD: `_mm_sad_epu8` **is** the sum of absolute differences — no
//!   approximation. The bounded variant folds each row's lanes and tests
//!   the limit per row, so `(acc, ops)` match the scalar tier exactly.
//! * DCT pair: both stages are the same Q12 multiply–accumulate with
//!   `(acc + HALF) >> 12` rounding as the scalar transforms; inputs are
//!   range-gated (gates derived from the basis in
//!   [`super::dct_range`]) so every intermediate provably fits the lane
//!   width used — SSE2 packs stage-1 output to `i16` for `pmaddwd`,
//!   AVX2 stays in `i32` lanes — and out-of-gate blocks (possible only
//!   via corrupt bitstreams) fall back to the scalar transform.
//! * Half-pel: `_mm_avg_epu8` computes `(a + b + 1) >> 1`, exactly the
//!   scalar `div_ceil(2)`; the diagonal `(a+b+c+d+2)/4` is done in
//!   widened `u16` lanes (max 1022, no overflow).
//! * Reconstruction: `i32 → i16 → u8` saturating packs equal
//!   `clamp(0, 255)` for **every** `i32`, so no gate is needed.

use super::{halfpel_scalar, within_gate, KernelTier, Kernels};
use crate::dct::{self, BLOCK_LEN, HALF, Q};
use core::arch::x86_64::*;
use std::sync::OnceLock;

const SH: i32 = Q as i32;

static SSE2: Kernels = Kernels {
    tier: KernelTier::Sse2,
    sad16: sad16_sse2,
    sad16_bounded: sad16_bounded_sse2,
    fdct8: fdct8_sse2,
    idct8: idct8_sse2,
    halfpel: halfpel_sse2,
    add_residual8: add_residual8_sse2,
    store_clamped8: store_clamped8_sse2,
};

// AVX2 reuses the 128-bit kernels where a 256-bit lane buys nothing:
// the bounded SAD must stay row-granular anyway, and the half-pel /
// reconstruction rows are 8–16 bytes wide.
static AVX2: Kernels = Kernels {
    tier: KernelTier::Avx2,
    sad16: sad16_avx2,
    sad16_bounded: sad16_bounded_sse2,
    fdct8: fdct8_avx2,
    idct8: idct8_avx2,
    halfpel: halfpel_sse2,
    add_residual8: add_residual8_sse2,
    store_clamped8: store_clamped8_sse2,
};

pub(super) fn sse2_kernels() -> &'static Kernels {
    &SSE2
}

pub(super) fn avx2_kernels() -> &'static Kernels {
    &AVX2
}

// ---------------------------------------------------------------------
// SAD
// ---------------------------------------------------------------------

#[inline]
unsafe fn row_sad_sse2(a: *const u8, b: *const u8) -> u64 {
    let pa = _mm_loadu_si128(a as *const __m128i);
    let pb = _mm_loadu_si128(b as *const __m128i);
    let s = _mm_sad_epu8(pa, pb); // two u64 lanes of partial sums
    let s = _mm_add_epi64(s, _mm_srli_si128::<8>(s));
    _mm_cvtsi128_si64(s) as u64
}

fn sad16_sse2(a: &[u8], a_stride: usize, b: &[u8], b_stride: usize) -> u64 {
    unsafe {
        let mut acc = _mm_setzero_si128();
        for y in 0..16 {
            let pa = _mm_loadu_si128(a.as_ptr().add(y * a_stride) as *const __m128i);
            let pb = _mm_loadu_si128(b.as_ptr().add(y * b_stride) as *const __m128i);
            acc = _mm_add_epi64(acc, _mm_sad_epu8(pa, pb));
        }
        let acc = _mm_add_epi64(acc, _mm_srli_si128::<8>(acc));
        _mm_cvtsi128_si64(acc) as u64
    }
}

fn sad16_bounded_sse2(
    a: &[u8],
    a_stride: usize,
    b: &[u8],
    b_stride: usize,
    limit: u64,
) -> (u64, u64) {
    let mut acc = 0u64;
    let mut ops = 0u64;
    for y in 0..16 {
        acc += unsafe { row_sad_sse2(a.as_ptr().add(y * a_stride), b.as_ptr().add(y * b_stride)) };
        ops += 16;
        if acc >= limit {
            return (acc, ops);
        }
    }
    (acc, ops)
}

fn sad16_avx2(a: &[u8], a_stride: usize, b: &[u8], b_stride: usize) -> u64 {
    // Safety: the AVX2 table is only reachable after feature detection.
    unsafe { sad16_avx2_inner(a, a_stride, b, b_stride) }
}

#[target_feature(enable = "avx2")]
unsafe fn sad16_avx2_inner(a: &[u8], a_stride: usize, b: &[u8], b_stride: usize) -> u64 {
    // The rows are strided, so a 256-bit load cannot span two of them;
    // gathering row pairs through `vinserti128` costs more uops than it
    // saves. Two independent 128-bit `vpsadbw` chains (VEX-encoded,
    // three-operand) beat both that and the single-chain SSE2 loop.
    let mut acc0 = _mm_setzero_si128();
    let mut acc1 = _mm_setzero_si128();
    for y in (0..16).step_by(2) {
        let a0 = _mm_loadu_si128(a.as_ptr().add(y * a_stride) as *const __m128i);
        let b0 = _mm_loadu_si128(b.as_ptr().add(y * b_stride) as *const __m128i);
        let a1 = _mm_loadu_si128(a.as_ptr().add((y + 1) * a_stride) as *const __m128i);
        let b1 = _mm_loadu_si128(b.as_ptr().add((y + 1) * b_stride) as *const __m128i);
        acc0 = _mm_add_epi64(acc0, _mm_sad_epu8(a0, b0));
        acc1 = _mm_add_epi64(acc1, _mm_sad_epu8(a1, b1));
    }
    let s = _mm_add_epi64(acc0, acc1);
    let s = _mm_add_epi64(s, _mm_srli_si128::<8>(s));
    _mm_cvtsi128_si64(s) as u64
}

// ---------------------------------------------------------------------
// DCT pair
//
// Both transforms are `out = rounds(C2 · rounds(stage1(input)))` with
// per-stage `(acc + HALF) >> Q` rounding. The SSE2 path runs each stage
// as `pmaddwd` over coefficient *pairs*: for output lanes j and an input
// pair (m0, m1), one madd of [in_m0, in_m1, ...] against
// [c[j0][m0], c[j0][m1], c[j1][m0], ...] accumulates two terms of four
// output lanes at once. Stage 1 splats the input pair (the inputs of one
// row are contiguous); stage 2 splats the coefficient pair and
// interleaves the stage-1 rows instead (its inputs are columns).
// ---------------------------------------------------------------------

struct DctTables {
    /// Stage-1 madd operands, forward: `[pair p][half h]` holds
    /// `b[k][2p], b[k][2p+1]` interleaved over output lanes `k = 4h+j`.
    fwd_row_pairs: [[[i16; 8]; 2]; 4],
    /// Stage-2 splat pairs, forward: `[k][p]` packs `(b[k][2p], b[k][2p+1])`.
    fwd_col_pairs: [[i32; 4]; 8],
    /// Stage-1 madd operands, inverse: lanes are `b[2p][n], b[2p+1][n]`
    /// over output lanes `n = 4h+j`.
    inv_row_pairs: [[[i16; 8]; 2]; 4],
    /// Stage-2 splat pairs, inverse: `[n][p]` packs `(b[2p][n], b[2p+1][n])`.
    inv_col_pairs: [[i32; 4]; 8],
    /// The basis itself (AVX2 stage tables): `b[k]` rows…
    b_rows: &'static [[i32; 8]; 8],
    /// …and its transpose `bt[n][k] = b[k][n]`.
    bt_rows: [[i32; 8]; 8],
    /// Exact-domain gates (see [`super::DctRange`]).
    gate_i16: i32,
    gate_i32: i32,
}

/// Packs two in-`i16`-range values into one `i32` madd operand
/// (low half first, matching `pmaddwd` lane order).
#[inline]
fn pack_pair(lo: i32, hi: i32) -> i32 {
    (((hi as u32) << 16) | (lo as u32 & 0xFFFF)) as i32
}

fn tables() -> &'static DctTables {
    static T: OnceLock<DctTables> = OnceLock::new();
    T.get_or_init(|| {
        let b = dct::basis();
        let r = super::dct_range();
        let mut t = DctTables {
            fwd_row_pairs: [[[0; 8]; 2]; 4],
            fwd_col_pairs: [[0; 4]; 8],
            inv_row_pairs: [[[0; 8]; 2]; 4],
            inv_col_pairs: [[0; 4]; 8],
            b_rows: b,
            bt_rows: [[0; 8]; 8],
            gate_i16: r.gate_i16,
            gate_i32: r.gate_i32,
        };
        for p in 0..4 {
            let (m0, m1) = (2 * p, 2 * p + 1);
            for h in 0..2 {
                for j in 0..4 {
                    let lane = h * 4 + j;
                    t.fwd_row_pairs[p][h][2 * j] = b[lane][m0] as i16;
                    t.fwd_row_pairs[p][h][2 * j + 1] = b[lane][m1] as i16;
                    t.inv_row_pairs[p][h][2 * j] = b[m0][lane] as i16;
                    t.inv_row_pairs[p][h][2 * j + 1] = b[m1][lane] as i16;
                }
            }
            for (lane, row) in b.iter().enumerate() {
                t.fwd_col_pairs[lane][p] = pack_pair(row[m0], row[m1]);
                t.inv_col_pairs[lane][p] = pack_pair(b[m0][lane], b[m1][lane]);
            }
        }
        for (k, row) in b.iter().enumerate() {
            for (n, &v) in row.iter().enumerate() {
                t.bt_rows[n][k] = v;
            }
        }
        t
    })
}

/// Shared two-stage `pmaddwd` transform. `row_pairs`/`col_pairs` select
/// forward vs inverse. Caller must have gate-checked the input against
/// `gate_i16`.
unsafe fn dct2d_madd_sse2(
    input: &[i32; BLOCK_LEN],
    output: &mut [i32; BLOCK_LEN],
    row_pairs: &[[[i16; 8]; 2]; 4],
    col_pairs: &[[i32; 4]; 8],
) {
    let half = _mm_set1_epi32(HALF as i32);
    // Stage 1: one madd row per input row, output packed to i16 lanes
    // (exact within the gate).
    let mut tmp = [_mm_setzero_si128(); 8];
    for y in 0..8 {
        let row = &input[y * 8..y * 8 + 8];
        let mut lo = half;
        let mut hi = half;
        for (p, pairs) in row_pairs.iter().enumerate() {
            let a = _mm_set1_epi32(pack_pair(row[2 * p], row[2 * p + 1]));
            let cl = _mm_loadu_si128(pairs[0].as_ptr() as *const __m128i);
            let ch = _mm_loadu_si128(pairs[1].as_ptr() as *const __m128i);
            lo = _mm_add_epi32(lo, _mm_madd_epi16(a, cl));
            hi = _mm_add_epi32(hi, _mm_madd_epi16(a, ch));
        }
        tmp[y] = _mm_packs_epi32(_mm_srai_epi32::<SH>(lo), _mm_srai_epi32::<SH>(hi));
    }
    // Stage 2 input pairs: interleave stage-1 rows (2m, 2m+1) so each
    // i32 lane holds one column's pair.
    let mut inter = [[_mm_setzero_si128(); 2]; 4];
    for (p, dst) in inter.iter_mut().enumerate() {
        dst[0] = _mm_unpacklo_epi16(tmp[2 * p], tmp[2 * p + 1]);
        dst[1] = _mm_unpackhi_epi16(tmp[2 * p], tmp[2 * p + 1]);
    }
    for (i, pairs) in col_pairs.iter().enumerate() {
        let mut lo = half;
        let mut hi = half;
        for (p, lanes) in inter.iter().enumerate() {
            let c = _mm_set1_epi32(pairs[p]);
            lo = _mm_add_epi32(lo, _mm_madd_epi16(lanes[0], c));
            hi = _mm_add_epi32(hi, _mm_madd_epi16(lanes[1], c));
        }
        _mm_storeu_si128(
            output[i * 8..].as_mut_ptr() as *mut __m128i,
            _mm_srai_epi32::<SH>(lo),
        );
        _mm_storeu_si128(
            output[i * 8 + 4..].as_mut_ptr() as *mut __m128i,
            _mm_srai_epi32::<SH>(hi),
        );
    }
}

fn fdct8_sse2(input: &[i32; BLOCK_LEN], output: &mut [i32; BLOCK_LEN]) {
    let t = tables();
    if !within_gate(input, t.gate_i16) {
        return dct::forward(input, output);
    }
    unsafe { dct2d_madd_sse2(input, output, &t.fwd_row_pairs, &t.fwd_col_pairs) }
}

fn idct8_sse2(input: &[i32; BLOCK_LEN], output: &mut [i32; BLOCK_LEN]) {
    let t = tables();
    if !within_gate(input, t.gate_i16) {
        return dct::inverse(input, output);
    }
    unsafe { dct2d_madd_sse2(input, output, &t.inv_row_pairs, &t.inv_col_pairs) }
}

/// Shared two-stage splat-multiply transform in full i32 lanes (one
/// vector per 8-wide output row). `vec_rows` is the stage-1 table whose
/// *rows* are loaded (`bT` forward, `b` inverse); `splat_rows` is the
/// stage-2 table whose entries are splatted (`b` forward, `bT` inverse).
/// Caller must have gate-checked against `gate_i32`; within the gate
/// every true accumulator fits `i32`, so wrapping lane adds are exact.
#[target_feature(enable = "avx2")]
unsafe fn dct2d_mullo_avx2(
    input: &[i32; BLOCK_LEN],
    output: &mut [i32; BLOCK_LEN],
    vec_rows: &[[i32; 8]; 8],
    splat_rows: &[[i32; 8]; 8],
) {
    let half = _mm256_set1_epi32(HALF as i32);
    let mut tmp = [_mm256_setzero_si256(); 8];
    for (y, dst) in tmp.iter_mut().enumerate() {
        let mut acc = half;
        for (m, row) in vec_rows.iter().enumerate() {
            let v = _mm256_loadu_si256(row.as_ptr() as *const __m256i);
            acc = _mm256_add_epi32(
                acc,
                _mm256_mullo_epi32(_mm256_set1_epi32(input[y * 8 + m]), v),
            );
        }
        *dst = _mm256_srai_epi32::<SH>(acc);
    }
    for (i, coefs) in splat_rows.iter().enumerate() {
        let mut acc = half;
        for (m, &c) in coefs.iter().enumerate() {
            acc = _mm256_add_epi32(acc, _mm256_mullo_epi32(_mm256_set1_epi32(c), tmp[m]));
        }
        _mm256_storeu_si256(
            output[i * 8..].as_mut_ptr() as *mut __m256i,
            _mm256_srai_epi32::<SH>(acc),
        );
    }
}

fn fdct8_avx2(input: &[i32; BLOCK_LEN], output: &mut [i32; BLOCK_LEN]) {
    let t = tables();
    if !within_gate(input, t.gate_i32) {
        return dct::forward(input, output);
    }
    unsafe { dct2d_mullo_avx2(input, output, &t.bt_rows, t.b_rows) }
}

fn idct8_avx2(input: &[i32; BLOCK_LEN], output: &mut [i32; BLOCK_LEN]) {
    let t = tables();
    if !within_gate(input, t.gate_i32) {
        return dct::inverse(input, output);
    }
    unsafe { dct2d_mullo_avx2(input, output, t.b_rows, &t.bt_rows) }
}

// ---------------------------------------------------------------------
// Half-pel interpolation
// ---------------------------------------------------------------------

fn halfpel_sse2(region: &[u8], rw: usize, hx: usize, hy: usize, out: &mut [u8], side: usize) {
    match side {
        16 => unsafe { halfpel16_sse2(region, rw, hx, hy, out) },
        8 => unsafe { halfpel8_sse2(region, rw, hx, hy, out) },
        _ => halfpel_scalar(region, rw, hx, hy, out, side),
    }
}

unsafe fn halfpel16_sse2(region: &[u8], rw: usize, hx: usize, hy: usize, out: &mut [u8]) {
    let rp = region.as_ptr();
    for y in 0..16 {
        let base = y * rw;
        let dst = out[y * 16..].as_mut_ptr() as *mut __m128i;
        let a = _mm_loadu_si128(rp.add(base) as *const __m128i);
        let v = match (hx, hy) {
            (1, 0) => _mm_avg_epu8(a, _mm_loadu_si128(rp.add(base + 1) as *const __m128i)),
            (0, 1) => _mm_avg_epu8(a, _mm_loadu_si128(rp.add(base + rw) as *const __m128i)),
            _ => {
                let b = _mm_loadu_si128(rp.add(base + 1) as *const __m128i);
                let c = _mm_loadu_si128(rp.add(base + rw) as *const __m128i);
                let d = _mm_loadu_si128(rp.add(base + rw + 1) as *const __m128i);
                let zero = _mm_setzero_si128();
                let two = _mm_set1_epi16(2);
                let lo = _mm_add_epi16(
                    _mm_add_epi16(_mm_unpacklo_epi8(a, zero), _mm_unpacklo_epi8(b, zero)),
                    _mm_add_epi16(_mm_unpacklo_epi8(c, zero), _mm_unpacklo_epi8(d, zero)),
                );
                let hi = _mm_add_epi16(
                    _mm_add_epi16(_mm_unpackhi_epi8(a, zero), _mm_unpackhi_epi8(b, zero)),
                    _mm_add_epi16(_mm_unpackhi_epi8(c, zero), _mm_unpackhi_epi8(d, zero)),
                );
                let lo = _mm_srli_epi16::<2>(_mm_add_epi16(lo, two));
                let hi = _mm_srli_epi16::<2>(_mm_add_epi16(hi, two));
                _mm_packus_epi16(lo, hi)
            }
        };
        _mm_storeu_si128(dst, v);
    }
}

unsafe fn halfpel8_sse2(region: &[u8], rw: usize, hx: usize, hy: usize, out: &mut [u8]) {
    let rp = region.as_ptr();
    for y in 0..8 {
        let base = y * rw;
        let dst = out[y * 8..].as_mut_ptr() as *mut __m128i;
        let a = _mm_loadl_epi64(rp.add(base) as *const __m128i);
        let v = match (hx, hy) {
            (1, 0) => _mm_avg_epu8(a, _mm_loadl_epi64(rp.add(base + 1) as *const __m128i)),
            (0, 1) => _mm_avg_epu8(a, _mm_loadl_epi64(rp.add(base + rw) as *const __m128i)),
            _ => {
                let b = _mm_loadl_epi64(rp.add(base + 1) as *const __m128i);
                let c = _mm_loadl_epi64(rp.add(base + rw) as *const __m128i);
                let d = _mm_loadl_epi64(rp.add(base + rw + 1) as *const __m128i);
                let zero = _mm_setzero_si128();
                let s = _mm_add_epi16(
                    _mm_add_epi16(_mm_unpacklo_epi8(a, zero), _mm_unpacklo_epi8(b, zero)),
                    _mm_add_epi16(_mm_unpacklo_epi8(c, zero), _mm_unpacklo_epi8(d, zero)),
                );
                let s = _mm_srli_epi16::<2>(_mm_add_epi16(s, _mm_set1_epi16(2)));
                _mm_packus_epi16(s, s)
            }
        };
        _mm_storel_epi64(dst, v);
    }
}

// ---------------------------------------------------------------------
// Reconstruction rows
// ---------------------------------------------------------------------

fn add_residual8_sse2(dst: &mut [u8], pred: &[u8], resid: &[i32]) {
    unsafe {
        let zero = _mm_setzero_si128();
        let p = _mm_loadl_epi64(pred.as_ptr() as *const __m128i);
        let p16 = _mm_unpacklo_epi8(p, zero);
        let plo = _mm_unpacklo_epi16(p16, zero);
        let phi = _mm_unpackhi_epi16(p16, zero);
        let rlo = _mm_loadu_si128(resid.as_ptr() as *const __m128i);
        let rhi = _mm_loadu_si128(resid.as_ptr().add(4) as *const __m128i);
        let s16 = _mm_packs_epi32(_mm_add_epi32(plo, rlo), _mm_add_epi32(phi, rhi));
        _mm_storel_epi64(dst.as_mut_ptr() as *mut __m128i, _mm_packus_epi16(s16, s16));
    }
}

fn store_clamped8_sse2(dst: &mut [u8], data: &[i32]) {
    unsafe {
        let lo = _mm_loadu_si128(data.as_ptr() as *const __m128i);
        let hi = _mm_loadu_si128(data.as_ptr().add(4) as *const __m128i);
        let s16 = _mm_packs_epi32(lo, hi);
        _mm_storel_epi64(dst.as_mut_ptr() as *mut __m128i, _mm_packus_epi16(s16, s16));
    }
}
