//! NEON kernel tier (aarch64).
//!
//! NEON is baseline on `aarch64`, so these are plain functions with
//! `unsafe` only around the loads/stores. The tier accelerates SAD,
//! half-pel interpolation, and the reconstruction rows; the DCT pair
//! stays on the scalar transforms (the `i32` splat-multiply formulation
//! buys little on 128-bit lanes, and correctness on this arch is proven
//! by the same differential suite that covers x86).
//!
//! Exactness mirrors the x86 tier: `vabd`+`vaddlv` is the exact SAD,
//! `vrhadd` is the exact `(a + b + 1) >> 1` rounding average, the
//! diagonal average is widened to `u16` (max 1022), and the saturating
//! `s32 → s16 → u8` narrows equal `clamp(0, 255)` for every `i32`.

use super::{halfpel_scalar, KernelTier, Kernels};
use crate::dct;
use core::arch::aarch64::*;

static NEON: Kernels = Kernels {
    tier: KernelTier::Neon,
    sad16: sad16_neon,
    sad16_bounded: sad16_bounded_neon,
    fdct8: dct::forward,
    idct8: dct::inverse,
    halfpel: halfpel_neon,
    add_residual8: add_residual8_neon,
    store_clamped8: store_clamped8_neon,
};

pub(super) fn neon_kernels() -> &'static Kernels {
    &NEON
}

#[inline]
unsafe fn row_sad_neon(a: *const u8, b: *const u8) -> u64 {
    let pa = vld1q_u8(a);
    let pb = vld1q_u8(b);
    vaddlvq_u8(vabdq_u8(pa, pb)) as u64
}

fn sad16_neon(a: &[u8], a_stride: usize, b: &[u8], b_stride: usize) -> u64 {
    let mut acc = 0u64;
    for y in 0..16 {
        acc += unsafe { row_sad_neon(a.as_ptr().add(y * a_stride), b.as_ptr().add(y * b_stride)) };
    }
    acc
}

fn sad16_bounded_neon(
    a: &[u8],
    a_stride: usize,
    b: &[u8],
    b_stride: usize,
    limit: u64,
) -> (u64, u64) {
    let mut acc = 0u64;
    let mut ops = 0u64;
    for y in 0..16 {
        acc += unsafe { row_sad_neon(a.as_ptr().add(y * a_stride), b.as_ptr().add(y * b_stride)) };
        ops += 16;
        if acc >= limit {
            return (acc, ops);
        }
    }
    (acc, ops)
}

/// `(a + b + c + d + 2) >> 2` for one 8-lane half, widened to u16.
#[inline]
unsafe fn diag_avg8(a: uint8x8_t, b: uint8x8_t, c: uint8x8_t, d: uint8x8_t) -> uint8x8_t {
    let s = vaddq_u16(vaddl_u8(a, b), vaddl_u8(c, d));
    vmovn_u16(vshrq_n_u16::<2>(vaddq_u16(s, vdupq_n_u16(2))))
}

fn halfpel_neon(region: &[u8], rw: usize, hx: usize, hy: usize, out: &mut [u8], side: usize) {
    match side {
        16 => unsafe { halfpel16_neon(region, rw, hx, hy, out) },
        8 => unsafe { halfpel8_neon(region, rw, hx, hy, out) },
        _ => halfpel_scalar(region, rw, hx, hy, out, side),
    }
}

unsafe fn halfpel16_neon(region: &[u8], rw: usize, hx: usize, hy: usize, out: &mut [u8]) {
    let rp = region.as_ptr();
    for y in 0..16 {
        let base = y * rw;
        let a = vld1q_u8(rp.add(base));
        let v = match (hx, hy) {
            (1, 0) => vrhaddq_u8(a, vld1q_u8(rp.add(base + 1))),
            (0, 1) => vrhaddq_u8(a, vld1q_u8(rp.add(base + rw))),
            _ => {
                let b = vld1q_u8(rp.add(base + 1));
                let c = vld1q_u8(rp.add(base + rw));
                let d = vld1q_u8(rp.add(base + rw + 1));
                let lo = diag_avg8(
                    vget_low_u8(a),
                    vget_low_u8(b),
                    vget_low_u8(c),
                    vget_low_u8(d),
                );
                let hi = diag_avg8(
                    vget_high_u8(a),
                    vget_high_u8(b),
                    vget_high_u8(c),
                    vget_high_u8(d),
                );
                vcombine_u8(lo, hi)
            }
        };
        vst1q_u8(out[y * 16..].as_mut_ptr(), v);
    }
}

unsafe fn halfpel8_neon(region: &[u8], rw: usize, hx: usize, hy: usize, out: &mut [u8]) {
    let rp = region.as_ptr();
    for y in 0..8 {
        let base = y * rw;
        let a = vld1_u8(rp.add(base));
        let v = match (hx, hy) {
            (1, 0) => vrhadd_u8(a, vld1_u8(rp.add(base + 1))),
            (0, 1) => vrhadd_u8(a, vld1_u8(rp.add(base + rw))),
            _ => {
                let b = vld1_u8(rp.add(base + 1));
                let c = vld1_u8(rp.add(base + rw));
                let d = vld1_u8(rp.add(base + rw + 1));
                diag_avg8(a, b, c, d)
            }
        };
        vst1_u8(out[y * 8..].as_mut_ptr(), v);
    }
}

/// Saturating-narrow an 8-lane i32 row to u8 — equal to
/// `clamp(0, 255)` for every input.
#[inline]
unsafe fn narrow_clamp8(lo: int32x4_t, hi: int32x4_t) -> uint8x8_t {
    vqmovun_s16(vcombine_s16(vqmovn_s32(lo), vqmovn_s32(hi)))
}

fn add_residual8_neon(dst: &mut [u8], pred: &[u8], resid: &[i32]) {
    unsafe {
        let p16 = vreinterpretq_s16_u16(vmovl_u8(vld1_u8(pred.as_ptr())));
        let plo = vmovl_s16(vget_low_s16(p16));
        let phi = vmovl_s16(vget_high_s16(p16));
        let rlo = vld1q_s32(resid.as_ptr());
        let rhi = vld1q_s32(resid.as_ptr().add(4));
        let v = narrow_clamp8(vaddq_s32(plo, rlo), vaddq_s32(phi, rhi));
        vst1_u8(dst.as_mut_ptr(), v);
    }
}

fn store_clamped8_neon(dst: &mut [u8], data: &[i32]) {
    unsafe {
        let lo = vld1q_s32(data.as_ptr());
        let hi = vld1q_s32(data.as_ptr().add(4));
        vst1_u8(dst.as_mut_ptr(), narrow_clamp8(lo, hi));
    }
}
