//! Runtime-dispatched SIMD pixel kernels.
//!
//! The four hot pixel loops of the codec — SAD ([`crate::me`]), the
//! forward DCT feeding the fused transform ([`crate::fused`]), the
//! inverse DCT ([`crate::dct`]), and motion-compensation interpolation /
//! reconstruction ([`crate::mc`], [`crate::block`]) — are exposed here as
//! a [`Kernels`] vtable: a struct of function pointers with one
//! implementation *tier* per instruction set. The scalar tier is the
//! reference implementation (it delegates to the exact scalar code the
//! rest of the crate has always run); the SSE2/AVX2 tiers (and NEON on
//! `aarch64`) are **bit-identical** replacements proven by the
//! differential proptests in `tests/kernel_equiv.rs` and the forced-tier
//! golden matrix in `crates/core/tests/golden_schemes.rs`.
//!
//! # Dispatch
//!
//! The best tier is detected once per process
//! ([`Kernels::detect_best`], via `is_x86_feature_detected!`) and cached
//! by [`Kernels::active`]. Two overrides exist:
//!
//! * the `PBPAIR_KERNELS` environment variable
//!   (`scalar|sse2|avx2|neon`) pins the process-wide active tier — CI
//!   runs the whole suite under each forced tier;
//! * [`KernelChoice`] on [`crate::OptConfig`] pins a tier per encoder
//!   (and [`crate::Decoder::set_kernels`] per decoder) without touching
//!   process state — the in-process test matrix uses this.
//!
//! # Invariants every tier must uphold
//!
//! * **Bit identity.** Every kernel returns exactly the scalar result
//!   for *every* input, including adversarial ones a corrupt bitstream
//!   can produce. Integer-range-sensitive kernels (the DCT pair) check
//!   their input range and fall back to the scalar path outside it.
//! * **Op-count invariance.** Reported operation counts are *logical*
//!   (one per absolute difference, 16 per SAD row), not lane counts, so
//!   the energy model and `sad_ops` telemetry are identical across
//!   tiers. Concretely: [`Kernels::sad16_bounded`] must evaluate and
//!   test the bound **row-granularly**, abandoning after exactly the
//!   same row the scalar kernel abandons after.
//!
//! A coarser-grained bounded SAD is still *winner-identical* for the
//! motion searches (see [`crate::me::sad_mb_bounded`]'s contract); such
//! a tier would only change op accounting, not bitstreams. The
//! [`Kernels::coarse2_for_tests`] tier exists to prove that property.

use crate::dct::{self, BLOCK_LEN, HALF, Q};
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

#[cfg(target_arch = "x86_64")]
mod x86;

#[cfg(target_arch = "aarch64")]
mod neon;

/// One implementation tier of the kernel vtable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KernelTier {
    /// The scalar reference implementation (always available).
    Scalar,
    /// SSE2: `_mm_sad_epu8` SAD, `pmaddwd` DCT pair, `pavgb`/widening
    /// half-pel, saturating-pack reconstruction (x86-64 baseline).
    Sse2,
    /// AVX2: two-row SAD, splat-multiply 8-lane i32 DCT pair.
    Avx2,
    /// NEON SAD/half-pel/reconstruction (aarch64; DCTs fall back to
    /// scalar).
    Neon,
}

impl KernelTier {
    /// Stable lower-case label (`scalar`, `sse2`, `avx2`, `neon`) —
    /// the vocabulary of `PBPAIR_KERNELS` and the bench JSON.
    pub fn label(&self) -> &'static str {
        match self {
            KernelTier::Scalar => "scalar",
            KernelTier::Sse2 => "sse2",
            KernelTier::Avx2 => "avx2",
            KernelTier::Neon => "neon",
        }
    }

    /// Parses a [`KernelTier::label`] string.
    pub fn parse(s: &str) -> Option<KernelTier> {
        match s.trim().to_ascii_lowercase().as_str() {
            "scalar" => Some(KernelTier::Scalar),
            "sse2" => Some(KernelTier::Sse2),
            "avx2" => Some(KernelTier::Avx2),
            "neon" => Some(KernelTier::Neon),
            _ => None,
        }
    }
}

impl std::fmt::Display for KernelTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Which kernel tier an encoder (or decoder) should use — carried on
/// [`crate::OptConfig`] so the dispatch point is configuration, not
/// global state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum KernelChoice {
    /// Use the process-wide active tier ([`Kernels::active`]): the
    /// detected best, or the `PBPAIR_KERNELS` override.
    #[default]
    Auto,
    /// Force the scalar reference tier.
    Scalar,
    /// Force SSE2.
    Sse2,
    /// Force AVX2.
    Avx2,
    /// Force NEON.
    Neon,
}

impl KernelChoice {
    /// Pins a specific tier.
    pub fn forced(tier: KernelTier) -> KernelChoice {
        match tier {
            KernelTier::Scalar => KernelChoice::Scalar,
            KernelTier::Sse2 => KernelChoice::Sse2,
            KernelTier::Avx2 => KernelChoice::Avx2,
            KernelTier::Neon => KernelChoice::Neon,
        }
    }

    /// Resolves this choice to a kernel table.
    ///
    /// # Panics
    ///
    /// Panics if a forced tier is not compiled/available on this host
    /// (misconfiguration should fail loudly, exactly like a bad
    /// `PBPAIR_KERNELS` value).
    pub fn resolve(&self) -> &'static Kernels {
        let tier = match self {
            KernelChoice::Auto => return Kernels::active(),
            KernelChoice::Scalar => KernelTier::Scalar,
            KernelChoice::Sse2 => KernelTier::Sse2,
            KernelChoice::Avx2 => KernelTier::Avx2,
            KernelChoice::Neon => KernelTier::Neon,
        };
        Kernels::get(tier)
            .unwrap_or_else(|| panic!("kernel tier `{tier}` is not available on this host"))
    }
}

/// Bounded-SAD kernel signature:
/// `(a, a_stride, b, b_stride, limit) -> (acc, ops)`.
type SadBoundedFn = fn(&[u8], usize, &[u8], usize, u64) -> (u64, u64);

/// The kernel vtable: one function pointer per hot pixel loop. All
/// pointers are plain `fn` items (`Send + Sync`), so a `&'static
/// Kernels` flows freely into the slice-parallel row closures.
pub struct Kernels {
    tier: KernelTier,
    sad16: fn(&[u8], usize, &[u8], usize) -> u64,
    sad16_bounded: SadBoundedFn,
    fdct8: fn(&[i32; BLOCK_LEN], &mut [i32; BLOCK_LEN]),
    idct8: fn(&[i32; BLOCK_LEN], &mut [i32; BLOCK_LEN]),
    halfpel: fn(&[u8], usize, usize, usize, &mut [u8], usize),
    add_residual8: fn(&mut [u8], &[u8], &[i32]),
    store_clamped8: fn(&mut [u8], &[i32]),
}

impl std::fmt::Debug for Kernels {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kernels").field("tier", &self.tier).finish()
    }
}

impl Kernels {
    /// Which tier this table implements.
    #[inline]
    pub fn tier(&self) -> KernelTier {
        self.tier
    }

    /// SAD of a 16×16 block: `a` and `b` point at the top-left sample of
    /// each block inside a row-major plane with the given strides.
    /// Always performs (and is charged as) 256 logical absolute
    /// differences.
    ///
    /// # Panics
    ///
    /// Panics if either slice is too short for 16 rows at its stride.
    #[inline]
    pub fn sad16(&self, a: &[u8], a_stride: usize, b: &[u8], b_stride: usize) -> u64 {
        assert!(a.len() >= 15 * a_stride + 16 && b.len() >= 15 * b_stride + 16);
        (self.sad16)(a, a_stride, b, b_stride)
    }

    /// Row-granular bounded SAD: accumulates 16-sample rows and abandons
    /// as soon as the partial sum reaches `limit`. Returns `(acc, ops)`
    /// where `ops` counts 16 logical absolute differences per row
    /// visited. `acc` is the exact full SAD **iff** `acc < limit`;
    /// otherwise it is only a lower bound on the true SAD (see
    /// [`crate::me::sad_mb_bounded`] for the caller contract).
    ///
    /// Every production tier abandons after exactly the same row as the
    /// scalar tier, so `(acc, ops)` — not just the winner — is
    /// tier-invariant.
    ///
    /// # Panics
    ///
    /// Panics if either slice is too short for 16 rows at its stride.
    #[inline]
    pub fn sad16_bounded(
        &self,
        a: &[u8],
        a_stride: usize,
        b: &[u8],
        b_stride: usize,
        limit: u64,
    ) -> (u64, u64) {
        assert!(a.len() >= 15 * a_stride + 16 && b.len() >= 15 * b_stride + 16);
        (self.sad16_bounded)(a, a_stride, b, b_stride, limit)
    }

    /// Forward 8×8 DCT, bit-identical to [`crate::dct::forward`] for
    /// every input (SIMD tiers range-check and fall back to the scalar
    /// transform outside their exact domain).
    #[inline]
    pub fn fdct8(&self, input: &[i32; BLOCK_LEN], output: &mut [i32; BLOCK_LEN]) {
        (self.fdct8)(input, output)
    }

    /// Inverse 8×8 DCT, bit-identical to [`crate::dct::inverse`] for
    /// every input — including the oversized coefficients a corrupt
    /// bitstream can dequantize to, which take the scalar fallback.
    #[inline]
    pub fn idct8(&self, input: &[i32; BLOCK_LEN], output: &mut [i32; BLOCK_LEN]) {
        (self.idct8)(input, output)
    }

    /// Half-pel bilinear interpolation with H.263 rounding over a
    /// `side`×`side` block: `region` is the `(side+hx)`×`(side+hy)`
    /// integer-pel source with row stride `region_w`, `(hx, hy)` is the
    /// half-pel phase (not both zero), and `out` is the `side`×`side`
    /// destination. Matches [`crate::mc::predict_luma_subpel`]'s
    /// averaging exactly.
    #[inline]
    pub fn halfpel(
        &self,
        region: &[u8],
        region_w: usize,
        hx: usize,
        hy: usize,
        out: &mut [u8],
        side: usize,
    ) {
        debug_assert!(hx | hy != 0, "integer phase is a plain copy");
        assert!(region.len() >= (side + hy - 1) * region_w + side + hx);
        assert!(out.len() >= side * side);
        (self.halfpel)(region, region_w, hx, hy, out, side)
    }

    /// Reconstruction row: `dst[i] = clamp(pred[i] + resid[i], 0, 255)`
    /// over 8 samples.
    #[inline]
    pub fn add_residual8(&self, dst: &mut [u8], pred: &[u8], resid: &[i32]) {
        assert!(dst.len() >= 8 && pred.len() >= 8 && resid.len() >= 8);
        (self.add_residual8)(dst, pred, resid)
    }

    /// Intra reconstruction row: `dst[i] = clamp(data[i], 0, 255)` over
    /// 8 samples.
    #[inline]
    pub fn store_clamped8(&self, dst: &mut [u8], data: &[i32]) {
        assert!(dst.len() >= 8 && data.len() >= 8);
        (self.store_clamped8)(dst, data)
    }

    /// The scalar reference tier (always available).
    pub fn scalar() -> &'static Kernels {
        &SCALAR
    }

    /// The table for `tier`, if compiled for this architecture *and*
    /// supported by the running CPU.
    pub fn get(tier: KernelTier) -> Option<&'static Kernels> {
        match tier {
            KernelTier::Scalar => Some(&SCALAR),
            #[cfg(target_arch = "x86_64")]
            KernelTier::Sse2 => is_x86_feature_detected!("sse2").then_some(x86::sse2_kernels()),
            #[cfg(target_arch = "x86_64")]
            KernelTier::Avx2 => is_x86_feature_detected!("avx2").then_some(x86::avx2_kernels()),
            #[cfg(target_arch = "aarch64")]
            KernelTier::Neon => {
                std::arch::is_aarch64_feature_detected!("neon").then_some(neon::neon_kernels())
            }
            #[allow(unreachable_patterns)]
            _ => None,
        }
    }

    /// Every tier available on this host, scalar first, fastest last.
    pub fn available() -> Vec<KernelTier> {
        [
            KernelTier::Scalar,
            KernelTier::Sse2,
            KernelTier::Avx2,
            KernelTier::Neon,
        ]
        .into_iter()
        .filter(|&t| Kernels::get(t).is_some())
        .collect()
    }

    /// The fastest tier the running CPU supports.
    pub fn detect_best() -> KernelTier {
        *Kernels::available()
            .last()
            .expect("scalar always available")
    }

    /// The process-wide active table: the `PBPAIR_KERNELS` override if
    /// set, otherwise [`Kernels::detect_best`]. Resolved once and
    /// cached.
    ///
    /// # Panics
    ///
    /// Panics (on first use) if `PBPAIR_KERNELS` names an unknown or
    /// unavailable tier — a forced-dispatch CI run must fail loudly,
    /// never silently fall back.
    pub fn active() -> &'static Kernels {
        static ACTIVE: OnceLock<&'static Kernels> = OnceLock::new();
        ACTIVE.get_or_init(|| {
            let tier = match std::env::var("PBPAIR_KERNELS") {
                Ok(s) => KernelTier::parse(&s)
                    .unwrap_or_else(|| panic!("PBPAIR_KERNELS: unknown tier `{s}`")),
                Err(_) => Kernels::detect_best(),
            };
            Kernels::get(tier).unwrap_or_else(|| {
                panic!("PBPAIR_KERNELS: tier `{tier}` is not available on this host")
            })
        })
    }

    /// A deliberately coarser bounded-SAD tier for contract tests: the
    /// bound is only tested every **2** rows (ops are still charged per
    /// row). Exercises the [`crate::me::sad_mb_bounded`] caller
    /// contract — the motion searches must pick the identical winner
    /// under any bound-check granularity, because an abandoned
    /// candidate (`acc ≥ limit`) can never be adopted and a completed
    /// one (`acc < limit`) carries its exact SAD. Only op counts may
    /// differ. Not part of [`Kernels::available`].
    #[doc(hidden)]
    pub fn coarse2_for_tests() -> &'static Kernels {
        static COARSE2: Kernels = Kernels {
            tier: KernelTier::Scalar,
            sad16: sad16_scalar,
            sad16_bounded: sad16_bounded_coarse2,
            fdct8: dct::forward,
            idct8: dct::inverse,
            halfpel: halfpel_scalar,
            add_residual8: add_residual8_scalar,
            store_clamped8: store_clamped8_scalar,
        };
        &COARSE2
    }
}

static SCALAR: Kernels = Kernels {
    tier: KernelTier::Scalar,
    sad16: sad16_scalar,
    sad16_bounded: sad16_bounded_scalar,
    fdct8: dct::forward,
    idct8: dct::inverse,
    halfpel: halfpel_scalar,
    add_residual8: add_residual8_scalar,
    store_clamped8: store_clamped8_scalar,
};

// ---------------------------------------------------------------------
// Scalar tier — the bit-exact reference every SIMD tier is tested
// against. These bodies are the original hot loops of `me.rs` /
// `mc.rs` / `block.rs`, lifted verbatim behind the vtable signatures.
// ---------------------------------------------------------------------

pub(crate) fn sad16_scalar(a: &[u8], a_stride: usize, b: &[u8], b_stride: usize) -> u64 {
    let mut acc = 0u64;
    for y in 0..16 {
        let ra = &a[y * a_stride..y * a_stride + 16];
        let rb = &b[y * b_stride..y * b_stride + 16];
        for (pa, pb) in ra.iter().zip(rb) {
            acc += (*pa as i32 - *pb as i32).unsigned_abs() as u64;
        }
    }
    acc
}

pub(crate) fn sad16_bounded_scalar(
    a: &[u8],
    a_stride: usize,
    b: &[u8],
    b_stride: usize,
    limit: u64,
) -> (u64, u64) {
    let mut acc = 0u64;
    let mut ops = 0u64;
    for y in 0..16 {
        let ra = &a[y * a_stride..y * a_stride + 16];
        let rb = &b[y * b_stride..y * b_stride + 16];
        for (pa, pb) in ra.iter().zip(rb) {
            acc += (*pa as i32 - *pb as i32).unsigned_abs() as u64;
        }
        ops += 16;
        if acc >= limit {
            return (acc, ops);
        }
    }
    (acc, ops)
}

/// The 2-row-granularity contract tier (see
/// [`Kernels::coarse2_for_tests`]): identical arithmetic, but the bound
/// is only consulted after odd rows.
fn sad16_bounded_coarse2(
    a: &[u8],
    a_stride: usize,
    b: &[u8],
    b_stride: usize,
    limit: u64,
) -> (u64, u64) {
    let mut acc = 0u64;
    let mut ops = 0u64;
    for y in 0..16 {
        let ra = &a[y * a_stride..y * a_stride + 16];
        let rb = &b[y * b_stride..y * b_stride + 16];
        for (pa, pb) in ra.iter().zip(rb) {
            acc += (*pa as i32 - *pb as i32).unsigned_abs() as u64;
        }
        ops += 16;
        if y % 2 == 1 && acc >= limit {
            return (acc, ops);
        }
    }
    (acc, ops)
}

pub(crate) fn halfpel_scalar(
    region: &[u8],
    rw: usize,
    hx: usize,
    hy: usize,
    out: &mut [u8],
    side: usize,
) {
    for y in 0..side {
        for x in 0..side {
            let a = region[y * rw + x] as u16;
            let v = match (hx, hy) {
                (1, 0) => (a + region[y * rw + x + 1] as u16).div_ceil(2),
                (0, 1) => (a + region[(y + 1) * rw + x] as u16).div_ceil(2),
                _ => {
                    (a + region[y * rw + x + 1] as u16
                        + region[(y + 1) * rw + x] as u16
                        + region[(y + 1) * rw + x + 1] as u16
                        + 2)
                        / 4
                }
            };
            out[y * side + x] = v as u8;
        }
    }
}

pub(crate) fn add_residual8_scalar(dst: &mut [u8], pred: &[u8], resid: &[i32]) {
    for ((d, &p), &r) in dst.iter_mut().zip(pred).zip(resid).take(8) {
        *d = (p as i32 + r).clamp(0, 255) as u8;
    }
}

pub(crate) fn store_clamped8_scalar(dst: &mut [u8], data: &[i32]) {
    for (d, &v) in dst.iter_mut().zip(data).take(8) {
        *d = v.clamp(0, 255) as u8;
    }
}

// ---------------------------------------------------------------------
// Shared DCT range-gating. A SIMD transform is exact only while its
// intermediates fit the lane widths it uses; the gates are derived from
// the actual basis table so the proof is arithmetic, not hopeful.
// ---------------------------------------------------------------------

/// Derived integer-range facts about the Q12 basis, shared by the SIMD
/// DCT implementations to compute their exact-domain gates.
pub(crate) struct DctRange {
    /// `max_k Σ_n |b[k][n]|` — the worst-case 1-D gain at Q12 scale.
    /// Read by the gate-derivation tests.
    #[cfg_attr(not(test), allow(dead_code))]
    pub row_abs_sum: i64,
    /// Largest `max|input|` for which a 16-bit-intermediate (`pmaddwd`)
    /// two-stage transform is exact: input and stage-1 output both fit
    /// `i16`, stage-2 accumulators fit `i32`.
    pub gate_i16: i32,
    /// Largest `max|input|` for which a 32-bit-lane two-stage transform
    /// is exact (both stages' accumulators fit `i32`).
    pub gate_i32: i32,
}

pub(crate) fn dct_range() -> &'static DctRange {
    static R: OnceLock<DctRange> = OnceLock::new();
    R.get_or_init(|| {
        let b = dct::basis();
        let row_abs_sum = b
            .iter()
            .map(|row| row.iter().map(|&v| (v as i64).abs()).sum::<i64>())
            .max()
            .unwrap();
        let s = row_abs_sum;
        // Stage-1 output for inputs bounded by g:
        //   tmp_max(g) = (g·s + HALF) >> Q.
        // i16 path: g ≤ i16::MAX, tmp_max ≤ i16::MAX, and the stage-2
        // pmaddwd accumulator tmp_max·s must fit i32 (it does whenever
        // tmp_max fits i16, since i16::MAX·s < 2³¹ for s < 2¹⁶).
        let gate_i16 = ((((i16::MAX as i64) << Q) - HALF) / s).min(i16::MAX as i64) as i32;
        // i32 path: stage-1 accumulator g·s and stage-2 accumulator
        // tmp_max·s must both fit i32.
        let tmp_cap = (i32::MAX as i64) / s;
        let gate_i32 = (((tmp_cap << Q) - HALF) / s).min(i32::MAX as i64) as i32;
        debug_assert!(gate_i16 >= 8192, "i16 DCT gate unexpectedly tight");
        DctRange {
            row_abs_sum,
            gate_i16,
            gate_i32,
        }
    })
}

/// Whether every sample of `block` is within `±gate` — the SIMD DCT
/// exact-domain test.
#[inline]
pub(crate) fn within_gate(block: &[i32; BLOCK_LEN], gate: i32) -> bool {
    block.iter().all(|&v| v.unsigned_abs() <= gate as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_roundtrip() {
        for tier in [
            KernelTier::Scalar,
            KernelTier::Sse2,
            KernelTier::Avx2,
            KernelTier::Neon,
        ] {
            assert_eq!(KernelTier::parse(tier.label()), Some(tier));
        }
        assert_eq!(KernelTier::parse("AVX2 "), Some(KernelTier::Avx2));
        assert_eq!(KernelTier::parse("mmx"), None);
    }

    #[test]
    fn scalar_is_always_available_and_first() {
        let tiers = Kernels::available();
        assert_eq!(tiers[0], KernelTier::Scalar);
        for t in tiers {
            assert!(Kernels::get(t).is_some());
            assert_eq!(Kernels::get(t).unwrap().tier(), t);
        }
    }

    #[test]
    fn forced_choice_resolves_to_its_tier() {
        for t in Kernels::available() {
            assert_eq!(KernelChoice::forced(t).resolve().tier(), t);
        }
    }

    #[test]
    fn dct_gates_cover_every_legitimate_coefficient() {
        let r = dct_range();
        // Legitimate dequantized AC magnitude caps at 31·(2·127+1) =
        // 7905 and the intra DC at 255·8 = 2040; the i16 gate must
        // clear both so real streams never hit the scalar fallback.
        assert!(r.gate_i16 >= 7905, "gate_i16 = {}", r.gate_i16);
        assert!(r.gate_i32 >= r.gate_i16);
        // And the gates really are exact domains: a value just inside
        // must satisfy the stage bounds used in their derivation.
        let tmp_max = ((r.gate_i16 as i64 * r.row_abs_sum) + HALF) >> Q;
        assert!(tmp_max <= i16::MAX as i64);
        assert!(tmp_max * r.row_abs_sum <= i32::MAX as i64);
    }

    /// Fast-failing differential smoke over every compiled tier; the
    /// full property-based matrix lives in `tests/kernel_equiv.rs`.
    #[test]
    fn simd_tiers_match_scalar_on_smoke_inputs() {
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut rng = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        let scalar = Kernels::scalar();
        let stride = 23usize;
        let pa: Vec<u8> = (0..16 * stride).map(|_| rng() as u8).collect();
        let pb: Vec<u8> = (0..16 * stride).map(|_| rng() as u8).collect();
        for tier in Kernels::available() {
            let k = Kernels::get(tier).unwrap();
            assert_eq!(
                k.sad16(&pa, stride, &pb, stride),
                scalar.sad16(&pa, stride, &pb, stride),
                "{tier} sad16"
            );
            let full = scalar.sad16(&pa, stride, &pb, stride);
            for limit in [0, 1, full / 2, full, full + 1, u64::MAX] {
                assert_eq!(
                    k.sad16_bounded(&pa, stride, &pb, stride, limit),
                    scalar.sad16_bounded(&pa, stride, &pb, stride, limit),
                    "{tier} sad16_bounded limit={limit}"
                );
            }
            for round in 0..50 {
                // In-gate pixel/residual-range blocks plus out-of-gate
                // extremes that must hit the scalar fallback.
                let amp: i32 = if round % 5 == 4 { 3_000_000 } else { 255 };
                let blk: [i32; BLOCK_LEN] =
                    std::array::from_fn(|_| (rng() % (2 * amp as u32 + 1)) as i32 - amp);
                let mut want = [0i32; BLOCK_LEN];
                let mut got = [0i32; BLOCK_LEN];
                scalar.fdct8(&blk, &mut want);
                k.fdct8(&blk, &mut got);
                assert_eq!(got, want, "{tier} fdct8 round {round}");
                scalar.idct8(&blk, &mut want);
                k.idct8(&blk, &mut got);
                assert_eq!(got, want, "{tier} idct8 round {round}");
            }
            for side in [8usize, 16] {
                for (hx, hy) in [(1, 0), (0, 1), (1, 1)] {
                    let rw = side + hx;
                    let rh = side + hy;
                    let region: Vec<u8> = (0..rw * rh).map(|_| rng() as u8).collect();
                    let mut want = vec![0u8; side * side];
                    let mut got = vec![0u8; side * side];
                    scalar.halfpel(&region, rw, hx, hy, &mut want, side);
                    k.halfpel(&region, rw, hx, hy, &mut got, side);
                    assert_eq!(got, want, "{tier} halfpel side={side} ({hx},{hy})");
                }
            }
            for _ in 0..50 {
                let pred: [u8; 8] = std::array::from_fn(|_| rng() as u8);
                let resid: [i32; 8] =
                    std::array::from_fn(|_| (rng() % 20_000_001) as i32 - 10_000_000);
                let mut want = [0u8; 8];
                let mut got = [0u8; 8];
                scalar.add_residual8(&mut want, &pred, &resid);
                k.add_residual8(&mut got, &pred, &resid);
                assert_eq!(got, want, "{tier} add_residual8");
                scalar.store_clamped8(&mut want, &resid);
                k.store_clamped8(&mut got, &resid);
                assert_eq!(got, want, "{tier} store_clamped8");
            }
        }
    }

    #[test]
    fn bounded_scalar_matches_unbounded_under_max_limit() {
        let a: Vec<u8> = (0..16 * 20).map(|i| (i * 7 % 251) as u8).collect();
        let b: Vec<u8> = (0..16 * 20).map(|i| (i * 13 % 239) as u8).collect();
        let full = sad16_scalar(&a, 20, &b, 20);
        let (acc, ops) = sad16_bounded_scalar(&a, 20, &b, 20, u64::MAX);
        assert_eq!(acc, full);
        assert_eq!(ops, 256);
        // Coarse tier: same totals when never abandoned.
        let (acc2, ops2) = super::sad16_bounded_coarse2(&a, 20, &b, 20, u64::MAX);
        assert_eq!((acc2, ops2), (acc, ops));
    }
}
