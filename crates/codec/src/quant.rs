//! H.263-style scalar quantization.
//!
//! Inter and intra-AC coefficients use the uniform dead-zone quantizer of
//! H.263 (§6.2 of the recommendation): step `2·QP` with reconstruction at
//! `QP·(2|L|+1)` (odd QP) or `QP·(2|L|+1)−1` (even QP). Intra DC uses a
//! fixed step of 8 and is carried as an 8-bit level.

use serde::{Deserialize, Serialize};

/// A quantization parameter in `1..=31`, H.263's QP range.
///
/// # Example
///
/// ```rust
/// use pbpair_codec::quant::Qp;
///
/// let qp = Qp::new(8).unwrap();
/// assert_eq!(qp.get(), 8);
/// assert!(Qp::new(0).is_none());
/// assert!(Qp::new(32).is_none());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Qp(u8);

impl Qp {
    /// Creates a QP, returning `None` outside `1..=31`.
    pub fn new(qp: u8) -> Option<Qp> {
        (1..=31).contains(&qp).then_some(Qp(qp))
    }

    /// The raw QP value.
    #[inline]
    pub fn get(&self) -> u8 {
        self.0
    }
}

impl Default for Qp {
    /// QP 8: mid-quality, the default the evaluation harness uses.
    fn default() -> Self {
        Qp(8)
    }
}

/// Maximum representable intra-DC level (8-bit carrier).
pub const INTRA_DC_LEVEL_MAX: i32 = 255;
/// Quantizer step for the intra DC coefficient.
pub const INTRA_DC_STEP: i32 = 8;

/// Quantizes one inter (or intra-AC) coefficient with dead zone.
#[inline]
pub fn quantize_ac(coef: i32, qp: Qp) -> i32 {
    let q = qp.0 as i32;
    let mag = coef.abs();
    // H.263 inter quantizer: |L| = (|C| - q/2) / (2q), floor, dead zone.
    let level = (mag - q / 2) / (2 * q);
    let level = level.clamp(0, 127);
    if coef < 0 {
        -level
    } else {
        level
    }
}

/// Reconstructs one inter (or intra-AC) coefficient from its level.
#[inline]
pub fn dequantize_ac(level: i32, qp: Qp) -> i32 {
    if level == 0 {
        return 0;
    }
    let q = qp.0 as i32;
    let mag = level.abs();
    let rec = if q % 2 == 1 {
        q * (2 * mag + 1)
    } else {
        q * (2 * mag + 1) - 1
    };
    if level < 0 {
        -rec
    } else {
        rec
    }
}

/// Quantizes the intra DC coefficient (always non-negative for level-
/// shifted 8-bit content; clamped into the 8-bit carrier).
#[inline]
pub fn quantize_intra_dc(coef: i32) -> i32 {
    ((coef + INTRA_DC_STEP / 2) / INTRA_DC_STEP).clamp(0, INTRA_DC_LEVEL_MAX)
}

/// Reconstructs the intra DC coefficient.
#[inline]
pub fn dequantize_intra_dc(level: i32) -> i32 {
    level * INTRA_DC_STEP
}

/// Quantizes a full 64-coefficient block in natural order. `intra` selects
/// DC handling: intra blocks quantize coefficient 0 with the fixed DC
/// step, inter blocks treat every coefficient uniformly.
pub fn quantize_block(coefs: &[i32; 64], qp: Qp, intra: bool) -> [i32; 64] {
    std::array::from_fn(|i| {
        if intra && i == 0 {
            quantize_intra_dc(coefs[0])
        } else {
            quantize_ac(coefs[i], qp)
        }
    })
}

/// Reconstructs a full 64-coefficient block in natural order.
pub fn dequantize_block(levels: &[i32; 64], qp: Qp, intra: bool) -> [i32; 64] {
    std::array::from_fn(|i| {
        if intra && i == 0 {
            dequantize_intra_dc(levels[0])
        } else {
            dequantize_ac(levels[i], qp)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qp_range_is_validated() {
        assert!(Qp::new(1).is_some());
        assert!(Qp::new(31).is_some());
        assert!(Qp::new(0).is_none());
        assert!(Qp::new(32).is_none());
        assert_eq!(Qp::default().get(), 8);
    }

    #[test]
    fn dead_zone_kills_small_coefficients() {
        let qp = Qp::new(8).unwrap();
        for c in -19..=19 {
            assert_eq!(quantize_ac(c, qp), 0, "coef {c} must fall in dead zone");
        }
        assert_eq!(quantize_ac(20, qp), 1);
        assert_eq!(quantize_ac(-20, qp), -1);
    }

    #[test]
    fn reconstruction_error_is_bounded_by_step() {
        for qp_v in [1u8, 4, 8, 15, 31] {
            let qp = Qp::new(qp_v).unwrap();
            // Stay within the representable range of the ±127 level clamp.
            let range = 800.min(2 * qp_v as i32 * 120);
            for c in (-range..range).step_by(7) {
                let rec = dequantize_ac(quantize_ac(c, qp), qp);
                let err = (c - rec).abs();
                // Step 2q plus the asymmetric dead zone of q/2.
                let bound = 2 * qp_v as i32 + qp_v as i32 / 2 + 1;
                assert!(err <= bound, "qp={qp_v} c={c} rec={rec} err={err}");
            }
        }
    }

    #[test]
    fn dequantize_is_odd_symmetric() {
        let qp = Qp::new(6).unwrap();
        for l in 1..50 {
            assert_eq!(dequantize_ac(-l, qp), -dequantize_ac(l, qp));
        }
    }

    #[test]
    fn even_qp_reconstruction_is_odd_valued_minus_one() {
        // H.263's even-QP rule: reconstruction magnitudes are q(2|L|+1)−1.
        let qp = Qp::new(8).unwrap();
        assert_eq!(dequantize_ac(1, qp), 23);
        assert_eq!(dequantize_ac(2, qp), 39);
        let qp_odd = Qp::new(7).unwrap();
        assert_eq!(dequantize_ac(1, qp_odd), 21);
    }

    #[test]
    fn intra_dc_roundtrip() {
        for dc in (0..2040).step_by(13) {
            let l = quantize_intra_dc(dc);
            let rec = dequantize_intra_dc(l);
            assert!((dc - rec).abs() <= INTRA_DC_STEP / 2, "dc {dc} → {rec}");
        }
        // Clamps at the 8-bit carrier.
        assert_eq!(quantize_intra_dc(99_999), INTRA_DC_LEVEL_MAX);
        assert_eq!(quantize_intra_dc(-50), 0);
    }

    #[test]
    fn block_quantization_respects_intra_dc() {
        let mut coefs = [0i32; 64];
        coefs[0] = 801; // DC
        coefs[1] = 100;
        let qp = Qp::new(8).unwrap();
        let intra = quantize_block(&coefs, qp, true);
        let inter = quantize_block(&coefs, qp, false);
        assert_eq!(intra[0], 100); // 801/8 rounded
        assert_eq!(inter[0], quantize_ac(801, qp));
        assert_eq!(intra[1], inter[1]);
        let rec = dequantize_block(&intra, qp, true);
        assert_eq!(rec[0], 800);
    }

    #[test]
    fn coarser_qp_quantizes_harder() {
        let fine = Qp::new(2).unwrap();
        let coarse = Qp::new(20).unwrap();
        let c = 120;
        assert!(quantize_ac(c, fine) > quantize_ac(c, coarse));
    }
}
