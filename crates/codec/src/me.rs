//! Motion estimation.
//!
//! Two search strategies over an integer-pixel window:
//!
//! * [`SearchStrategy::Full`] — exhaustive search of the whole window, the
//!   reference against which the fast search is validated;
//! * [`SearchStrategy::ThreeStep`] — the classic logarithmic three-step
//!   search (9 candidates per step, halving the stride), the default used
//!   by the evaluation because it matches what a 400 MHz PDA codec would
//!   actually run.
//!
//! Every candidate's cost is `SAD(mv) + bias(mv)` where `bias` is supplied
//! by the caller. The plain codec passes a zero bias; **PBPAIR passes its
//! probability-of-correctness penalty here** — this hook is exactly where
//! the paper integrates network awareness into the ME process (Section
//! 3.1.2).
//!
//! Each search also reports how many absolute-difference operations it
//! executed, feeding the operation-accounting energy model.

use crate::kernels::Kernels;
use crate::mb::{MotionVector, SubPelVector};
use crate::mc::{predict_luma_subpel_with, LUMA_BLOCK};
use pbpair_media::{MbIndex, Plane};
use serde::{Deserialize, Serialize};

/// Which candidate pattern the searcher visits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SearchStrategy {
    /// Exhaustive integer search of `(2r+1)²` candidates.
    Full,
    /// Three-step logarithmic search (~25 candidates for r = 7,
    /// ~33 for r = 15).
    ThreeStep,
}

/// Motion-search configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MeConfig {
    /// Maximum displacement per axis in pixels (H.263 default window ±15).
    pub search_range: u8,
    /// Candidate pattern.
    pub strategy: SearchStrategy,
}

impl Default for MeConfig {
    /// ±15 three-step search — the evaluation default.
    fn default() -> Self {
        MeConfig {
            search_range: 15,
            strategy: SearchStrategy::ThreeStep,
        }
    }
}

/// Result of one motion search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MeResult {
    /// The winning vector.
    pub mv: MotionVector,
    /// Plain SAD of the winning vector (bias not included).
    pub sad: u64,
    /// Biased cost of the winning vector (what the search minimized).
    pub cost: i64,
    /// Candidates evaluated.
    pub candidates: u32,
    /// Absolute-difference operations executed (256 per candidate).
    pub sad_ops: u64,
}

/// SAD between the macroblock `mb` of `cur` and the same-size block of
/// `reference` displaced by `mv` (edge-clamped). Uses the process-wide
/// active kernel tier; see [`sad_mb_with`].
pub fn sad_mb(cur: &Plane, reference: &Plane, mb: MbIndex, mv: MotionVector) -> u64 {
    sad_mb_with(Kernels::active(), cur, reference, mb, mv)
}

/// [`sad_mb`] through an explicit kernel table. Interior candidates
/// (both blocks fully inside their planes) run the tier's SAD kernel;
/// edge-clamped candidates read through [`Plane::get_clamped`] and stay
/// scalar on every tier — the replication pattern defeats contiguous
/// loads, and border candidates are a vanishing fraction of the search.
pub fn sad_mb_with(
    k: &Kernels,
    cur: &Plane,
    reference: &Plane,
    mb: MbIndex,
    mv: MotionVector,
) -> u64 {
    let (ox, oy) = mb.luma_origin();
    let rx = ox as isize + mv.x as isize;
    let ry = oy as isize + mv.y as isize;
    let w = reference.width() as isize;
    let h = reference.height() as isize;
    if rx >= 0 && ry >= 0 && rx + 16 <= w && ry + 16 <= h {
        // Fast path: contiguous rows on both sides.
        let (rx, ry) = (rx as usize, ry as usize);
        let cur_stride = cur.width();
        let ref_stride = reference.width();
        k.sad16(
            &cur.samples()[oy * cur_stride + ox..],
            cur_stride,
            &reference.samples()[ry * ref_stride + rx..],
            ref_stride,
        )
    } else {
        let mut acc = 0u64;
        for dy in 0..16 {
            let a = &cur.row(oy + dy)[ox..ox + 16];
            for (dx, pa) in a.iter().enumerate() {
                let pb = reference.get_clamped(rx + dx as isize, ry + dy as isize);
                acc += (*pa as i32 - pb as i32).unsigned_abs() as u64;
            }
        }
        acc
    }
}

/// Bounded SAD with early termination: accumulates row by row and
/// abandons the candidate as soon as the partial sum reaches `limit`
/// (at which point it can no longer win). Returns the accumulated sum
/// plus the number of absolute-difference operations actually executed
/// (16 per row visited, against [`sad_mb`]'s unconditional 256). Uses
/// the process-wide active kernel tier; see [`sad_mb_bounded_with`].
///
/// # Contract
///
/// Callers may rely on exactly two properties of the returned `(acc,
/// ops)` — and nothing else:
///
/// 1. if `acc < limit`, then `acc` **is** the exact full SAD;
/// 2. if `acc ≥ limit`, the true SAD is `≥ limit` (the candidate was
///    abandoned; `acc` is only a lower bound on the true SAD).
///
/// In particular, callers must NOT assume the bound is consulted after
/// every row: an implementation that checks it every 2 rows (or per
/// whole block) still satisfies 1–2, and the motion searches remain
/// winner-identical under it because they adopt a candidate only when
/// `acc < limit` — see `tests/kernel_equiv.rs`
/// (`coarse_bounded_sad_is_winner_identical`), which proves the searches
/// against a deliberately 2-row-granular tier
/// ([`Kernels::coarse2_for_tests`]). Every *production* tier does check
/// per row, which is the stronger property that keeps `ops` (and the
/// energy model) tier-invariant, not just the winner.
pub fn sad_mb_bounded(
    cur: &Plane,
    reference: &Plane,
    mb: MbIndex,
    mv: MotionVector,
    limit: u64,
) -> (u64, u64) {
    sad_mb_bounded_with(Kernels::active(), cur, reference, mb, mv, limit)
}

/// [`sad_mb_bounded`] through an explicit kernel table (same contract).
pub fn sad_mb_bounded_with(
    k: &Kernels,
    cur: &Plane,
    reference: &Plane,
    mb: MbIndex,
    mv: MotionVector,
    limit: u64,
) -> (u64, u64) {
    let (ox, oy) = mb.luma_origin();
    let rx = ox as isize + mv.x as isize;
    let ry = oy as isize + mv.y as isize;
    let w = reference.width() as isize;
    let h = reference.height() as isize;
    if rx >= 0 && ry >= 0 && rx + 16 <= w && ry + 16 <= h {
        let (rx, ry) = (rx as usize, ry as usize);
        let cur_stride = cur.width();
        let ref_stride = reference.width();
        k.sad16_bounded(
            &cur.samples()[oy * cur_stride + ox..],
            cur_stride,
            &reference.samples()[ry * ref_stride + rx..],
            ref_stride,
            limit,
        )
    } else {
        let mut acc = 0u64;
        let mut ops = 0u64;
        for dy in 0..16 {
            let a = &cur.row(oy + dy)[ox..ox + 16];
            for (dx, pa) in a.iter().enumerate() {
                let pb = reference.get_clamped(rx + dx as isize, ry + dy as isize);
                acc += (*pa as i32 - pb as i32).unsigned_abs() as u64;
            }
            ops += 16;
            if acc >= limit {
                return (acc, ops);
            }
        }
        (acc, ops)
    }
}

/// Sum of absolute deviations of macroblock `mb` from its own mean — the
/// paper's `SAD_self`, the intra-side term of the inter/intra decision.
pub fn sad_self(cur: &Plane, mb: MbIndex) -> u64 {
    let (ox, oy) = mb.luma_origin();
    let mut sum = 0u64;
    for dy in 0..16 {
        for &p in &cur.row(oy + dy)[ox..ox + 16] {
            sum += p as u64;
        }
    }
    let mean = (sum / 256) as i32;
    let mut acc = 0u64;
    for dy in 0..16 {
        for &p in &cur.row(oy + dy)[ox..ox + 16] {
            acc += (p as i32 - mean).unsigned_abs() as u64;
        }
    }
    acc
}

/// A small deduplicated list of predicted motion vectors, fed to
/// [`search_fast`] as a pruning prepass. The encoder fills it with the
/// median of the causal neighbours (left/top/top-right), the zero
/// vector, and the co-located previous-frame vector.
#[derive(Debug, Clone, Copy, Default)]
pub struct MvCandidates {
    mvs: [MotionVector; 4],
    len: u8,
}

impl MvCandidates {
    /// Adds `mv` clamped to the search window `±range`, skipping exact
    /// duplicates. Silently ignores pushes past capacity (4).
    pub fn push_clamped(&mut self, mv: MotionVector, range: u8) {
        let r = range as i16;
        let clamped = MotionVector::new(mv.x.clamp(-r, r), mv.y.clamp(-r, r));
        if self.len as usize == self.mvs.len() || self.as_slice().contains(&clamped) {
            return;
        }
        self.mvs[self.len as usize] = clamped;
        self.len += 1;
    }

    /// The candidates pushed so far.
    pub fn as_slice(&self) -> &[MotionVector] {
        &self.mvs[..self.len as usize]
    }
}

/// Component-wise median of three motion vectors — the H.263/H.264
/// motion-vector predictor over the left/top/top-right neighbours.
pub fn median_mv(a: MotionVector, b: MotionVector, c: MotionVector) -> MotionVector {
    fn med(a: i16, b: i16, c: i16) -> i16 {
        let mut v = [a, b, c];
        v.sort_unstable();
        v[1]
    }
    MotionVector::new(med(a.x, b.x, c.x), med(a.y, b.y, c.y))
}

/// Runs the configured search for macroblock `mb`, minimizing
/// `SAD(mv) + bias(mv)`.
///
/// `bias` may be stateful (PBPAIR consults its correctness matrix); it is
/// invoked once per candidate.
pub fn search(
    cur: &Plane,
    reference: &Plane,
    mb: MbIndex,
    cfg: MeConfig,
    bias: &mut dyn FnMut(MotionVector) -> i64,
) -> MeResult {
    search_with(Kernels::active(), cur, reference, mb, cfg, bias)
}

/// [`search`] through an explicit kernel table.
pub fn search_with(
    k: &Kernels,
    cur: &Plane,
    reference: &Plane,
    mb: MbIndex,
    cfg: MeConfig,
    bias: &mut dyn FnMut(MotionVector) -> i64,
) -> MeResult {
    match cfg.strategy {
        SearchStrategy::Full => full_search(k, cur, reference, mb, cfg.search_range, bias),
        SearchStrategy::ThreeStep => three_step(k, cur, reference, mb, cfg.search_range, bias),
    }
}

/// The optimized counterpart of [`search`]: returns the **identical**
/// `(mv, sad, cost)` for any inputs (the winner, its SAD, and its biased
/// cost are provably the same as the naive search's, including
/// tie-breaking), but executes far fewer absolute-difference operations.
/// `candidates` and `sad_ops` report the work actually performed, so they
/// are smaller than (and not comparable to) the naive search's counts.
///
/// * `Full`: the predicted-MV `prepass` list is evaluated first to
///   establish an upper bound on the winning cost; the exhaustive sweep
///   then abandons any candidate whose partial SAD proves it cannot beat
///   both the running best and that bound. The prepass only tightens the
///   pruning limit — it never replaces the running best directly, which
///   is what preserves the naive search's first-wins tie-breaking.
/// * `ThreeStep`: the hill-climb visits exactly the naive trajectory
///   (prediction can not be folded in without changing the path), with
///   each candidate's SAD abandoned once it reaches the running best.
///
/// `bias` is invoked once per visited candidate, including the prepass —
/// i.e. potentially more times than the naive search invokes it.
pub fn search_fast(
    cur: &Plane,
    reference: &Plane,
    mb: MbIndex,
    cfg: MeConfig,
    bias: &mut dyn FnMut(MotionVector) -> i64,
    prepass: &MvCandidates,
) -> MeResult {
    search_fast_with(Kernels::active(), cur, reference, mb, cfg, bias, prepass)
}

/// [`search_fast`] through an explicit kernel table.
#[allow(clippy::too_many_arguments)]
pub fn search_fast_with(
    k: &Kernels,
    cur: &Plane,
    reference: &Plane,
    mb: MbIndex,
    cfg: MeConfig,
    bias: &mut dyn FnMut(MotionVector) -> i64,
    prepass: &MvCandidates,
) -> MeResult {
    match cfg.strategy {
        SearchStrategy::Full => {
            full_search_fast(k, cur, reference, mb, cfg.search_range, bias, prepass)
        }
        SearchStrategy::ThreeStep => three_step_fast(k, cur, reference, mb, cfg.search_range, bias),
    }
}

fn full_search_fast(
    k: &Kernels,
    cur: &Plane,
    reference: &Plane,
    mb: MbIndex,
    range: u8,
    bias: &mut dyn FnMut(MotionVector) -> i64,
    prepass: &MvCandidates,
) -> MeResult {
    let r = range as i16;
    // Zero vector first, fully evaluated: the tie-breaking anchor.
    let zero_sad = sad_mb_with(k, cur, reference, mb, MotionVector::ZERO);
    let mut best = MeResult {
        mv: MotionVector::ZERO,
        sad: zero_sad,
        cost: zero_sad as i64 + bias(MotionVector::ZERO),
        candidates: 1,
        sad_ops: 256,
    };
    // Prepass: each predicted MV is inside the window (push_clamped), so
    // its cost is an upper bound on the sweep's true minimum. Only the
    // bound is tightened; `best` is NOT updated here, because adopting a
    // candidate out of sweep order would change which of several
    // equal-cost vectors wins.
    let mut bound = best.cost;
    for &mv in prepass.as_slice() {
        if mv == MotionVector::ZERO {
            continue;
        }
        let sad = sad_mb_with(k, cur, reference, mb, mv);
        best.candidates += 1;
        best.sad_ops += 256;
        bound = bound.min(sad as i64 + bias(mv));
    }
    for dy in -r..=r {
        for dx in -r..=r {
            if dx == 0 && dy == 0 {
                continue;
            }
            let mv = MotionVector::new(dx, dy);
            let b = bias(mv);
            best.candidates += 1;
            // A candidate can only be the naive winner with
            // cost < best.cost and cost ≤ bound, i.e.
            // sad < min(best.cost, bound + 1) − bias.
            let limit = best.cost.min(bound.saturating_add(1)).saturating_sub(b);
            if limit <= 0 {
                continue;
            }
            let (sad, ops) = sad_mb_bounded_with(k, cur, reference, mb, mv, limit as u64);
            best.sad_ops += ops;
            if sad < limit as u64 {
                // Fully evaluated and strictly under the limit, hence
                // strictly under the running best.
                best.mv = mv;
                best.sad = sad;
                best.cost = sad as i64 + b;
            }
        }
    }
    best
}

fn three_step_fast(
    k: &Kernels,
    cur: &Plane,
    reference: &Plane,
    mb: MbIndex,
    range: u8,
    bias: &mut dyn FnMut(MotionVector) -> i64,
) -> MeResult {
    let r = range as i16;
    let zero_sad = sad_mb_with(k, cur, reference, mb, MotionVector::ZERO);
    let mut best = MeResult {
        mv: MotionVector::ZERO,
        sad: zero_sad,
        cost: zero_sad as i64 + bias(MotionVector::ZERO),
        candidates: 1,
        sad_ops: 256,
    };
    let mut step = 1i16;
    while step * 2 <= r.max(1) {
        step *= 2;
    }
    let mut center = MotionVector::ZERO;
    while step >= 1 {
        let mut improved = true;
        while improved {
            improved = false;
            for dy in [-step, 0, step] {
                for dx in [-step, 0, step] {
                    if dx == 0 && dy == 0 {
                        continue;
                    }
                    let cand = MotionVector::new(
                        (center.x + dx).clamp(-r, r),
                        (center.y + dy).clamp(-r, r),
                    );
                    if cand == center {
                        continue;
                    }
                    let b = bias(cand);
                    best.candidates += 1;
                    // Update iff sad < best.cost − bias ⇔ the naive
                    // search's strict cost improvement — so the
                    // hill-climb follows the identical trajectory.
                    let limit = best.cost.saturating_sub(b);
                    if limit <= 0 {
                        continue;
                    }
                    let (sad, ops) = sad_mb_bounded_with(k, cur, reference, mb, cand, limit as u64);
                    best.sad_ops += ops;
                    if sad < limit as u64 {
                        best.mv = cand;
                        best.sad = sad;
                        best.cost = sad as i64 + b;
                        improved = true;
                    }
                }
            }
            if improved {
                center = best.mv;
            }
            if step > 1 {
                break; // only the final stride hill-climbs repeatedly
            }
        }
        step /= 2;
    }
    best
}

/// Result of a half-pel refinement around an integer winner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubPelResult {
    /// The winning half-pel vector (may equal the integer input).
    pub mv: SubPelVector,
    /// SAD of the winning position.
    pub sad: u64,
    /// Absolute-difference + interpolation operations spent (for the
    /// energy model).
    pub sad_ops: u64,
}

/// Refines an integer-search winner by testing its 8 half-pel neighbours
/// (H.263's half-pel step after integer search). Returns the best of the
/// 9 positions.
pub fn refine_half_pel(
    cur: &Plane,
    reference: &Plane,
    mb: MbIndex,
    int_mv: MotionVector,
    int_sad: u64,
) -> SubPelResult {
    refine_half_pel_with(Kernels::active(), cur, reference, mb, int_mv, int_sad)
}

/// [`refine_half_pel`] through an explicit kernel table (interpolation
/// and SAD both run on the tier's kernels).
pub fn refine_half_pel_with(
    k: &Kernels,
    cur: &Plane,
    reference: &Plane,
    mb: MbIndex,
    int_mv: MotionVector,
    int_sad: u64,
) -> SubPelResult {
    let (ox, oy) = mb.luma_origin();
    let mut best = SubPelResult {
        mv: SubPelVector::integer(int_mv),
        sad: int_sad,
        sad_ops: 0,
    };
    let (cx, cy) = (2 * int_mv.x, 2 * int_mv.y);
    let cur_stride = cur.width();
    let cur_base = &cur.samples()[oy * cur_stride + ox..];
    let mut pred = [0u8; LUMA_BLOCK * LUMA_BLOCK];
    for dy in -1i16..=1 {
        for dx in -1i16..=1 {
            if dx == 0 && dy == 0 {
                continue;
            }
            let cand = SubPelVector::from_half_units(cx + dx, cy + dy);
            predict_luma_subpel_with(k, reference, mb, cand, &mut pred);
            let sad = k.sad16(cur_base, cur_stride, &pred, LUMA_BLOCK);
            // 256 interpolation ops + 256 difference ops per candidate.
            best.sad_ops += 512;
            if sad < best.sad {
                best.sad = sad;
                best.mv = cand;
            }
        }
    }
    best
}

fn evaluate(
    k: &Kernels,
    cur: &Plane,
    reference: &Plane,
    mb: MbIndex,
    mv: MotionVector,
    bias: &mut dyn FnMut(MotionVector) -> i64,
    best: &mut MeResult,
) {
    let sad = sad_mb_with(k, cur, reference, mb, mv);
    let cost = sad as i64 + bias(mv);
    best.candidates += 1;
    best.sad_ops += 256;
    // Strict improvement keeps the earliest (most central) candidate on
    // ties, biasing toward short vectors.
    if cost < best.cost {
        best.mv = mv;
        best.sad = sad;
        best.cost = cost;
    }
}

fn full_search(
    k: &Kernels,
    cur: &Plane,
    reference: &Plane,
    mb: MbIndex,
    range: u8,
    bias: &mut dyn FnMut(MotionVector) -> i64,
) -> MeResult {
    let r = range as i16;
    let mut best = MeResult {
        mv: MotionVector::ZERO,
        sad: u64::MAX,
        cost: i64::MAX,
        candidates: 0,
        sad_ops: 0,
    };
    // Zero vector first so ties resolve to it.
    evaluate(k, cur, reference, mb, MotionVector::ZERO, bias, &mut best);
    for dy in -r..=r {
        for dx in -r..=r {
            if dx == 0 && dy == 0 {
                continue;
            }
            evaluate(
                k,
                cur,
                reference,
                mb,
                MotionVector::new(dx, dy),
                bias,
                &mut best,
            );
        }
    }
    best
}

fn three_step(
    k: &Kernels,
    cur: &Plane,
    reference: &Plane,
    mb: MbIndex,
    range: u8,
    bias: &mut dyn FnMut(MotionVector) -> i64,
) -> MeResult {
    let r = range as i16;
    let mut best = MeResult {
        mv: MotionVector::ZERO,
        sad: u64::MAX,
        cost: i64::MAX,
        candidates: 0,
        sad_ops: 0,
    };
    evaluate(k, cur, reference, mb, MotionVector::ZERO, bias, &mut best);
    // Initial stride: largest power of two ≤ max(range, 1) rounded to
    // cover the window (8 for the ±15 default).
    let mut step = 1i16;
    while step * 2 <= r.max(1) {
        step *= 2;
    }
    let mut center = MotionVector::ZERO;
    while step >= 1 {
        let mut improved = true;
        // At each stride, hill-climb until the center stops moving, then
        // halve — the classic TSS with center refinement.
        while improved {
            improved = false;
            for dy in [-step, 0, step] {
                for dx in [-step, 0, step] {
                    if dx == 0 && dy == 0 {
                        continue;
                    }
                    let cand = MotionVector::new(
                        (center.x + dx).clamp(-r, r),
                        (center.y + dy).clamp(-r, r),
                    );
                    if cand == center {
                        continue;
                    }
                    let before = best.cost;
                    evaluate(k, cur, reference, mb, cand, bias, &mut best);
                    if best.cost < before && best.mv == cand {
                        improved = true;
                    }
                }
            }
            if improved {
                center = best.mv;
            }
            if step > 1 {
                break; // only the final stride hill-climbs repeatedly
            }
        }
        step /= 2;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbpair_media::VideoFormat;

    /// Builds (current, reference) planes where the current frame is the
    /// reference shifted by `(dx, dy)` pixels.
    fn shifted_pair(dx: isize, dy: isize) -> (Plane, Plane) {
        let fmt = VideoFormat::QCIF;
        let reference = Plane::from_fn(fmt.width(), fmt.height(), |x, y| {
            // Smooth deterministic texture: the error surface around the
            // true translation is unimodal, which logarithmic searches
            // (three-step) require to converge; full search does not care.
            let v = 128.0
                + 55.0 * (x as f64 * 0.11).sin()
                + 45.0 * (y as f64 * 0.09).cos()
                + 20.0 * ((x + y) as f64 * 0.05).sin();
            v as u8
        });
        let mut cur = Plane::new(fmt.width(), fmt.height());
        for y in 0..fmt.height() {
            for x in 0..fmt.width() {
                cur.set(
                    x,
                    y,
                    reference.get_clamped(x as isize + dx, y as isize + dy),
                );
            }
        }
        (cur, reference)
    }

    #[test]
    fn full_search_finds_exact_translation() {
        let (cur, reference) = shifted_pair(5, -3);
        let cfg = MeConfig {
            search_range: 7,
            strategy: SearchStrategy::Full,
        };
        let mb = MbIndex::new(4, 5);
        let r = search(&cur, &reference, mb, cfg, &mut |_| 0);
        assert_eq!(r.mv, MotionVector::new(5, -3));
        assert_eq!(r.sad, 0);
        assert_eq!(r.candidates, 15 * 15);
        assert_eq!(r.sad_ops, 15 * 15 * 256);
    }

    #[test]
    fn three_step_finds_the_same_translation() {
        let (cur, reference) = shifted_pair(5, -3);
        let cfg = MeConfig {
            search_range: 15,
            strategy: SearchStrategy::ThreeStep,
        };
        let mb = MbIndex::new(4, 5);
        let r = search(&cur, &reference, mb, cfg, &mut |_| 0);
        assert_eq!(r.mv, MotionVector::new(5, -3));
        assert_eq!(r.sad, 0);
        assert!(
            r.candidates < 80,
            "three-step must be far cheaper than full search: {}",
            r.candidates
        );
    }

    #[test]
    fn zero_motion_yields_zero_vector() {
        let (cur, reference) = shifted_pair(0, 0);
        for strategy in [SearchStrategy::Full, SearchStrategy::ThreeStep] {
            let cfg = MeConfig {
                search_range: 7,
                strategy,
            };
            let r = search(&cur, &reference, MbIndex::new(2, 2), cfg, &mut |_| 0);
            assert_eq!(r.mv, MotionVector::ZERO, "{strategy:?}");
            assert_eq!(r.sad, 0);
        }
    }

    #[test]
    fn bias_can_veto_the_sad_winner() {
        // Reproduces the paper's Figure 3: the lowest-SAD candidate loses
        // when the bias (probability-of-correctness penalty) is high.
        let (cur, reference) = shifted_pair(4, 0);
        let cfg = MeConfig {
            search_range: 7,
            strategy: SearchStrategy::Full,
        };
        let mb = MbIndex::new(3, 3);
        // Unbiased winner is (4, 0).
        let unbiased = search(&cur, &reference, mb, cfg, &mut |_| 0);
        assert_eq!(unbiased.mv, MotionVector::new(4, 0));
        // Penalize exactly that vector enormously.
        let biased = search(&cur, &reference, mb, cfg, &mut |mv| {
            if mv == MotionVector::new(4, 0) {
                1_000_000
            } else {
                0
            }
        });
        assert_ne!(biased.mv, MotionVector::new(4, 0));
        assert!(biased.sad >= unbiased.sad);
    }

    #[test]
    fn search_respects_the_window() {
        let (cur, reference) = shifted_pair(12, 0); // true motion outside ±7
        let cfg = MeConfig {
            search_range: 7,
            strategy: SearchStrategy::Full,
        };
        let r = search(&cur, &reference, MbIndex::new(4, 4), cfg, &mut |_| 0);
        assert!(r.mv.x.abs() <= 7 && r.mv.y.abs() <= 7);
    }

    #[test]
    fn sad_self_is_zero_for_flat_blocks() {
        let flat = Plane::filled(176, 144, 77);
        assert_eq!(sad_self(&flat, MbIndex::new(0, 0)), 0);
        let (cur, _) = shifted_pair(0, 0);
        assert!(sad_self(&cur, MbIndex::new(3, 3)) > 0);
    }

    /// All (mb, shift, strategy, bias) combinations the fast search must
    /// match the naive search on, including window-clamped cases.
    fn fast_matches_naive_case(
        dx: isize,
        dy: isize,
        mb: MbIndex,
        range: u8,
        strategy: SearchStrategy,
        penalty: i64,
    ) {
        let (cur, reference) = shifted_pair(dx, dy);
        let cfg = MeConfig {
            search_range: range,
            strategy,
        };
        let penalized = MotionVector::new(dx as i16, dy as i16);
        let naive = search(&cur, &reference, mb, cfg, &mut |mv| {
            if mv == penalized {
                penalty
            } else {
                0
            }
        });
        let mut prepass = MvCandidates::default();
        prepass.push_clamped(MotionVector::new(dx as i16, dy as i16), range);
        prepass.push_clamped(MotionVector::ZERO, range);
        prepass.push_clamped(MotionVector::new(-3, 2), range);
        let fast = search_fast(
            &cur,
            &reference,
            mb,
            cfg,
            &mut |mv| if mv == penalized { penalty } else { 0 },
            &prepass,
        );
        assert_eq!(fast.mv, naive.mv, "{strategy:?} shift=({dx},{dy})");
        assert_eq!(fast.sad, naive.sad, "{strategy:?} shift=({dx},{dy})");
        assert_eq!(fast.cost, naive.cost, "{strategy:?} shift=({dx},{dy})");
        if strategy == SearchStrategy::Full {
            assert!(
                fast.sad_ops < naive.sad_ops,
                "pruning must actually cut work: fast {} vs naive {}",
                fast.sad_ops,
                naive.sad_ops
            );
        }
    }

    #[test]
    fn fast_search_matches_naive_winner_everywhere() {
        for strategy in [SearchStrategy::Full, SearchStrategy::ThreeStep] {
            fast_matches_naive_case(5, -3, MbIndex::new(4, 5), 7, strategy, 0);
            fast_matches_naive_case(0, 0, MbIndex::new(0, 0), 7, strategy, 0);
            // Border MB: candidate windows clamp against the frame edge.
            fast_matches_naive_case(-4, 6, MbIndex::new(0, 0), 15, strategy, 0);
            fast_matches_naive_case(3, 3, MbIndex::new(8, 10), 15, strategy, 0);
            // A bias that vetoes the SAD winner must veto it in both.
            fast_matches_naive_case(4, 0, MbIndex::new(3, 3), 7, strategy, 1_000_000);
        }
    }

    #[test]
    fn mv_candidates_clamp_and_dedup() {
        let mut c = MvCandidates::default();
        c.push_clamped(MotionVector::new(40, -40), 15);
        c.push_clamped(MotionVector::new(15, -15), 15); // dup after clamp
        c.push_clamped(MotionVector::ZERO, 15);
        assert_eq!(
            c.as_slice(),
            &[MotionVector::new(15, -15), MotionVector::ZERO]
        );
    }

    #[test]
    fn median_mv_is_componentwise() {
        assert_eq!(
            median_mv(
                MotionVector::new(1, 9),
                MotionVector::new(5, -4),
                MotionVector::new(3, 0),
            ),
            MotionVector::new(3, 0)
        );
    }

    #[test]
    fn sad_mb_bounded_agrees_with_full_sad_under_limit() {
        let (cur, reference) = shifted_pair(2, -1);
        let mb = MbIndex::new(3, 4);
        for mv in [
            MotionVector::ZERO,
            MotionVector::new(2, -1),
            MotionVector::new(-15, 15), // clamped path
        ] {
            let full = sad_mb(&cur, &reference, mb, mv);
            let (bounded, ops) = sad_mb_bounded(&cur, &reference, mb, mv, u64::MAX);
            assert_eq!(bounded, full);
            assert_eq!(ops, 256);
            // A tight limit must abandon early and report fewer ops.
            if full > 0 {
                let (partial, partial_ops) = sad_mb_bounded(&cur, &reference, mb, mv, 1);
                assert!(partial >= 1);
                assert!(partial_ops <= 256);
            }
        }
    }

    #[test]
    fn sad_mb_fast_and_clamped_paths_agree() {
        let (cur, reference) = shifted_pair(2, 2);
        // An interior vector takes the fast path; recompute manually via
        // the clamped accessor and compare.
        let mb = MbIndex::new(2, 2);
        let mv = MotionVector::new(1, -1);
        let fast = sad_mb(&cur, &reference, mb, mv);
        let (ox, oy) = mb.luma_origin();
        let mut slow = 0u64;
        for dy in 0..16isize {
            for dx in 0..16isize {
                let a = cur.get(ox + dx as usize, oy + dy as usize);
                let b = reference.get_clamped(
                    ox as isize + dx + mv.x as isize,
                    oy as isize + dy + mv.y as isize,
                );
                slow += (a as i32 - b as i32).unsigned_abs() as u64;
            }
        }
        assert_eq!(fast, slow);
    }
}
