//! The refresh-policy interface: where error-resilience schemes plug into
//! the encoder.
//!
//! The paper's Figure 2 shows PBPAIR integrating into the encoding loop at
//! two points: **encoding mode selection before motion estimation** and
//! **the ME cost function itself**. The baselines hook in elsewhere: GOP
//! at frame granularity, PGOP/AIR per macroblock (AIR necessarily *after*
//! ME). [`RefreshPolicy`] exposes exactly these hooks, so every scheme —
//! including the paper's ablations — is a policy implementation, and the
//! encoder's energy accounting automatically reflects which hooks a scheme
//! uses (a pre-ME intra decision never runs the search, which is the whole
//! energy story).
//!
//! The trait lives in the codec crate so the encoder can drive it; the
//! scheme implementations live in the `pbpair` crate.

use crate::mb::{FrameStats, MbMode, MotionVector};
use crate::me::MeResult;
use pbpair_media::{MbIndex, Plane, VideoFormat};
use serde::{Deserialize, Serialize};

/// Frame-level coding type requested by a policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FrameKind {
    /// All macroblocks intra (an I-frame).
    Intra,
    /// Predictive frame; per-macroblock decisions apply (a P-frame).
    Inter,
}

/// Per-frame information passed to policy hooks.
#[derive(Debug, Clone, Copy)]
pub struct FrameContext {
    /// Index of the frame being encoded (0-based).
    pub frame_index: u64,
    /// Picture format.
    pub format: VideoFormat,
    /// Macroblocks per frame.
    pub mb_count: usize,
}

/// Per-macroblock information passed to policy hooks.
#[derive(Debug)]
pub struct MbContext<'a> {
    /// Index of the frame being encoded.
    pub frame_index: u64,
    /// The macroblock being decided.
    pub mb: MbIndex,
    /// Original luma of the current frame.
    pub cur_luma: &'a Plane,
    /// Reconstructed luma of the reference (previous) frame.
    pub ref_luma: &'a Plane,
    /// SAD between this macroblock and its colocated predecessor in the
    /// previous *original* frame — the content-similarity measurement that
    /// drives the paper's similarity factor.
    pub colocated_sad: u64,
}

/// Mode decision available before motion estimation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PreMeDecision {
    /// Code this macroblock intra and **skip motion estimation** — the
    /// energy-saving early exit of PBPAIR and the column refresh of PGOP.
    ForceIntra,
    /// Run motion estimation and continue to the post-ME decision.
    TryInter,
}

/// Mode decision available after motion estimation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PostMeDecision {
    /// Accept the encoder's natural inter/intra choice.
    Keep,
    /// Force intra even though ME ran (AIR's refresh, PGOP's stride-back).
    ForceIntra,
}

/// What actually happened to a macroblock, reported back to the policy
/// after it is coded.
#[derive(Debug, Clone, Copy)]
pub struct MbOutcome {
    /// The macroblock.
    pub mb: MbIndex,
    /// Final coding mode.
    pub mode: MbMode,
    /// Motion vector (zero for intra and skip).
    pub mv: MotionVector,
    /// SAD of the chosen vector if motion estimation ran.
    pub sad_mv: Option<u64>,
    /// Whether motion estimation was performed for this macroblock.
    pub me_performed: bool,
    /// Colocated-SAD similarity measurement (same value the `MbContext`
    /// carried).
    pub colocated_sad: u64,
}

/// A frame-frozen snapshot of a policy's ME bias: a pure function of
/// `(macroblock, candidate vector)` that is safe to evaluate from
/// multiple slice-encoding threads at once. See
/// [`RefreshPolicy::frame_frozen_bias`].
pub type FrozenMeBias = Box<dyn Fn(MbIndex, MotionVector) -> i64 + Send + Sync>;

/// An error-resilience scheme, driven by the encoder once per frame and
/// once per macroblock.
///
/// All hooks have defaults that produce plain predictive coding with no
/// forced refresh, so a policy only overrides the hooks its scheme uses.
pub trait RefreshPolicy {
    /// Chooses the frame type. Called before any macroblock of the frame.
    /// The encoder forces the very first frame to [`FrameKind::Intra`]
    /// regardless of this hook (there is no reference yet).
    fn begin_frame(&mut self, ctx: &FrameContext) -> FrameKind {
        let _ = ctx;
        FrameKind::Inter
    }

    /// Early mode selection, before motion estimation (paper §3.1.1).
    fn pre_me_mode(&mut self, ctx: &MbContext<'_>) -> PreMeDecision {
        let _ = ctx;
        PreMeDecision::TryInter
    }

    /// Additive bias on an ME candidate's cost (paper §3.1.2). Positive
    /// values penalize the candidate. The default is no bias (pure SAD).
    fn me_bias(&mut self, ctx: &MbContext<'_>, mv: MotionVector) -> i64 {
        let _ = (ctx, mv);
        0
    }

    /// Late mode override, after motion estimation.
    fn post_me_mode(&mut self, ctx: &MbContext<'_>, me: &MeResult) -> PostMeDecision {
        let _ = (ctx, me);
        PostMeDecision::Keep
    }

    /// A thread-safe snapshot of [`RefreshPolicy::me_bias`] for the frame
    /// about to be encoded, or `None` (the default) when the bias cannot
    /// be frozen. Slice-parallel encoding is only engaged when this
    /// returns `Some`: the parallel path calls the snapshot instead of
    /// `me_bias`, so a policy must guarantee the snapshot returns exactly
    /// what `me_bias` would have returned at any point during the frame
    /// (i.e. its bias does not change mid-frame). Policies with a
    /// mid-frame-mutating bias keep the `None` default and the encoder
    /// transparently falls back to serial encoding.
    fn frame_frozen_bias(&self, ctx: &FrameContext) -> Option<FrozenMeBias> {
        let _ = ctx;
        None
    }

    /// Observes the final outcome of each macroblock (PBPAIR updates its
    /// correctness matrix here; AIR records SADs for the next frame).
    fn mb_coded(&mut self, ctx: &FrameContext, outcome: &MbOutcome) {
        let _ = (ctx, outcome);
    }

    /// Observes the end of each frame with its stats.
    fn end_frame(&mut self, ctx: &FrameContext, stats: &FrameStats) {
        let _ = (ctx, stats);
    }

    /// Human-readable scheme label used in reports ("PBPAIR", "GOP-8" …).
    fn label(&self) -> String {
        "policy".to_string()
    }
}

/// The paper's **NO** configuration: no error-resilience scheme at all.
/// The encoder still makes its natural inter/intra choice per macroblock
/// (high-motion blocks go intra when prediction fails), but nothing is
/// ever refreshed for resilience.
#[derive(Debug, Clone, Copy, Default)]
pub struct NaturalPolicy;

impl NaturalPolicy {
    /// Creates the policy.
    pub fn new() -> Self {
        NaturalPolicy
    }
}

impl RefreshPolicy for NaturalPolicy {
    fn label(&self) -> String {
        "NO".to_string()
    }

    fn frame_frozen_bias(&self, _ctx: &FrameContext) -> Option<FrozenMeBias> {
        Some(Box::new(|_, _| 0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn natural_policy_uses_all_defaults() {
        let mut p = NaturalPolicy::new();
        let fctx = FrameContext {
            frame_index: 3,
            format: VideoFormat::QCIF,
            mb_count: 99,
        };
        assert_eq!(p.begin_frame(&fctx), FrameKind::Inter);
        assert_eq!(p.label(), "NO");
        let plane = Plane::new(176, 144);
        let ctx = MbContext {
            frame_index: 3,
            mb: MbIndex::new(0, 0),
            cur_luma: &plane,
            ref_luma: &plane,
            colocated_sad: 0,
        };
        assert_eq!(p.pre_me_mode(&ctx), PreMeDecision::TryInter);
        assert_eq!(p.me_bias(&ctx, MotionVector::new(1, 1)), 0);
    }
}
