//! Bit-exact bitstream writer and reader.
//!
//! The codec's entropy layer serializes into an MSB-first bit string, the
//! convention used by H.263 and every other ITU/MPEG codec. [`BitWriter`]
//! accumulates bits into a byte vector; [`BitReader`] consumes one.
//!
//! Besides raw fixed-width fields, both ends implement the unsigned and
//! signed **Exp-Golomb** universal codes (`ue(v)` / `se(v)`), which the
//! codec uses for headers and as the escape coding of its VLC tables.

use std::error::Error;
use std::fmt;

/// Error returned when a reader runs out of bits or a value is malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BitstreamError {
    /// The reader reached the end of the buffer mid-value.
    UnexpectedEnd,
    /// An Exp-Golomb prefix was longer than any encodable value (corrupt
    /// stream).
    MalformedExpGolomb,
    /// A value exceeded the range the caller declared legal.
    ValueOutOfRange {
        /// What was being decoded.
        what: &'static str,
        /// The offending value.
        value: i64,
    },
}

impl fmt::Display for BitstreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BitstreamError::UnexpectedEnd => write!(f, "unexpected end of bitstream"),
            BitstreamError::MalformedExpGolomb => write!(f, "malformed exp-golomb code"),
            BitstreamError::ValueOutOfRange { what, value } => {
                write!(f, "decoded {what} out of range: {value}")
            }
        }
    }
}

impl Error for BitstreamError {}

/// MSB-first bit writer.
///
/// # Example
///
/// ```rust
/// use pbpair_codec::bitstream::{BitReader, BitWriter};
///
/// # fn main() -> Result<(), pbpair_codec::bitstream::BitstreamError> {
/// let mut w = BitWriter::new();
/// w.put_bits(0b101, 3);
/// w.put_ue(17);
/// w.put_se(-4);
/// let bytes = w.finish();
///
/// let mut r = BitReader::new(&bytes);
/// assert_eq!(r.get_bits(3)?, 0b101);
/// assert_eq!(r.get_ue()?, 17);
/// assert_eq!(r.get_se()?, -4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Bits pending in `acc`, 0..8.
    pending: u32,
    acc: u8,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        BitWriter::default()
    }

    /// Number of bits written so far.
    pub fn bit_len(&self) -> u64 {
        self.bytes.len() as u64 * 8 + self.pending as u64
    }

    /// Appends the `n` least-significant bits of `value`, MSB first.
    ///
    /// # Panics
    ///
    /// Panics if `n > 32` or if `value` has bits above bit `n`.
    pub fn put_bits(&mut self, value: u32, n: u32) {
        assert!(n <= 32, "cannot write more than 32 bits at once");
        assert!(
            n == 32 || value < (1u32 << n),
            "value {value} does not fit in {n} bits"
        );
        for i in (0..n).rev() {
            self.put_bit((value >> i) & 1 == 1);
        }
    }

    /// Appends a single bit.
    pub fn put_bit(&mut self, bit: bool) {
        self.acc = (self.acc << 1) | bit as u8;
        self.pending += 1;
        if self.pending == 8 {
            self.bytes.push(self.acc);
            self.acc = 0;
            self.pending = 0;
        }
    }

    /// Appends an unsigned Exp-Golomb code: `v` is written as
    /// `leading_zeros(len(v+1)-1)` zero bits, then the binary of `v+1`.
    pub fn put_ue(&mut self, v: u32) {
        // v+1 may need 33 bits when v == u32::MAX; keep arithmetic in u64.
        let x = v as u64 + 1;
        let len = 64 - x.leading_zeros(); // number of significant bits
        for _ in 0..len - 1 {
            self.put_bit(false);
        }
        for i in (0..len).rev() {
            self.put_bit((x >> i) & 1 == 1);
        }
    }

    /// Appends a signed Exp-Golomb code using the H.264 zigzag mapping
    /// (0, 1, −1, 2, −2, …).
    pub fn put_se(&mut self, v: i32) {
        let mapped = if v > 0 {
            (v as u32) * 2 - 1
        } else {
            (-(v as i64) as u32) * 2
        };
        self.put_ue(mapped);
    }

    /// Pads with zero bits to the next byte boundary and returns the bytes.
    pub fn finish(mut self) -> Vec<u8> {
        if self.pending > 0 {
            self.acc <<= 8 - self.pending;
            self.bytes.push(self.acc);
        }
        self.bytes
    }

    /// Clears the writer for reuse, keeping the byte buffer's capacity.
    pub fn reset(&mut self) {
        self.bytes.clear();
        self.pending = 0;
        self.acc = 0;
    }

    /// Pads to a byte boundary, moves the bytes into `out` (replacing its
    /// contents but reusing its capacity), and resets the writer. The
    /// allocation-free counterpart of [`BitWriter::finish`].
    pub fn finish_into(&mut self, out: &mut Vec<u8>) {
        if self.pending > 0 {
            self.bytes.push(self.acc << (8 - self.pending));
        }
        out.clear();
        out.extend_from_slice(&self.bytes);
        self.reset();
    }

    /// Appends every bit of `other` (which need not be byte-aligned) to
    /// this writer, preserving the exact bit sequence. Used by the
    /// slice-parallel encoder to splice per-row substreams back together
    /// in deterministic order.
    pub fn append(&mut self, other: &BitWriter) {
        if self.pending == 0 {
            self.bytes.extend_from_slice(&other.bytes);
        } else {
            let p = self.pending;
            for &b in &other.bytes {
                // `acc` holds `p` pending bits in its LOW bits; emit a
                // byte made of those bits followed by the top 8-p bits
                // of `b`, keeping b's low p bits as the new remainder.
                self.bytes.push((self.acc << (8 - p)) | (b >> p));
                self.acc = b & ((1u8 << p) - 1);
            }
        }
        if other.pending > 0 {
            self.put_bits(other.acc as u32, other.pending);
        }
    }
}

/// MSB-first bit reader over a byte slice.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    /// Absolute bit cursor.
    pos: u64,
}

impl<'a> BitReader<'a> {
    /// Creates a reader positioned at the first bit of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        BitReader { bytes, pos: 0 }
    }

    /// Bits remaining in the buffer.
    pub fn remaining(&self) -> u64 {
        self.bytes.len() as u64 * 8 - self.pos
    }

    /// Current absolute bit position.
    pub fn position(&self) -> u64 {
        self.pos
    }

    /// Reads one bit.
    ///
    /// # Errors
    ///
    /// [`BitstreamError::UnexpectedEnd`] at end of buffer.
    pub fn get_bit(&mut self) -> Result<bool, BitstreamError> {
        if self.pos >= self.bytes.len() as u64 * 8 {
            return Err(BitstreamError::UnexpectedEnd);
        }
        let byte = self.bytes[(self.pos / 8) as usize];
        let bit = (byte >> (7 - (self.pos % 8))) & 1 == 1;
        self.pos += 1;
        Ok(bit)
    }

    /// Reads `n` bits MSB first.
    ///
    /// # Errors
    ///
    /// [`BitstreamError::UnexpectedEnd`] if fewer than `n` bits remain.
    ///
    /// # Panics
    ///
    /// Panics if `n > 32`.
    pub fn get_bits(&mut self, n: u32) -> Result<u32, BitstreamError> {
        assert!(n <= 32, "cannot read more than 32 bits at once");
        if self.remaining() < n as u64 {
            return Err(BitstreamError::UnexpectedEnd);
        }
        let mut v = 0u32;
        for _ in 0..n {
            v = (v << 1) | self.get_bit()? as u32;
        }
        Ok(v)
    }

    /// Reads an unsigned Exp-Golomb code.
    ///
    /// # Errors
    ///
    /// [`BitstreamError::UnexpectedEnd`] on truncation, or
    /// [`BitstreamError::MalformedExpGolomb`] if the zero prefix exceeds 32
    /// bits (which no writer produces).
    pub fn get_ue(&mut self) -> Result<u32, BitstreamError> {
        let mut zeros = 0u32;
        while !self.get_bit()? {
            zeros += 1;
            if zeros > 32 {
                return Err(BitstreamError::MalformedExpGolomb);
            }
        }
        if zeros == 0 {
            return Ok(0);
        }
        let rest = self.get_bits(zeros)? as u64;
        let x = (1u64 << zeros) | rest;
        Ok((x - 1) as u32)
    }

    /// Reads a signed Exp-Golomb code.
    ///
    /// # Errors
    ///
    /// Same as [`BitReader::get_ue`].
    pub fn get_se(&mut self) -> Result<i32, BitstreamError> {
        let v = self.get_ue()? as i64;
        let abs = (v + 1) / 2;
        Ok(if v % 2 == 1 {
            abs as i32
        } else {
            -(abs as i32)
        })
    }

    /// Skips forward to the next byte boundary (no-op when aligned).
    pub fn align(&mut self) {
        let rem = self.pos % 8;
        if rem != 0 {
            self.pos += 8 - rem;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_roundtrip() {
        let mut w = BitWriter::new();
        w.put_bit(true);
        w.put_bit(false);
        w.put_bits(0b11011, 5);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert!(r.get_bit().unwrap());
        assert!(!r.get_bit().unwrap());
        assert_eq!(r.get_bits(5).unwrap(), 0b11011);
    }

    #[test]
    fn finish_pads_with_zeros() {
        let mut w = BitWriter::new();
        w.put_bits(0b1, 1);
        let bytes = w.finish();
        assert_eq!(bytes, vec![0b1000_0000]);
    }

    #[test]
    fn bit_len_tracks_pending_bits() {
        let mut w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        w.put_bits(0, 3);
        assert_eq!(w.bit_len(), 3);
        w.put_bits(0, 13);
        assert_eq!(w.bit_len(), 16);
    }

    #[test]
    fn ue_known_codewords() {
        // Classic table: 0→"1", 1→"010", 2→"011", 3→"00100".
        let encode = |v: u32| {
            let mut w = BitWriter::new();
            w.put_ue(v);
            (w.bit_len(), w.finish())
        };
        assert_eq!(encode(0), (1, vec![0b1000_0000]));
        assert_eq!(encode(1), (3, vec![0b0100_0000]));
        assert_eq!(encode(2), (3, vec![0b0110_0000]));
        assert_eq!(encode(3), (5, vec![0b0010_0000]));
    }

    #[test]
    fn ue_se_roundtrip_sweep() {
        let mut w = BitWriter::new();
        for v in 0..300u32 {
            w.put_ue(v);
        }
        for v in -150..150i32 {
            w.put_se(v);
        }
        w.put_ue(u32::MAX - 1);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for v in 0..300u32 {
            assert_eq!(r.get_ue().unwrap(), v);
        }
        for v in -150..150i32 {
            assert_eq!(r.get_se().unwrap(), v);
        }
        assert_eq!(r.get_ue().unwrap(), u32::MAX - 1);
    }

    #[test]
    fn reading_past_end_errors() {
        let mut r = BitReader::new(&[0xFF]);
        assert_eq!(r.get_bits(8).unwrap(), 0xFF);
        assert_eq!(r.get_bit(), Err(BitstreamError::UnexpectedEnd));
        assert_eq!(r.get_ue(), Err(BitstreamError::UnexpectedEnd));
    }

    #[test]
    fn malformed_ue_detected() {
        // 40 zero bits: longer than any legal prefix.
        let bytes = vec![0u8; 5];
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.get_ue(), Err(BitstreamError::MalformedExpGolomb));
    }

    #[test]
    fn align_skips_to_byte_boundary() {
        let mut r = BitReader::new(&[0b1010_0000, 0xAB]);
        let _ = r.get_bits(3).unwrap();
        r.align();
        assert_eq!(r.get_bits(8).unwrap(), 0xAB);
        r.align(); // already aligned: no-op
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn put_bits_rejects_oversized_value() {
        let mut w = BitWriter::new();
        w.put_bits(0b100, 2);
    }

    #[test]
    fn finish_into_matches_finish_and_resets() {
        let mut w = BitWriter::new();
        w.put_bits(0b1011, 4);
        w.put_ue(9);
        let expected = w.clone().finish();
        let mut out = vec![0xDE, 0xAD];
        w.finish_into(&mut out);
        assert_eq!(out, expected);
        assert_eq!(w.bit_len(), 0, "writer must be reset");
        w.put_bit(true);
        assert_eq!(w.clone().finish(), vec![0b1000_0000]);
    }

    #[test]
    fn append_is_bit_exact_at_every_alignment() {
        // For every (head, tail) bit-length pair, writing the bits into
        // one writer must equal writing them into two and splicing.
        for head_bits in 0..17u32 {
            for tail_bits in 0..17u32 {
                let mut reference = BitWriter::new();
                let mut head = BitWriter::new();
                let mut tail = BitWriter::new();
                for i in 0..head_bits {
                    let bit = (i * 7 + 3) % 3 == 0;
                    reference.put_bit(bit);
                    head.put_bit(bit);
                }
                for i in 0..tail_bits {
                    let bit = (i * 5 + 1) % 2 == 0;
                    reference.put_bit(bit);
                    tail.put_bit(bit);
                }
                head.append(&tail);
                assert_eq!(head.bit_len(), reference.bit_len());
                assert_eq!(
                    head.finish(),
                    reference.finish(),
                    "mismatch at head={head_bits} tail={tail_bits}"
                );
            }
        }
    }
}
