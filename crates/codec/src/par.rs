//! Per-row scratch for slice-parallel encoding.
//!
//! The staged pipeline (see `Encoder::encode_mbs_staged`) farms rows of
//! macroblocks to a [`pbpair_sched::WorkStealingPool`]; each row job owns
//! one [`RowScratch`] (a private bit writer, reconstruction frame, and
//! operation tally) plus its row's slice of [`MbStage`] entries. Both are
//! persistent encoder state, so steady-state parallel encoding reuses
//! them without reallocating.

use crate::bitstream::BitWriter;
use crate::mb::{MbMode, MotionVector};
use crate::me::MeResult;
use crate::ops::OpCounts;
use pbpair_media::{Frame, Plane, VideoFormat};

/// Everything the staged pipeline records about one macroblock as it
/// moves through the stages.
#[derive(Debug, Clone, Copy)]
pub(crate) struct MbStage {
    /// Stage 1: similarity SAD against the previous original frame.
    pub colocated_sad: u64,
    /// Stage 1: the policy's pre-ME decision.
    pub force_intra: bool,
    /// Stage 2: motion-search result (meaningless when `force_intra`).
    pub me: MeResult,
    /// Stage 2: self-SAD (deviation from the MB mean) for the natural
    /// intra test.
    pub sad_self: u64,
    /// Stage 3: final pre-coding decision — `None` = intra, `Some(mv)` =
    /// inter with this vector (half-pel refinement still pending).
    pub inter_mv: Option<MotionVector>,
    /// Stage 4: the mode the block coder actually produced.
    pub final_mode: MbMode,
    /// Stage 4: integer vector of the coded MB (zero for intra/skip).
    pub final_mv: MotionVector,
    /// Stage 4: SAD of the chosen vector when ME ran (after refinement).
    pub sad_mv: Option<u64>,
    /// Stage 4: bit offset of this MB within its row writer.
    pub bit_start: u64,
    /// Stage 4: bits this MB occupies.
    pub bit_len: u64,
}

impl Default for MbStage {
    fn default() -> Self {
        MbStage {
            colocated_sad: 0,
            force_intra: false,
            me: MeResult {
                mv: MotionVector::ZERO,
                sad: 0,
                cost: 0,
                candidates: 0,
                sad_ops: 0,
            },
            sad_self: 0,
            inter_mv: None,
            final_mode: MbMode::Intra,
            final_mv: MotionVector::ZERO,
            sad_mv: None,
            bit_start: 0,
            bit_len: 0,
        }
    }
}

/// Private working state of one row job.
#[derive(Debug)]
pub(crate) struct RowScratch {
    /// Row-local bitstream; appended to the frame writer in row order.
    pub writer: BitWriter,
    /// Full-size reconstruction frame; only this row's 16-pixel luma band
    /// (8-pixel chroma band) is written, and only that band is copied out.
    pub recon: Frame,
    /// Row-local operation tally, merged in row order.
    pub ops: OpCounts,
    /// Motion searches this row performed.
    pub me_invocations: u32,
    /// Scratch writer for RDE trial coding; untouched when the joint
    /// controller is inactive.
    pub rde_writer: BitWriter,
}

/// Persistent scratch for the staged pipeline, lazily created on the
/// first slice-parallel frame.
#[derive(Debug)]
pub(crate) struct ParScratch {
    /// One entry per macroblock, raster order; rows are handed to jobs
    /// via `chunks_mut(cols)`.
    pub mbs: Vec<MbStage>,
    /// One entry per macroblock row.
    pub rows: Vec<RowScratch>,
}

impl ParScratch {
    pub fn new(format: VideoFormat) -> Self {
        let grid = pbpair_media::MbGrid::new(format);
        ParScratch {
            mbs: vec![MbStage::default(); grid.len()],
            rows: (0..grid.rows())
                .map(|_| RowScratch {
                    writer: BitWriter::new(),
                    recon: Frame::new(format),
                    ops: OpCounts::new(),
                    me_invocations: 0,
                    rde_writer: BitWriter::new(),
                })
                .collect(),
        }
    }
}

fn copy_band(dst: &mut Plane, src: &Plane, y0: usize, h: usize) {
    for y in y0..y0 + h {
        dst.row_mut(y).copy_from_slice(src.row(y));
    }
}

/// Copies macroblock row `mb_row`'s reconstruction band from a row
/// scratch frame into the frame-level reconstruction.
pub(crate) fn copy_row_band(dst: &mut Frame, src: &Frame, mb_row: usize) {
    copy_band(dst.y_mut(), src.y(), mb_row * 16, 16);
    copy_band(dst.cb_mut(), src.cb(), mb_row * 8, 8);
    copy_band(dst.cr_mut(), src.cr(), mb_row * 8, 8);
}
