//! Macroblock coding primitives shared by the serial and slice-parallel
//! encoder paths.
//!
//! These are free functions over explicit references (current frame,
//! prediction reference, output reconstruction, bit writer, op counter)
//! rather than `Encoder` methods, for two reasons: the zero-allocation
//! serial loop needs to borrow disjoint encoder fields simultaneously,
//! and the slice-parallel path calls them from row jobs that only hold
//! shared references to the encoder plus per-row mutable scratch.
//!
//! All coefficient staging lives in fixed stack arrays (`[[i32; 64]; 6]`)
//! — the steady-state encode loop performs no heap allocation here.

use crate::bitstream::BitWriter;
use crate::block::{
    load_block, residual_block, store_block_clamped_with, store_pred, store_pred_plus_residual_with,
};
use crate::blockcode::{block_is_coded, write_coeff_block};
use crate::fused;
use crate::kernels::Kernels;
use crate::mb::{MbMode, SubPelVector};
use crate::mc::{predict_chroma_subpel_with, predict_luma_subpel_with, CHROMA_BLOCK, LUMA_BLOCK};
use crate::ops::OpCounts;
use crate::quant::{dequantize_block, quantize_block, Qp};
use crate::rde::{mc_read_bytes, MB_FOOTPRINT_BYTES};
use crate::vlc;
use crate::zigzag;
use pbpair_media::{Frame, MbIndex};

/// The per-frame coding parameters the block level needs.
#[derive(Debug, Clone, Copy)]
pub(crate) struct BlockCodeCfg {
    pub qp: Qp,
    pub half_pel: bool,
    /// Use the fused `dct→quant→zigzag` kernel ([`fused::fdct_quant_scan`]).
    pub fused: bool,
    /// The pixel-kernel tier every block-level loop dispatches through.
    pub kernels: &'static Kernels,
}

/// Transforms one spatial block into zigzag-ordered levels, via either
/// the fused kernel or the separate three-pass pipeline (bit-identical
/// by construction; `tests/kernel_equiv.rs` proves it). Returns the
/// coded-block flag.
#[inline]
fn transform_block(
    cfg: &BlockCodeCfg,
    spatial: &[i32; 64],
    intra: bool,
    zig: &mut [i32; 64],
    ops: &mut OpCounts,
) -> bool {
    ops.dct_blocks += 1;
    ops.quant_blocks += 1;
    if cfg.fused {
        fused::fdct_quant_scan_with(cfg.kernels, spatial, cfg.qp, intra, zig)
    } else {
        let mut freq = [0i32; 64];
        cfg.kernels.fdct8(spatial, &mut freq);
        let quantized = quantize_block(&freq, cfg.qp, intra);
        *zig = zigzag::scan(&quantized);
        block_is_coded(zig, usize::from(intra))
    }
}

/// Codes one intra macroblock (shared by I-frames and forced-intra MBs
/// of P-frames; the caller writes any COD/mode bits first).
pub(crate) fn code_intra_mb(
    cfg: &BlockCodeCfg,
    w: &mut BitWriter,
    frame: &Frame,
    new_recon: &mut Frame,
    mb: MbIndex,
    ops: &mut OpCounts,
) {
    let (lx, ly) = mb.luma_origin();
    let (cx, cy) = mb.chroma_origin();
    ops.recon_write_bytes += MB_FOOTPRINT_BYTES;
    // Block order: Y0 Y1 Y2 Y3 (raster 8×8 quadrants), Cb, Cr.
    let mut levels = [[0i32; 64]; 6];
    let mut cbp = 0u8;
    for (i, (px, py, plane)) in [
        (lx, ly, frame.y()),
        (lx + 8, ly, frame.y()),
        (lx, ly + 8, frame.y()),
        (lx + 8, ly + 8, frame.y()),
        (cx, cy, frame.cb()),
        (cx, cy, frame.cr()),
    ]
    .into_iter()
    .enumerate()
    {
        let spatial = load_block(plane, px, py);
        if transform_block(cfg, &spatial, true, &mut levels[i], ops) {
            cbp |= 1 << (5 - i);
        }
    }

    vlc::write_cbp(w, cbp);
    for (i, zig) in levels.iter().enumerate() {
        w.put_bits(zig[0].clamp(0, 255) as u32, 8); // intra DC carrier
        if cbp & (1 << (5 - i)) != 0 {
            write_coeff_block(w, zig, 1);
        }
    }

    // Reconstruction (identical to the decoder).
    for (i, zig) in levels.iter().enumerate() {
        let quantized = zigzag::unscan(zig);
        let coefs = dequantize_block(&quantized, cfg.qp, true);
        let mut spatial = [0i32; 64];
        cfg.kernels.idct8(&coefs, &mut spatial);
        ops.dequant_blocks += 1;
        ops.idct_blocks += 1;
        let (dx, dy, plane) = match i {
            0 => (lx, ly, new_recon.y_mut()),
            1 => (lx + 8, ly, new_recon.y_mut()),
            2 => (lx, ly + 8, new_recon.y_mut()),
            3 => (lx + 8, ly + 8, new_recon.y_mut()),
            4 => (cx, cy, new_recon.cb_mut()),
            _ => (cx, cy, new_recon.cr_mut()),
        };
        store_block_clamped_with(cfg.kernels, plane, dx, dy, &spatial);
    }
}

/// Codes one inter macroblock, with automatic demotion to skip when the
/// vector is zero and every block quantizes to nothing. Returns the
/// final mode ([`MbMode::Inter`] or [`MbMode::Skip`]).
#[allow(clippy::too_many_arguments)]
pub(crate) fn code_inter_mb(
    cfg: &BlockCodeCfg,
    w: &mut BitWriter,
    frame: &Frame,
    reference: &Frame,
    new_recon: &mut Frame,
    mb: MbIndex,
    mv: SubPelVector,
    ops: &mut OpCounts,
) -> MbMode {
    let (lx, ly) = mb.luma_origin();
    let (cx, cy) = mb.chroma_origin();

    // Predictions.
    let mut pred_y = [0u8; LUMA_BLOCK * LUMA_BLOCK];
    predict_luma_subpel_with(cfg.kernels, reference.y(), mb, mv, &mut pred_y);
    let mut pred_cb = [0u8; CHROMA_BLOCK * CHROMA_BLOCK];
    let mut pred_cr = [0u8; CHROMA_BLOCK * CHROMA_BLOCK];
    predict_chroma_subpel_with(cfg.kernels, reference.cb(), mb, mv, &mut pred_cb);
    predict_chroma_subpel_with(cfg.kernels, reference.cr(), mb, mv, &mut pred_cr);
    ops.mc_luma_blocks += 1;
    ops.mc_chroma_blocks += 2;
    ops.ref_read_bytes += mc_read_bytes(mv);
    ops.recon_write_bytes += MB_FOOTPRINT_BYTES;

    // Residual transform per block.
    let sub = [(0usize, 0usize), (8, 0), (0, 8), (8, 8)];
    let mut levels = [[0i32; 64]; 6];
    let mut cbp = 0u8;
    for (i, &(sx, sy)) in sub.iter().enumerate() {
        let resid = residual_block(frame.y(), lx + sx, ly + sy, &pred_y, LUMA_BLOCK, sx, sy);
        if transform_block(cfg, &resid, false, &mut levels[i], ops) {
            cbp |= 1 << (5 - i);
        }
    }
    for (i, (plane, pred)) in [(frame.cb(), &pred_cb), (frame.cr(), &pred_cr)]
        .into_iter()
        .enumerate()
    {
        let resid = residual_block(plane, cx, cy, pred, CHROMA_BLOCK, 0, 0);
        if transform_block(cfg, &resid, false, &mut levels[i + 4], ops) {
            cbp |= 1 << (1 - i);
        }
    }

    if mv.is_zero() && cbp == 0 {
        // Skip: single COD bit, reconstruction = colocated copy.
        w.put_bit(true);
        store_pred(
            new_recon.y_mut(),
            lx,
            ly,
            &pred_y,
            LUMA_BLOCK,
            0,
            0,
            LUMA_BLOCK,
        );
        store_pred(
            new_recon.cb_mut(),
            cx,
            cy,
            &pred_cb,
            CHROMA_BLOCK,
            0,
            0,
            CHROMA_BLOCK,
        );
        store_pred(
            new_recon.cr_mut(),
            cx,
            cy,
            &pred_cr,
            CHROMA_BLOCK,
            0,
            0,
            CHROMA_BLOCK,
        );
        return MbMode::Skip;
    }

    w.put_bit(false); // COD = 0
    w.put_bit(false); // inter
    if cfg.half_pel {
        let (hx, hy) = mv.to_half_units();
        vlc::write_mvd(w, hx);
        vlc::write_mvd(w, hy);
    } else {
        vlc::write_mvd(w, mv.int.x);
        vlc::write_mvd(w, mv.int.y);
    }
    vlc::write_cbp(w, cbp);
    for (i, zig) in levels.iter().enumerate() {
        if cbp & (1 << (5 - i)) != 0 {
            write_coeff_block(w, zig, 0);
        }
    }

    // Reconstruction.
    for (i, zig) in levels.iter().enumerate() {
        let coded = cbp & (1 << (5 - i)) != 0;
        let resid = if coded {
            let quantized = zigzag::unscan(zig);
            let coefs = dequantize_block(&quantized, cfg.qp, false);
            let mut spatial = [0i32; 64];
            cfg.kernels.idct8(&coefs, &mut spatial);
            ops.dequant_blocks += 1;
            ops.idct_blocks += 1;
            spatial
        } else {
            [0i32; 64]
        };
        match i {
            0..=3 => {
                let (sx, sy) = sub[i];
                store_pred_plus_residual_with(
                    cfg.kernels,
                    new_recon.y_mut(),
                    lx + sx,
                    ly + sy,
                    &pred_y,
                    LUMA_BLOCK,
                    sx,
                    sy,
                    &resid,
                );
            }
            4 => store_pred_plus_residual_with(
                cfg.kernels,
                new_recon.cb_mut(),
                cx,
                cy,
                &pred_cb,
                CHROMA_BLOCK,
                0,
                0,
                &resid,
            ),
            _ => store_pred_plus_residual_with(
                cfg.kernels,
                new_recon.cr_mut(),
                cx,
                cy,
                &pred_cr,
                CHROMA_BLOCK,
                0,
                0,
                &resid,
            ),
        }
    }
    MbMode::Inter
}

/// Codes one macroblock as an explicit skip: a single COD bit and a
/// colocated (zero-vector) reference copy into the reconstruction. This
/// is what the RDE controller emits when it *chooses* skip outright — it
/// genuinely performs only the copy, unlike the demotion path of
/// [`code_inter_mb`], which discovers the skip after full transform work.
/// Bit-identical on the wire to a demoted skip.
pub(crate) fn code_skip_mb(
    w: &mut BitWriter,
    reference: &Frame,
    new_recon: &mut Frame,
    mb: MbIndex,
    ops: &mut OpCounts,
) -> MbMode {
    let (lx, ly) = mb.luma_origin();
    let (cx, cy) = mb.chroma_origin();
    w.put_bit(true); // COD = 1: skipped
    for y in 0..16 {
        let row = &reference.y().row(ly + y)[lx..lx + 16];
        new_recon.y_mut().row_mut(ly + y)[lx..lx + 16].copy_from_slice(row);
    }
    for y in 0..8 {
        let cb = &reference.cb().row(cy + y)[cx..cx + 8];
        new_recon.cb_mut().row_mut(cy + y)[cx..cx + 8].copy_from_slice(cb);
        let cr = &reference.cr().row(cy + y)[cx..cx + 8];
        new_recon.cr_mut().row_mut(cy + y)[cx..cx + 8].copy_from_slice(cr);
    }
    ops.mc_luma_blocks += 1;
    ops.mc_chroma_blocks += 2;
    ops.ref_read_bytes += MB_FOOTPRINT_BYTES;
    ops.recon_write_bytes += MB_FOOTPRINT_BYTES;
    MbMode::Skip
}
