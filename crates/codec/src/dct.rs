//! Fixed-point 8×8 DCT-II and its inverse.
//!
//! The paper ports its H.263 encoder to fixed-point arithmetic because the
//! target PDAs have no FPU; this module follows suit. The orthonormal DCT
//! basis is precomputed once as Q12 integers (scale 2¹²) and the runtime
//! transform uses only integer multiplies/adds with rounding, exactly like
//! the precomputed-table transforms in embedded codecs.
//!
//! Accuracy: forward+inverse reconstructs 8-bit content within ±1 code
//! (verified by tests and a proptest bound), comfortably below the
//! distortion introduced by quantization.

use std::sync::OnceLock;

/// Number of samples along one side of a transform block.
pub const BLOCK: usize = 8;
/// Samples per 8×8 block.
pub const BLOCK_LEN: usize = BLOCK * BLOCK;

/// Fixed-point fractional bits of the basis matrix.
pub(crate) const Q: i64 = 12;
pub(crate) const HALF: i64 = 1 << (Q - 1);

/// The Q12 orthonormal DCT-II basis: `BASIS[k][n] = α_k cos((2n+1)kπ/16)`.
/// Shared with the fused transform kernel (`crate::fused`), which must
/// multiply by the exact same table to stay bit-identical.
pub(crate) fn basis() -> &'static [[i32; BLOCK]; BLOCK] {
    static B: OnceLock<[[i32; BLOCK]; BLOCK]> = OnceLock::new();
    B.get_or_init(|| {
        let mut m = [[0i32; BLOCK]; BLOCK];
        for (k, row) in m.iter_mut().enumerate() {
            let alpha = if k == 0 {
                (1.0f64 / BLOCK as f64).sqrt()
            } else {
                (2.0f64 / BLOCK as f64).sqrt()
            };
            for (n, cell) in row.iter_mut().enumerate() {
                let c = alpha * ((2 * n + 1) as f64 * k as f64 * std::f64::consts::PI / 16.0).cos();
                *cell = (c * (1 << Q) as f64).round() as i32;
            }
        }
        m
    })
}

/// Forward 8×8 DCT of a row-major block of spatial samples (typically
/// residuals in `-255..=255` or level-shifted pixels). Output coefficients
/// are in natural (row-major frequency) order.
///
/// # Panics
///
/// Panics if the slices are not 64 elements long.
pub fn forward(input: &[i32; BLOCK_LEN], output: &mut [i32; BLOCK_LEN]) {
    let b = basis();
    // Rows: tmp = input · Bᵀ  (1-D DCT of each row)
    let mut tmp = [0i64; BLOCK_LEN];
    for y in 0..BLOCK {
        for k in 0..BLOCK {
            let mut acc = 0i64;
            for n in 0..BLOCK {
                acc += input[y * BLOCK + n] as i64 * b[k][n] as i64;
            }
            tmp[y * BLOCK + k] = (acc + HALF) >> Q;
        }
    }
    // Columns: out = B · tmp  (1-D DCT of each column)
    for k in 0..BLOCK {
        for x in 0..BLOCK {
            let mut acc = 0i64;
            for n in 0..BLOCK {
                acc += b[k][n] as i64 * tmp[n * BLOCK + x];
            }
            output[k * BLOCK + x] = ((acc + HALF) >> Q) as i32;
        }
    }
}

/// Inverse 8×8 DCT. The output is the reconstructed spatial block.
///
/// # Panics
///
/// Panics if the slices are not 64 elements long.
pub fn inverse(input: &[i32; BLOCK_LEN], output: &mut [i32; BLOCK_LEN]) {
    let b = basis();
    // Rows: tmp = input · B (inverse 1-D along rows; B orthonormal ⇒ B⁻¹ = Bᵀ)
    let mut tmp = [0i64; BLOCK_LEN];
    for y in 0..BLOCK {
        for n in 0..BLOCK {
            let mut acc = 0i64;
            for k in 0..BLOCK {
                acc += input[y * BLOCK + k] as i64 * b[k][n] as i64;
            }
            tmp[y * BLOCK + n] = (acc + HALF) >> Q;
        }
    }
    // Columns: out = Bᵀ · tmp
    for n in 0..BLOCK {
        for x in 0..BLOCK {
            let mut acc = 0i64;
            for k in 0..BLOCK {
                acc += b[k][n] as i64 * tmp[k * BLOCK + x];
            }
            output[n * BLOCK + x] = ((acc + HALF) >> Q) as i32;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_error(block: &[i32; BLOCK_LEN]) -> i32 {
        let mut freq = [0i32; BLOCK_LEN];
        let mut back = [0i32; BLOCK_LEN];
        forward(block, &mut freq);
        inverse(&freq, &mut back);
        block
            .iter()
            .zip(&back)
            .map(|(a, b)| (a - b).abs())
            .max()
            .unwrap()
    }

    #[test]
    fn flat_block_transforms_to_pure_dc() {
        let block = [100i32; BLOCK_LEN];
        let mut freq = [0i32; BLOCK_LEN];
        forward(&block, &mut freq);
        // DC of a flat block of value v is 8·v for the orthonormal DCT.
        assert!((freq[0] - 800).abs() <= 1, "dc = {}", freq[0]);
        for (i, &c) in freq.iter().enumerate().skip(1) {
            assert!(c.abs() <= 1, "ac[{i}] = {c}");
        }
    }

    #[test]
    fn roundtrip_on_gradient_is_tight() {
        let mut block = [0i32; BLOCK_LEN];
        for y in 0..BLOCK {
            for x in 0..BLOCK {
                block[y * BLOCK + x] = (x * 20 + y * 7) as i32 - 80;
            }
        }
        assert!(roundtrip_error(&block) <= 1);
    }

    #[test]
    fn roundtrip_on_extremes_is_tight() {
        let mut block = [0i32; BLOCK_LEN];
        for (i, b) in block.iter_mut().enumerate() {
            *b = if i % 2 == 0 { 255 } else { -255 };
        }
        assert!(roundtrip_error(&block) <= 2);
    }

    #[test]
    fn impulse_spreads_and_reconstructs() {
        let mut block = [0i32; BLOCK_LEN];
        block[27] = 200;
        assert!(roundtrip_error(&block) <= 1);
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let mut block = [0i32; BLOCK_LEN];
        for (i, b) in block.iter_mut().enumerate() {
            *b = ((i * 37) % 256) as i32 - 128;
        }
        let mut freq = [0i32; BLOCK_LEN];
        forward(&block, &mut freq);
        let e_spatial: i64 = block.iter().map(|&v| (v as i64) * (v as i64)).sum();
        let e_freq: i64 = freq.iter().map(|&v| (v as i64) * (v as i64)).sum();
        let ratio = e_freq as f64 / e_spatial as f64;
        assert!(
            (0.98..1.02).contains(&ratio),
            "orthonormal transform must preserve energy: {ratio}"
        );
    }

    #[test]
    fn linearity() {
        let mut a = [0i32; BLOCK_LEN];
        let mut b = [0i32; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            a[i] = (i as i32 % 17) - 8;
            b[i] = (i as i32 % 5) * 3;
        }
        let sum: [i32; BLOCK_LEN] = std::array::from_fn(|i| a[i] + b[i]);
        let mut fa = [0i32; BLOCK_LEN];
        let mut fb = [0i32; BLOCK_LEN];
        let mut fsum = [0i32; BLOCK_LEN];
        forward(&a, &mut fa);
        forward(&b, &mut fb);
        forward(&sum, &mut fsum);
        for i in 0..BLOCK_LEN {
            assert!(
                (fsum[i] - fa[i] - fb[i]).abs() <= 2,
                "linearity violated at {i} beyond rounding"
            );
        }
    }
}
