//! Serialization of quantized coefficient blocks as (LAST, RUN, LEVEL)
//! event streams.

use crate::bitstream::{BitReader, BitWriter, BitstreamError};
use crate::dct::BLOCK_LEN;
use crate::vlc::{read_tcoef, write_tcoef, TcoefEvent};

/// Whether any coefficient at or after `first` is non-zero — decides the
/// block's coded-block-pattern bit.
pub fn block_is_coded(zig: &[i32; BLOCK_LEN], first: usize) -> bool {
    zig[first..].iter().any(|&c| c != 0)
}

/// Writes the coefficients `zig[first..]` (zigzag order) as TCOEF events.
/// Intra blocks pass `first = 1` (the DC travels separately); inter blocks
/// pass `first = 0`.
///
/// # Panics
///
/// Panics if the range holds no non-zero coefficient (the caller must
/// check [`block_is_coded`] and clear the cbp bit instead).
pub fn write_coeff_block(w: &mut BitWriter, zig: &[i32; BLOCK_LEN], first: usize) {
    let last_nz = zig[first..]
        .iter()
        .rposition(|&c| c != 0)
        .map(|p| p + first)
        .expect("write_coeff_block requires a coded block");
    let mut run = 0u8;
    for (i, &c) in zig.iter().enumerate().take(last_nz + 1).skip(first) {
        if c == 0 {
            run += 1;
            continue;
        }
        write_tcoef(
            w,
            TcoefEvent {
                last: i == last_nz,
                run,
                level: c.clamp(i32::from(i16::MIN), i32::from(i16::MAX)) as i16,
            },
        );
        run = 0;
    }
}

/// Reads TCOEF events into a zigzag-order block starting at `first`.
/// Coefficients before `first` are zero.
///
/// # Errors
///
/// Propagates bitstream errors; a run that walks past the end of the
/// block is reported as corruption.
pub fn read_coeff_block(
    r: &mut BitReader<'_>,
    first: usize,
) -> Result<[i32; BLOCK_LEN], BitstreamError> {
    let mut zig = [0i32; BLOCK_LEN];
    let mut pos = first;
    loop {
        let ev = read_tcoef(r)?;
        pos += ev.run as usize;
        if pos >= BLOCK_LEN {
            return Err(BitstreamError::ValueOutOfRange {
                what: "TCOEF run past end of block",
                value: pos as i64,
            });
        }
        zig[pos] = ev.level as i32;
        pos += 1;
        if ev.last {
            return Ok(zig);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(zig: [i32; BLOCK_LEN], first: usize) {
        let mut w = BitWriter::new();
        write_coeff_block(&mut w, &zig, first);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        let got = read_coeff_block(&mut r, first).unwrap();
        assert_eq!(got, zig);
    }

    #[test]
    fn single_dc_coefficient() {
        let mut zig = [0i32; BLOCK_LEN];
        zig[0] = -5;
        roundtrip(zig, 0);
    }

    #[test]
    fn trailing_coefficient_at_position_63() {
        let mut zig = [0i32; BLOCK_LEN];
        zig[0] = 3;
        zig[63] = 1; // forces a long (escaped) run
        roundtrip(zig, 0);
    }

    #[test]
    fn lone_coefficient_at_position_63_has_run_63() {
        // The maximum legal run: 63 zeros then one coefficient. This is a
        // regression test — an earlier decoder bound rejected run = 63.
        let mut zig = [0i32; BLOCK_LEN];
        zig[63] = -1;
        roundtrip(zig, 0);
    }

    #[test]
    fn dense_block() {
        let zig: [i32; BLOCK_LEN] =
            std::array::from_fn(|i| if i % 3 == 0 { (i as i32 % 11) - 5 } else { 0 });
        // ensure at least one non-zero in range
        let mut zig = zig;
        zig[1] = 7;
        roundtrip(zig, 0);
        // With first = 1 the DC slot is not serialized; it reads back as 0.
        zig[0] = 0;
        roundtrip(zig, 1);
    }

    #[test]
    fn intra_first_one_skips_dc_slot() {
        let mut zig = [0i32; BLOCK_LEN];
        zig[0] = 999; // DC: must NOT be serialized with first = 1
        zig[2] = 4;
        let mut w = BitWriter::new();
        write_coeff_block(&mut w, &zig, 1);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        let got = read_coeff_block(&mut r, 1).unwrap();
        assert_eq!(got[0], 0);
        assert_eq!(got[2], 4);
    }

    #[test]
    fn large_levels_escape_and_roundtrip() {
        let mut zig = [0i32; BLOCK_LEN];
        zig[0] = 2000;
        zig[5] = -2000;
        roundtrip(zig, 0);
    }

    #[test]
    #[should_panic(expected = "requires a coded block")]
    fn empty_block_is_a_caller_bug() {
        let zig = [0i32; BLOCK_LEN];
        let mut w = BitWriter::new();
        write_coeff_block(&mut w, &zig, 0);
    }

    #[test]
    fn corrupt_run_detected() {
        // Event with run 50 at position 20 walks past 64.
        let mut w = BitWriter::new();
        write_tcoef(
            &mut w,
            TcoefEvent {
                last: false,
                run: 20,
                level: 1,
            },
        );
        write_tcoef(
            &mut w,
            TcoefEvent {
                last: true,
                run: 50,
                level: 1,
            },
        );
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert!(matches!(
            read_coeff_block(&mut r, 0),
            Err(BitstreamError::ValueOutOfRange { .. })
        ));
    }
}
