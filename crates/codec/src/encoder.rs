//! The hybrid video encoder.
//!
//! Pipeline per P-frame macroblock (Figure 1 of the paper):
//!
//! 1. **pre-ME mode selection** — the policy may force intra and skip the
//!    search entirely (PBPAIR's early decision);
//! 2. **motion estimation** — biased cost search
//!    (`SAD + policy.me_bias(mv)`);
//! 3. **natural inter/intra test** — intra when
//!    `SAD_mv > SAD_self + intra_bias` (the paper's
//!    `SAD_mv − SAD_Th > SAD_self` test);
//! 4. **post-ME override** — the policy may still force intra (AIR,
//!    PGOP stride-back);
//! 5. transform / quantize / entropy-code, plus an in-loop reconstruction
//!    identical to the decoder's.
//!
//! All primitive operations are tallied in an [`OpCounts`], the input to
//! the energy model.

use crate::bitstream::BitWriter;
use crate::block::{
    load_block, residual_block, store_block_clamped, store_pred, store_pred_plus_residual,
};
use crate::blockcode::{block_is_coded, write_coeff_block};
use crate::dct;
use crate::mb::{FrameStats, MbMode, MotionVector, SubPelVector};
use crate::mc::{predict_chroma_subpel, predict_luma_subpel, CHROMA_BLOCK, LUMA_BLOCK};
use crate::me::{self, MeConfig};
use crate::ops::OpCounts;
use crate::policy::{
    FrameContext, FrameKind, MbContext, MbOutcome, PostMeDecision, PreMeDecision, RefreshPolicy,
};
use crate::quant::{dequantize_block, quantize_block, Qp};
use crate::vlc;
use crate::zigzag;
use pbpair_media::{Frame, MbGrid, MbIndex, VideoFormat};
use pbpair_telemetry::{Counter, Histogram, Stage, Telemetry};
use pbpair_trace::{event as trace_event, Event as TraceEvent, Tracer};
use serde::{Deserialize, Serialize};

/// The 17-bit picture start code (16 zeros and a one, H.263 style).
pub const PICTURE_START_CODE: u32 = 1;
/// Bits in the picture start code.
pub const PICTURE_START_CODE_LEN: u32 = 17;

/// Encoder configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EncoderConfig {
    /// Picture format of every input frame.
    pub format: VideoFormat,
    /// Quantization parameter used for all frames.
    pub qp: Qp,
    /// Motion-search configuration.
    pub me: MeConfig,
    /// The paper's `SAD_Th`: inter is kept only while
    /// `SAD_mv ≤ SAD_self + intra_bias`. Larger values favor inter.
    pub intra_bias: u32,
    /// Half-pixel motion precision (H.263's default). When set, the
    /// integer search winner is refined over its 8 half-pel neighbours
    /// and vectors travel in half-pel units. The flag is carried in every
    /// picture header so the decoder follows automatically. The paper
    /// experiments keep this off (integer precision) so refresh-scheme
    /// comparisons stay on the configuration DESIGN.md documents.
    pub half_pel: bool,
    /// In-loop deblocking filter (see [`crate::deblock`]). Carried in the
    /// picture header; off in all paper experiments.
    pub deblock: bool,
}

impl Default for EncoderConfig {
    /// QCIF, QP 8, ±15 three-step search, `SAD_Th` = 500 (the H.263 TMN
    /// convention).
    fn default() -> Self {
        EncoderConfig {
            format: VideoFormat::QCIF,
            qp: Qp::default(),
            me: MeConfig::default(),
            intra_bias: 500,
            half_pel: false,
            deblock: false,
        }
    }
}

impl EncoderConfig {
    /// The paper's configuration: like [`EncoderConfig::default`] but
    /// with exhaustive ±15 full-search motion estimation, matching the
    /// reference H.263 TMN encoder the paper builds on. This is what the
    /// figure-regeneration experiments use; it makes ME ≈95% of the
    /// encoding energy, the regime in which the paper's energy numbers
    /// live.
    pub fn paper() -> Self {
        EncoderConfig {
            me: MeConfig {
                search_range: 15,
                strategy: crate::me::SearchStrategy::Full,
            },
            ..EncoderConfig::default()
        }
    }
}

/// One encoded frame: the bitstream plus side statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EncodedFrame {
    /// 0-based frame index (also carried in the picture header mod 256).
    pub index: u64,
    /// Frame coding type.
    pub kind: FrameKind,
    /// The encoded bitstream, byte-aligned.
    pub data: Vec<u8>,
    /// Per-frame statistics.
    pub stats: FrameStats,
    /// Final mode of each macroblock in raster order (diagnostic side
    /// info; not part of the bitstream).
    pub mb_modes: Vec<MbMode>,
}

/// The encoder. Owns the reconstruction loop (its reference frame is the
/// decoder's output for a loss-free channel, bit-exactly).
///
/// # Example
///
/// ```rust
/// use pbpair_codec::{Encoder, EncoderConfig, NaturalPolicy};
/// use pbpair_media::synth::SyntheticSequence;
///
/// let mut enc = Encoder::new(EncoderConfig::default());
/// let mut policy = NaturalPolicy::new();
/// let mut seq = SyntheticSequence::akiyo_class(1);
/// let encoded = enc.encode_frame(&seq.next_frame(), &mut policy);
/// assert!(!encoded.data.is_empty());
/// assert_eq!(encoded.stats.total_mbs(), 99);
/// ```
#[derive(Debug)]
pub struct Encoder {
    cfg: EncoderConfig,
    grid: MbGrid,
    /// Reconstructed previous frame (the prediction reference).
    recon: Frame,
    /// Original previous frame (similarity measurements).
    prev_original: Frame,
    frame_index: u64,
    ops: OpCounts,
    /// ME searches performed in the frame currently being encoded.
    frame_me_invocations: u32,
    /// Pre-resolved telemetry handles; `None` until
    /// [`Encoder::set_telemetry`] attaches an enabled context. The
    /// flush is one batch of atomic adds per *frame*, so the per-MB hot
    /// loop carries no instrumentation cost at all.
    tel: Option<EncoderTelemetry>,
    /// Trace handle; `None` until [`Encoder::set_tracer`] attaches an
    /// enabled tracer. When attached, every macroblock's coding
    /// decision (mode, motion vector, bitstream range) is recorded as
    /// provenance for the causal replay pass.
    trace: Option<Tracer>,
    /// Integer-pel motion vector of the most recently coded inter MB,
    /// stashed by `code_p_mb` for the provenance event.
    last_mb_mv: MotionVector,
}

/// Telemetry handles the encoder flushes once per encoded frame. All
/// quantities are deterministic (mode counts, bits, operation tallies),
/// so instrumented runs reproduce byte-identically.
#[derive(Debug)]
struct EncoderTelemetry {
    /// Stage `"encode"`; virtual units = SAD absolute-difference ops,
    /// the paper's dominant energy term.
    stage: Stage,
    frames: Counter,
    mbs_intra: Counter,
    mbs_inter: Counter,
    mbs_skip: Counter,
    /// ME searches performed.
    me_searches: Counter,
    /// P-frame macroblocks coded without a search — PBPAIR's savings.
    me_skipped: Counter,
    sad_ops: Counter,
    bits: Counter,
    bits_intra: Counter,
    bits_inter: Counter,
    bits_skip: Counter,
    /// Per-frame quantizer levels (QP is 1..=31).
    frame_qp: Histogram,
    /// Per-frame encoded sizes in bits.
    frame_bits: Histogram,
}

impl EncoderTelemetry {
    fn new(tel: &Telemetry) -> Self {
        EncoderTelemetry {
            stage: tel.stage("encode"),
            frames: tel.counter("enc.frames"),
            mbs_intra: tel.counter("enc.mbs_intra"),
            mbs_inter: tel.counter("enc.mbs_inter"),
            mbs_skip: tel.counter("enc.mbs_skip"),
            me_searches: tel.counter("enc.me_searches"),
            me_skipped: tel.counter("enc.me_skipped"),
            sad_ops: tel.counter("enc.sad_ops"),
            bits: tel.counter("enc.bits"),
            bits_intra: tel.counter("enc.bits_intra"),
            bits_inter: tel.counter("enc.bits_inter"),
            bits_skip: tel.counter("enc.bits_skip"),
            frame_qp: tel.histogram("enc.frame_qp", &[2, 4, 8, 12, 16, 22, 31]),
            frame_bits: tel.histogram(
                "enc.frame_bits",
                &[2_000, 8_000, 20_000, 50_000, 100_000, 250_000],
            ),
        }
    }
}

impl Encoder {
    /// Creates an encoder; the first frame passed to
    /// [`Encoder::encode_frame`] is always coded intra.
    pub fn new(cfg: EncoderConfig) -> Self {
        Encoder {
            cfg,
            grid: MbGrid::new(cfg.format),
            recon: Frame::new(cfg.format),
            prev_original: Frame::new(cfg.format),
            frame_index: 0,
            ops: OpCounts::new(),
            frame_me_invocations: 0,
            tel: None,
            trace: None,
            last_mb_mv: MotionVector::ZERO,
        }
    }

    /// Attaches a telemetry context; subsequent frames flush their
    /// deterministic per-frame statistics into it (`enc.*` metrics and
    /// the `"encode"` stage). A disabled context detaches.
    pub fn set_telemetry(&mut self, tel: &Telemetry) {
        self.tel = tel.is_enabled().then(|| EncoderTelemetry::new(tel));
    }

    /// Attaches a tracer; subsequent frames record per-MB provenance
    /// events (mode, motion vector, bitstream bit range). A disabled
    /// tracer detaches.
    pub fn set_tracer(&mut self, tracer: &Tracer) {
        self.trace = tracer.is_enabled().then(|| tracer.clone());
    }

    /// The configuration in effect.
    pub fn config(&self) -> &EncoderConfig {
        &self.cfg
    }

    /// Changes the quantizer for subsequent frames — the hook a rate
    /// controller ([`crate::rate::RateController`]) drives. The QP is
    /// carried per frame in the picture header, so the decoder follows
    /// automatically.
    pub fn set_qp(&mut self, qp: Qp) {
        self.cfg.qp = qp;
    }

    /// Cumulative operation counts since construction (or the last
    /// [`Encoder::take_ops`]).
    pub fn ops(&self) -> &OpCounts {
        &self.ops
    }

    /// Returns and resets the cumulative operation counts.
    pub fn take_ops(&mut self) -> OpCounts {
        std::mem::take(&mut self.ops)
    }

    /// The encoder's current reconstructed reference frame (what a
    /// loss-free decoder would display for the last encoded frame).
    pub fn reconstructed(&self) -> &Frame {
        &self.recon
    }

    /// Index the next encoded frame will get.
    pub fn next_frame_index(&self) -> u64 {
        self.frame_index
    }

    /// Encodes one frame under the given refresh policy.
    ///
    /// # Panics
    ///
    /// Panics if `frame`'s format differs from the configured format.
    pub fn encode_frame(&mut self, frame: &Frame, policy: &mut dyn RefreshPolicy) -> EncodedFrame {
        assert_eq!(
            frame.format(),
            self.cfg.format,
            "frame format does not match encoder configuration"
        );
        let ops_at_entry = self.ops;
        let span = self.tel.as_ref().map(|t| t.stage.span());
        let fctx = FrameContext {
            frame_index: self.frame_index,
            format: self.cfg.format,
            mb_count: self.grid.len(),
        };
        let kind = if self.frame_index == 0 {
            FrameKind::Intra
        } else {
            policy.begin_frame(&fctx)
        };

        let mut w = BitWriter::new();
        w.put_bits(PICTURE_START_CODE, PICTURE_START_CODE_LEN);
        w.put_bits((self.frame_index & 0xFF) as u32, 8);
        w.put_bit(kind == FrameKind::Inter);
        w.put_bits(self.cfg.qp.get() as u32, 5);
        w.put_bit(self.cfg.half_pel);
        w.put_bit(self.cfg.deblock);
        // Source format: 2-bit code for the standard sizes, escape code 3
        // followed by the dimensions in macroblock units. The decoder
        // validates this against its configured format instead of
        // silently mis-parsing a stream of the wrong size.
        match self.cfg.format {
            VideoFormat::SQCIF => w.put_bits(0, 2),
            VideoFormat::QCIF => w.put_bits(1, 2),
            VideoFormat::CIF => w.put_bits(2, 2),
            custom => {
                w.put_bits(3, 2);
                w.put_bits(custom.mb_cols() as u32, 8);
                w.put_bits(custom.mb_rows() as u32, 8);
            }
        }

        let mut new_recon = Frame::new(self.cfg.format);
        let mut stats = FrameStats::default();
        let mut mb_modes = Vec::with_capacity(self.grid.len());

        for mb in self.grid.iter().collect::<Vec<_>>() {
            let mb_bits_before = w.bit_len();
            let mode = match kind {
                FrameKind::Intra => {
                    self.code_intra_mb(&mut w, frame, &mut new_recon, mb);
                    // Policies observe I-frame macroblocks too (GOP resets
                    // its cycle; PBPAIR refreshes its matrix). The
                    // colocated SAD is computed as for P-frames; for frame
                    // 0 the previous original is black, so similarity-based
                    // policies correctly see "nothing to conceal from".
                    let (ox, oy) = mb.luma_origin();
                    let colocated_sad = frame.y().sad_colocated(
                        self.prev_original.y(),
                        ox,
                        oy,
                        LUMA_BLOCK,
                        LUMA_BLOCK,
                    );
                    self.ops.sad_ops += 256;
                    policy.mb_coded(
                        &fctx,
                        &MbOutcome {
                            mb,
                            mode: MbMode::Intra,
                            mv: MotionVector::ZERO,
                            sad_mv: None,
                            me_performed: false,
                            colocated_sad,
                        },
                    );
                    MbMode::Intra
                }
                FrameKind::Inter => {
                    self.code_p_mb(&mut w, frame, &mut new_recon, mb, policy, &fctx)
                }
            };
            let mb_bits = w.bit_len() - mb_bits_before;
            if let Some(t) = &self.trace {
                let (mode_code, mv) = match mode {
                    MbMode::Intra => (trace_event::MODE_INTRA, MotionVector::ZERO),
                    MbMode::Inter => (trace_event::MODE_INTER, self.last_mb_mv),
                    MbMode::Skip => (trace_event::MODE_SKIP, MotionVector::ZERO),
                };
                t.emit(TraceEvent::MbCoded {
                    frame: self.frame_index as u32,
                    mb: self.grid.flat_index(mb) as u16,
                    mode: mode_code,
                    mv_x: mv.x,
                    mv_y: mv.y,
                    bit_start: mb_bits_before as u32,
                    bit_len: mb_bits as u32,
                });
            }
            match mode {
                MbMode::Intra => {
                    stats.intra_mbs += 1;
                    stats.intra_bits += mb_bits;
                }
                MbMode::Inter => {
                    stats.inter_mbs += 1;
                    stats.inter_bits += mb_bits;
                }
                MbMode::Skip => {
                    stats.skip_mbs += 1;
                    stats.skip_bits += mb_bits;
                }
            }
            mb_modes.push(mode);
        }

        if self.cfg.deblock {
            crate::deblock::deblock_frame(&mut new_recon, self.cfg.qp);
        }

        stats.bits = w.bit_len();
        stats.me_invocations = self.frame_me_invocations;
        self.frame_me_invocations = 0;

        let data = w.finish();
        self.ops.frames += 1;
        self.ops.intra_mbs += stats.intra_mbs as u64;
        self.ops.inter_mbs += stats.inter_mbs as u64;
        self.ops.skip_mbs += stats.skip_mbs as u64;
        self.ops.bits_emitted += stats.bits;

        policy.end_frame(&fctx, &stats);

        if let Some(t) = &self.tel {
            let frame_ops = self.ops - ops_at_entry;
            t.frames.inc(1);
            t.mbs_intra.inc(stats.intra_mbs as u64);
            t.mbs_inter.inc(stats.inter_mbs as u64);
            t.mbs_skip.inc(stats.skip_mbs as u64);
            t.me_searches.inc(stats.me_invocations as u64);
            if kind == FrameKind::Inter {
                t.me_skipped
                    .inc(self.grid.len() as u64 - stats.me_invocations as u64);
            }
            t.sad_ops.inc(frame_ops.sad_ops);
            t.bits.inc(stats.bits);
            t.bits_intra.inc(stats.intra_bits);
            t.bits_inter.inc(stats.inter_bits);
            t.bits_skip.inc(stats.skip_bits);
            t.frame_qp.record(self.cfg.qp.get() as u64);
            t.frame_bits.record(stats.bits);
            if let Some(mut span) = span {
                span.add_units(frame_ops.sad_ops);
            }
        }

        self.recon = new_recon;
        self.prev_original = frame.clone();
        let index = self.frame_index;
        self.frame_index += 1;

        EncodedFrame {
            index,
            kind,
            data,
            stats,
            mb_modes,
        }
    }
}

// The per-frame ME counter lives on the struct to avoid threading it
// through every call; it is reset at each frame end.
impl Encoder {
    fn code_p_mb(
        &mut self,
        w: &mut BitWriter,
        frame: &Frame,
        new_recon: &mut Frame,
        mb: MbIndex,
        policy: &mut dyn RefreshPolicy,
        fctx: &FrameContext,
    ) -> MbMode {
        let (ox, oy) = mb.luma_origin();
        // Content-similarity measurement (SAD against the colocated MB of
        // the previous original frame); one 256-op SAD, charged uniformly.
        let colocated_sad =
            frame
                .y()
                .sad_colocated(self.prev_original.y(), ox, oy, LUMA_BLOCK, LUMA_BLOCK);
        self.ops.sad_ops += 256;

        let ctx = MbContext {
            frame_index: self.frame_index,
            mb,
            cur_luma: frame.y(),
            ref_luma: self.recon.y(),
            colocated_sad,
        };

        let pre = policy.pre_me_mode(&ctx);
        let (mode, mv, sad_mv, me_performed) = if pre == PreMeDecision::ForceIntra {
            (MbMode::Intra, SubPelVector::ZERO, None, false)
        } else {
            let me_result = me::search(frame.y(), self.recon.y(), mb, self.cfg.me, &mut |mv| {
                policy.me_bias(&ctx, mv)
            });
            self.ops.me_invocations += 1;
            self.frame_me_invocations += 1;
            self.ops.sad_candidates += me_result.candidates as u64;
            self.ops.sad_ops += me_result.sad_ops;

            let sad_self = me::sad_self(frame.y(), mb);
            self.ops.sad_ops += 512; // mean + deviation pass
            let natural_intra = me_result.sad > sad_self + self.cfg.intra_bias as u64;
            let post = policy.post_me_mode(&ctx, &me_result);
            if natural_intra || post == PostMeDecision::ForceIntra {
                (MbMode::Intra, SubPelVector::ZERO, Some(me_result.sad), true)
            } else if self.cfg.half_pel {
                let refined =
                    me::refine_half_pel(frame.y(), self.recon.y(), mb, me_result.mv, me_result.sad);
                self.ops.sad_ops += refined.sad_ops;
                (MbMode::Inter, refined.mv, Some(refined.sad), true)
            } else {
                (
                    MbMode::Inter,
                    SubPelVector::integer(me_result.mv),
                    Some(me_result.sad),
                    true,
                )
            }
        };

        let final_mode = match mode {
            MbMode::Intra => {
                w.put_bit(false); // COD = 0: coded
                w.put_bit(true); // intra
                self.code_intra_mb(w, frame, new_recon, mb);
                MbMode::Intra
            }
            _ => self.code_inter_mb(w, frame, new_recon, mb, mv),
        };

        let outcome_mv = if final_mode == MbMode::Inter {
            mv.int
        } else {
            MotionVector::ZERO
        };
        self.last_mb_mv = outcome_mv;
        policy.mb_coded(
            fctx,
            &MbOutcome {
                mb,
                mode: final_mode,
                mv: outcome_mv,
                sad_mv,
                me_performed,
                colocated_sad,
            },
        );
        final_mode
    }

    /// Codes one intra macroblock (shared by I-frames and forced-intra MBs
    /// of P-frames; the caller writes any COD/mode bits first).
    fn code_intra_mb(
        &mut self,
        w: &mut BitWriter,
        frame: &Frame,
        new_recon: &mut Frame,
        mb: MbIndex,
    ) {
        let (lx, ly) = mb.luma_origin();
        let (cx, cy) = mb.chroma_origin();
        // Block order: Y0 Y1 Y2 Y3 (raster 8×8 quadrants), Cb, Cr.
        let mut levels: Vec<[i32; 64]> = Vec::with_capacity(6);
        let mut cbp = 0u8;
        for (i, (px, py, plane)) in [
            (lx, ly, frame.y()),
            (lx + 8, ly, frame.y()),
            (lx, ly + 8, frame.y()),
            (lx + 8, ly + 8, frame.y()),
            (cx, cy, frame.cb()),
            (cx, cy, frame.cr()),
        ]
        .into_iter()
        .enumerate()
        {
            let spatial = load_block(plane, px, py);
            let mut freq = [0i32; 64];
            dct::forward(&spatial, &mut freq);
            let quantized = quantize_block(&freq, self.cfg.qp, true);
            let zig = zigzag::scan(&quantized);
            if block_is_coded(&zig, 1) {
                cbp |= 1 << (5 - i);
            }
            levels.push(zig);
            self.ops.dct_blocks += 1;
            self.ops.quant_blocks += 1;
        }

        vlc::write_cbp(w, cbp);
        for (i, zig) in levels.iter().enumerate() {
            w.put_bits(zig[0].clamp(0, 255) as u32, 8); // intra DC carrier
            if cbp & (1 << (5 - i)) != 0 {
                write_coeff_block(w, zig, 1);
            }
        }

        // Reconstruction (identical to the decoder).
        for (i, zig) in levels.iter().enumerate() {
            let quantized = zigzag::unscan(zig);
            let coefs = dequantize_block(&quantized, self.cfg.qp, true);
            let mut spatial = [0i32; 64];
            dct::inverse(&coefs, &mut spatial);
            self.ops.dequant_blocks += 1;
            self.ops.idct_blocks += 1;
            let (dx, dy, plane) = match i {
                0 => (lx, ly, new_recon.y_mut()),
                1 => (lx + 8, ly, new_recon.y_mut()),
                2 => (lx, ly + 8, new_recon.y_mut()),
                3 => (lx + 8, ly + 8, new_recon.y_mut()),
                4 => (cx, cy, new_recon.cb_mut()),
                _ => (cx, cy, new_recon.cr_mut()),
            };
            store_block_clamped(plane, dx, dy, &spatial);
        }
    }

    /// Codes one inter macroblock, with automatic demotion to skip when
    /// the vector is zero and every block quantizes to nothing. Returns
    /// the final mode ([`MbMode::Inter`] or [`MbMode::Skip`]).
    fn code_inter_mb(
        &mut self,
        w: &mut BitWriter,
        frame: &Frame,
        new_recon: &mut Frame,
        mb: MbIndex,
        mv: SubPelVector,
    ) -> MbMode {
        let (lx, ly) = mb.luma_origin();
        let (cx, cy) = mb.chroma_origin();

        // Predictions.
        let mut pred_y = [0u8; LUMA_BLOCK * LUMA_BLOCK];
        predict_luma_subpel(self.recon.y(), mb, mv, &mut pred_y);
        let mut pred_cb = [0u8; CHROMA_BLOCK * CHROMA_BLOCK];
        let mut pred_cr = [0u8; CHROMA_BLOCK * CHROMA_BLOCK];
        predict_chroma_subpel(self.recon.cb(), mb, mv, &mut pred_cb);
        predict_chroma_subpel(self.recon.cr(), mb, mv, &mut pred_cr);
        self.ops.mc_luma_blocks += 1;
        self.ops.mc_chroma_blocks += 2;

        // Residual transform per block.
        let sub = [(0usize, 0usize), (8, 0), (0, 8), (8, 8)];
        let mut levels: Vec<[i32; 64]> = Vec::with_capacity(6);
        let mut cbp = 0u8;
        for (i, &(sx, sy)) in sub.iter().enumerate() {
            let resid = residual_block(frame.y(), lx + sx, ly + sy, &pred_y, LUMA_BLOCK, sx, sy);
            let mut freq = [0i32; 64];
            dct::forward(&resid, &mut freq);
            let quantized = quantize_block(&freq, self.cfg.qp, false);
            let zig = zigzag::scan(&quantized);
            if block_is_coded(&zig, 0) {
                cbp |= 1 << (5 - i);
            }
            levels.push(zig);
            self.ops.dct_blocks += 1;
            self.ops.quant_blocks += 1;
        }
        for (i, (plane, pred)) in [(frame.cb(), &pred_cb), (frame.cr(), &pred_cr)]
            .into_iter()
            .enumerate()
        {
            let resid = residual_block(plane, cx, cy, pred, CHROMA_BLOCK, 0, 0);
            let mut freq = [0i32; 64];
            dct::forward(&resid, &mut freq);
            let quantized = quantize_block(&freq, self.cfg.qp, false);
            let zig = zigzag::scan(&quantized);
            if block_is_coded(&zig, 0) {
                cbp |= 1 << (1 - i);
            }
            levels.push(zig);
            self.ops.dct_blocks += 1;
            self.ops.quant_blocks += 1;
        }

        if mv.is_zero() && cbp == 0 {
            // Skip: single COD bit, reconstruction = colocated copy.
            w.put_bit(true);
            store_pred(
                new_recon.y_mut(),
                lx,
                ly,
                &pred_y,
                LUMA_BLOCK,
                0,
                0,
                LUMA_BLOCK,
            );
            store_pred(
                new_recon.cb_mut(),
                cx,
                cy,
                &pred_cb,
                CHROMA_BLOCK,
                0,
                0,
                CHROMA_BLOCK,
            );
            store_pred(
                new_recon.cr_mut(),
                cx,
                cy,
                &pred_cr,
                CHROMA_BLOCK,
                0,
                0,
                CHROMA_BLOCK,
            );
            return MbMode::Skip;
        }

        w.put_bit(false); // COD = 0
        w.put_bit(false); // inter
        if self.cfg.half_pel {
            let (hx, hy) = mv.to_half_units();
            vlc::write_mvd(w, hx);
            vlc::write_mvd(w, hy);
        } else {
            vlc::write_mvd(w, mv.int.x);
            vlc::write_mvd(w, mv.int.y);
        }
        vlc::write_cbp(w, cbp);
        for (i, zig) in levels.iter().enumerate() {
            if cbp & (1 << (5 - i)) != 0 {
                write_coeff_block(w, zig, 0);
            }
        }

        // Reconstruction.
        for (i, zig) in levels.iter().enumerate() {
            let coded = cbp & (1 << (5 - i)) != 0;
            let resid = if coded {
                let quantized = zigzag::unscan(zig);
                let coefs = dequantize_block(&quantized, self.cfg.qp, false);
                let mut spatial = [0i32; 64];
                dct::inverse(&coefs, &mut spatial);
                self.ops.dequant_blocks += 1;
                self.ops.idct_blocks += 1;
                spatial
            } else {
                [0i32; 64]
            };
            match i {
                0..=3 => {
                    let (sx, sy) = sub[i];
                    store_pred_plus_residual(
                        new_recon.y_mut(),
                        lx + sx,
                        ly + sy,
                        &pred_y,
                        LUMA_BLOCK,
                        sx,
                        sy,
                        &resid,
                    );
                }
                4 => store_pred_plus_residual(
                    new_recon.cb_mut(),
                    cx,
                    cy,
                    &pred_cb,
                    CHROMA_BLOCK,
                    0,
                    0,
                    &resid,
                ),
                _ => store_pred_plus_residual(
                    new_recon.cr_mut(),
                    cx,
                    cy,
                    &pred_cr,
                    CHROMA_BLOCK,
                    0,
                    0,
                    &resid,
                ),
            }
        }
        MbMode::Inter
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::NaturalPolicy;
    use pbpair_media::metrics;
    use pbpair_media::synth::SyntheticSequence;

    fn encode_n(n: usize, seed: u64) -> (Encoder, Vec<EncodedFrame>, Vec<Frame>) {
        let mut enc = Encoder::new(EncoderConfig::default());
        let mut policy = NaturalPolicy::new();
        let mut seq = SyntheticSequence::foreman_class(seed);
        let mut encoded = Vec::new();
        let mut originals = Vec::new();
        for _ in 0..n {
            let f = seq.next_frame();
            encoded.push(enc.encode_frame(&f, &mut policy));
            originals.push(f);
        }
        (enc, encoded, originals)
    }

    #[test]
    fn first_frame_is_always_intra() {
        let (_, encoded, _) = encode_n(2, 1);
        assert_eq!(encoded[0].kind, FrameKind::Intra);
        assert_eq!(encoded[0].stats.intra_mbs, 99);
        assert_eq!(encoded[1].kind, FrameKind::Inter);
    }

    #[test]
    fn reconstruction_tracks_the_original() {
        let (enc, _, originals) = encode_n(5, 2);
        let p = metrics::psnr_y(originals.last().unwrap(), enc.reconstructed());
        assert!(p > 28.0, "encoder reconstruction PSNR too low: {p}");
    }

    #[test]
    fn p_frames_are_much_smaller_than_i_frames() {
        let (_, encoded, _) = encode_n(4, 3);
        let i_bits = encoded[0].stats.bits;
        let p_bits = encoded[2].stats.bits;
        assert!(
            p_bits * 2 < i_bits,
            "P-frame ({p_bits} bits) should be well under the I-frame ({i_bits} bits)"
        );
    }

    #[test]
    fn ops_are_accounted() {
        let (enc, encoded, _) = encode_n(3, 4);
        let ops = enc.ops();
        assert_eq!(ops.frames, 3);
        assert_eq!(ops.total_mbs(), 3 * 99);
        // I-frame has no ME; P-frames search for non-forced MBs.
        assert!(ops.me_invocations > 0);
        assert!(ops.me_invocations <= 2 * 99);
        assert!(ops.sad_ops > 0);
        assert_eq!(
            ops.bits_emitted,
            encoded.iter().map(|e| e.stats.bits).sum::<u64>()
        );
        // 6 blocks per coded MB are transformed (skip MBs transform too
        // before demotion).
        assert!(ops.dct_blocks >= (ops.intra_mbs + ops.inter_mbs) * 6);
    }

    #[test]
    fn mb_modes_match_stats() {
        let (_, encoded, _) = encode_n(3, 5);
        for e in &encoded {
            let intra = e.mb_modes.iter().filter(|m| **m == MbMode::Intra).count() as u32;
            let inter = e.mb_modes.iter().filter(|m| **m == MbMode::Inter).count() as u32;
            let skip = e.mb_modes.iter().filter(|m| **m == MbMode::Skip).count() as u32;
            assert_eq!(intra, e.stats.intra_mbs);
            assert_eq!(inter, e.stats.inter_mbs);
            assert_eq!(skip, e.stats.skip_mbs);
        }
    }

    #[test]
    fn static_content_produces_skip_mbs() {
        // A perfectly static source (flat frames) must devolve to skip
        // macroblocks after the first frame.
        let mut enc = Encoder::new(EncoderConfig::default());
        let mut policy = NaturalPolicy::new();
        let flat = Frame::flat(VideoFormat::QCIF, 90);
        let _ = enc.encode_frame(&flat, &mut policy);
        let e = enc.encode_frame(&flat, &mut policy);
        assert_eq!(e.stats.skip_mbs, 99, "static frame should fully skip");
        assert!(e.stats.bits < 200, "a fully skipped frame is ~1 bit/MB");
    }

    #[test]
    #[should_panic(expected = "format")]
    fn wrong_format_panics() {
        let mut enc = Encoder::new(EncoderConfig::default());
        let mut policy = NaturalPolicy::new();
        let wrong = Frame::new(VideoFormat::CIF);
        let _ = enc.encode_frame(&wrong, &mut policy);
    }
}
