//! The hybrid video encoder.
//!
//! Pipeline per P-frame macroblock (Figure 1 of the paper):
//!
//! 1. **pre-ME mode selection** — the policy may force intra and skip the
//!    search entirely (PBPAIR's early decision);
//! 2. **motion estimation** — biased cost search
//!    (`SAD + policy.me_bias(mv)`);
//! 3. **natural inter/intra test** — intra when
//!    `SAD_mv > SAD_self + intra_bias` (the paper's
//!    `SAD_mv − SAD_Th > SAD_self` test);
//! 4. **post-ME override** — the policy may still force intra (AIR,
//!    PGOP stride-back);
//! 5. transform / quantize / entropy-code, plus an in-loop reconstruction
//!    identical to the decoder's.
//!
//! All primitive operations are tallied in an [`OpCounts`], the input to
//! the energy model.
//!
//! # Hot-path optimizations
//!
//! [`OptConfig`] gates three optimizations that keep the bitstream
//! **bit-identical** to the retained naive path (the golden-vector tests
//! prove it):
//!
//! * **predicted-MV fast search** — each P-macroblock seeds the search
//!   with the median of its left/top/top-right neighbours, the zero
//!   vector, and its previous-frame colocated vector, and every sweep
//!   candidate's SAD accumulation terminates early once it exceeds the
//!   running best (see [`me::search_fast`]);
//! * **fused transform** — DCT, quantization, and zigzag run as one
//!   kernel with no intermediate 8×8 buffers ([`crate::fused`]);
//! * **zero-allocation steady state** — the bit writer, reconstruction
//!   target, and motion-vector history are persistent scratch reused
//!   across frames, so [`Encoder::encode_frame_into`] performs no heap
//!   allocation after warm-up (a counting-allocator test asserts this).

use crate::bitstream::BitWriter;
use crate::kernels::{KernelChoice, Kernels};
use crate::mb::{FrameStats, MbMode, MotionVector, SubPelVector};
use crate::mbcode::{code_inter_mb, code_intra_mb, BlockCodeCfg};
use crate::mc::LUMA_BLOCK;
use crate::me::{self, MeConfig, MvCandidates};
use crate::ops::OpCounts;
use crate::par::{self, ParScratch};
use crate::policy::{
    FrameContext, FrameKind, FrozenMeBias, MbContext, MbOutcome, PostMeDecision, PreMeDecision,
    RefreshPolicy,
};
use crate::quant::Qp;
use crate::rde::{self, RdeCandidate, RdeConfig};
use pbpair_media::{Frame, MbGrid, MbIndex, VideoFormat};
use pbpair_sched::WorkStealingPool;
use pbpair_telemetry::{Counter, Histogram, Stage, Telemetry};
use pbpair_trace::{event as trace_event, Event as TraceEvent, Tracer};
use serde::{Deserialize, Serialize};

/// The 17-bit picture start code (16 zeros and a one, H.263 style).
pub const PICTURE_START_CODE: u32 = 1;
/// Bits in the picture start code.
pub const PICTURE_START_CODE_LEN: u32 = 17;

/// Hot-path optimization switches. Every combination produces the exact
/// same bitstream; these only trade CPU time. The defaults enable the
/// single-threaded optimizations and keep encoding serial.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OptConfig {
    /// Predicted-MV candidate seeding plus SAD early termination in the
    /// motion search ([`me::search_fast`]). Off = the naive exhaustive
    /// accounting path ([`me::search`]).
    #[serde(default)]
    pub fast_me: bool,
    /// The fused `dct→quant→zigzag` block kernel
    /// ([`crate::fused::fdct_quant_scan`]). Off = the separate
    /// three-pass pipeline.
    #[serde(default)]
    pub fused_transform: bool,
    /// Number of slice-encoding threads. `0` and `1` both mean serial.
    /// Values above 1 enable slice-parallel encoding *when the active
    /// policy provides a frame-frozen ME bias*
    /// ([`crate::policy::RefreshPolicy::frame_frozen_bias`]); otherwise
    /// the encoder transparently falls back to serial. The assembled
    /// bitstream is deterministic and independent of the thread count.
    #[serde(default)]
    pub slices: u8,
    /// Which SIMD pixel-kernel tier to dispatch through
    /// ([`crate::kernels`]). [`KernelChoice::Auto`] (the default) uses
    /// the process-wide active tier — the detected best, or the
    /// `PBPAIR_KERNELS` override; forcing a tier pins this encoder only.
    /// Every tier produces the exact same bitstream.
    #[serde(default)]
    pub kernels: KernelChoice,
}

impl Default for OptConfig {
    /// Fast ME and the fused transform on; serial (1 slice); auto kernel
    /// dispatch.
    fn default() -> Self {
        OptConfig {
            fast_me: true,
            fused_transform: true,
            slices: 1,
            kernels: KernelChoice::Auto,
        }
    }
}

impl OptConfig {
    /// The retained naive reference path: no fast ME, no fused kernel,
    /// serial, scalar pixel kernels. Benchmarks use this as the speedup
    /// baseline and the differential tests as the ground truth.
    pub fn naive() -> Self {
        OptConfig {
            fast_me: false,
            fused_transform: false,
            slices: 1,
            kernels: KernelChoice::Scalar,
        }
    }
}

/// Encoder configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EncoderConfig {
    /// Picture format of every input frame.
    pub format: VideoFormat,
    /// Quantization parameter used for all frames.
    pub qp: Qp,
    /// Motion-search configuration.
    pub me: MeConfig,
    /// The paper's `SAD_Th`: inter is kept only while
    /// `SAD_mv ≤ SAD_self + intra_bias`. Larger values favor inter.
    pub intra_bias: u32,
    /// Half-pixel motion precision (H.263's default). When set, the
    /// integer search winner is refined over its 8 half-pel neighbours
    /// and vectors travel in half-pel units. The flag is carried in every
    /// picture header so the decoder follows automatically. The paper
    /// experiments keep this off (integer precision) so refresh-scheme
    /// comparisons stay on the configuration DESIGN.md documents.
    pub half_pel: bool,
    /// In-loop deblocking filter (see [`crate::deblock`]). Carried in the
    /// picture header; off in all paper experiments.
    pub deblock: bool,
    /// Hot-path optimization switches (bitstream-neutral).
    #[serde(default)]
    pub opt: OptConfig,
    /// Joint rate–distortion–energy controller ([`crate::rde`]). `None`
    /// — and `Some` with both λ weights zero — leave every decision to
    /// the plain policy path, bit-identically.
    #[serde(default)]
    pub rde: Option<RdeConfig>,
}

impl Default for EncoderConfig {
    /// QCIF, QP 8, ±15 three-step search, `SAD_Th` = 500 (the H.263 TMN
    /// convention).
    fn default() -> Self {
        EncoderConfig {
            format: VideoFormat::QCIF,
            qp: Qp::default(),
            me: MeConfig::default(),
            intra_bias: 500,
            half_pel: false,
            deblock: false,
            opt: OptConfig::default(),
            rde: None,
        }
    }
}

impl EncoderConfig {
    /// The paper's configuration: like [`EncoderConfig::default`] but
    /// with exhaustive ±15 full-search motion estimation, matching the
    /// reference H.263 TMN encoder the paper builds on. This is what the
    /// figure-regeneration experiments use; it makes ME ≈95% of the
    /// encoding energy, the regime in which the paper's energy numbers
    /// live.
    pub fn paper() -> Self {
        EncoderConfig {
            me: MeConfig {
                search_range: 15,
                strategy: crate::me::SearchStrategy::Full,
            },
            ..EncoderConfig::default()
        }
    }
}

/// One encoded frame: the bitstream plus side statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EncodedFrame {
    /// 0-based frame index (also carried in the picture header mod 256).
    pub index: u64,
    /// Frame coding type.
    pub kind: FrameKind,
    /// The encoded bitstream, byte-aligned.
    pub data: Vec<u8>,
    /// Per-frame statistics.
    pub stats: FrameStats,
    /// Final mode of each macroblock in raster order (diagnostic side
    /// info; not part of the bitstream).
    pub mb_modes: Vec<MbMode>,
}

impl EncodedFrame {
    /// An empty frame suitable as the reusable output slot of
    /// [`Encoder::encode_frame_into`].
    pub fn empty() -> Self {
        EncodedFrame {
            index: 0,
            kind: FrameKind::Intra,
            data: Vec::new(),
            stats: FrameStats::default(),
            mb_modes: Vec::new(),
        }
    }
}

/// The encoder. Owns the reconstruction loop (its reference frame is the
/// decoder's output for a loss-free channel, bit-exactly).
///
/// # Example
///
/// ```rust
/// use pbpair_codec::{Encoder, EncoderConfig, NaturalPolicy};
/// use pbpair_media::synth::SyntheticSequence;
///
/// let mut enc = Encoder::new(EncoderConfig::default());
/// let mut policy = NaturalPolicy::new();
/// let mut seq = SyntheticSequence::akiyo_class(1);
/// let encoded = enc.encode_frame(&seq.next_frame(), &mut policy);
/// assert!(!encoded.data.is_empty());
/// assert_eq!(encoded.stats.total_mbs(), 99);
/// ```
#[derive(Debug)]
pub struct Encoder {
    cfg: EncoderConfig,
    /// The pixel-kernel tier, resolved once from `cfg.opt.kernels` at
    /// construction; every hot loop (ME, transform, MC, reconstruction)
    /// dispatches through this single table.
    kernels: &'static Kernels,
    grid: MbGrid,
    /// Reconstructed previous frame (the prediction reference).
    recon: Frame,
    /// Original previous frame (similarity measurements).
    prev_original: Frame,
    frame_index: u64,
    ops: OpCounts,
    /// ME searches performed in the frame currently being encoded.
    frame_me_invocations: u32,
    /// Pre-resolved telemetry handles; `None` until
    /// [`Encoder::set_telemetry`] attaches an enabled context. The
    /// flush is one batch of atomic adds per *frame*, so the per-MB hot
    /// loop carries no instrumentation cost at all.
    tel: Option<EncoderTelemetry>,
    /// Trace handle; `None` until [`Encoder::set_tracer`] attaches an
    /// enabled tracer. When attached, every macroblock's coding
    /// decision (mode, motion vector, bitstream range) is recorded as
    /// provenance for the causal replay pass.
    trace: Option<Tracer>,
    /// Integer-pel motion vector of the most recently coded inter MB,
    /// stashed by `code_p_mb` for the provenance event.
    last_mb_mv: MotionVector,
    /// Persistent bit writer, reused across frames (taken at frame start,
    /// restored after `finish_into`). Part of the zero-allocation loop.
    writer: BitWriter,
    /// Scratch writer for RDE trial coding on the serial path (the
    /// staged path carries one per row). Untouched when RDE is inactive.
    rde_scratch: BitWriter,
    /// Reusable reconstruction target: after each frame it holds the
    /// retired two-frames-ago reconstruction, whose every pixel is
    /// overwritten before use (the MB grid tiles the frame exactly).
    scratch_recon: Option<Frame>,
    /// Integer MV of each macroblock of the previous frame (raster
    /// order); seeds the fast search's temporal candidate.
    prev_mvs: Vec<MotionVector>,
    /// Integer MV of each macroblock coded so far in the current frame;
    /// seeds the spatial (left/top/top-right) candidates.
    cur_mvs: Vec<MotionVector>,
    /// Slice-encoding worker pool, lazily created on the first frame that
    /// engages the staged parallel path (`opt.slices > 1` and a policy
    /// with a frame-frozen bias).
    pool: Option<WorkStealingPool>,
    /// Persistent per-row/per-MB scratch of the staged parallel path.
    par: Option<ParScratch>,
}

/// Telemetry handles the encoder flushes once per encoded frame. All
/// quantities are deterministic (mode counts, bits, operation tallies),
/// so instrumented runs reproduce byte-identically.
#[derive(Debug)]
struct EncoderTelemetry {
    /// Stage `"encode"`; virtual units = SAD absolute-difference ops,
    /// the paper's dominant energy term.
    stage: Stage,
    frames: Counter,
    mbs_intra: Counter,
    mbs_inter: Counter,
    mbs_skip: Counter,
    /// ME searches performed.
    me_searches: Counter,
    /// P-frame macroblocks coded without a search — PBPAIR's savings.
    me_skipped: Counter,
    sad_ops: Counter,
    bits: Counter,
    bits_intra: Counter,
    bits_inter: Counter,
    bits_skip: Counter,
    /// Per-frame quantizer levels (QP is 1..=31).
    frame_qp: Histogram,
    /// Per-frame encoded sizes in bits.
    frame_bits: Histogram,
}

impl EncoderTelemetry {
    fn new(tel: &Telemetry) -> Self {
        EncoderTelemetry {
            stage: tel.stage("encode"),
            frames: tel.counter("enc.frames"),
            mbs_intra: tel.counter("enc.mbs_intra"),
            mbs_inter: tel.counter("enc.mbs_inter"),
            mbs_skip: tel.counter("enc.mbs_skip"),
            me_searches: tel.counter("enc.me_searches"),
            me_skipped: tel.counter("enc.me_skipped"),
            sad_ops: tel.counter("enc.sad_ops"),
            bits: tel.counter("enc.bits"),
            bits_intra: tel.counter("enc.bits_intra"),
            bits_inter: tel.counter("enc.bits_inter"),
            bits_skip: tel.counter("enc.bits_skip"),
            frame_qp: tel.histogram("enc.frame_qp", &[2, 4, 8, 12, 16, 22, 31]),
            frame_bits: tel.histogram(
                "enc.frame_bits",
                &[2_000, 8_000, 20_000, 50_000, 100_000, 250_000],
            ),
        }
    }
}

impl Encoder {
    /// Creates an encoder; the first frame passed to
    /// [`Encoder::encode_frame`] is always coded intra.
    pub fn new(cfg: EncoderConfig) -> Self {
        let grid = MbGrid::new(cfg.format);
        let mbs = grid.len();
        Encoder {
            cfg,
            kernels: cfg.opt.kernels.resolve(),
            grid,
            recon: Frame::new(cfg.format),
            prev_original: Frame::new(cfg.format),
            frame_index: 0,
            ops: OpCounts::new(),
            frame_me_invocations: 0,
            tel: None,
            trace: None,
            last_mb_mv: MotionVector::ZERO,
            writer: BitWriter::new(),
            rde_scratch: BitWriter::new(),
            scratch_recon: Some(Frame::new(cfg.format)),
            prev_mvs: vec![MotionVector::ZERO; mbs],
            cur_mvs: vec![MotionVector::ZERO; mbs],
            pool: None,
            par: None,
        }
    }

    /// Attaches a telemetry context; subsequent frames flush their
    /// deterministic per-frame statistics into it (`enc.*` metrics and
    /// the `"encode"` stage). A disabled context detaches.
    pub fn set_telemetry(&mut self, tel: &Telemetry) {
        self.tel = tel.is_enabled().then(|| EncoderTelemetry::new(tel));
    }

    /// Attaches a tracer; subsequent frames record per-MB provenance
    /// events (mode, motion vector, bitstream bit range). A disabled
    /// tracer detaches.
    pub fn set_tracer(&mut self, tracer: &Tracer) {
        self.trace = tracer.is_enabled().then(|| tracer.clone());
    }

    /// The configuration in effect.
    pub fn config(&self) -> &EncoderConfig {
        &self.cfg
    }

    /// Changes the quantizer for subsequent frames — the hook a rate
    /// controller ([`crate::rate::RateController`]) drives. The QP is
    /// carried per frame in the picture header, so the decoder follows
    /// automatically.
    pub fn set_qp(&mut self, qp: Qp) {
        self.cfg.qp = qp;
    }

    /// Cumulative operation counts since construction (or the last
    /// [`Encoder::take_ops`]).
    pub fn ops(&self) -> &OpCounts {
        &self.ops
    }

    /// Returns and resets the cumulative operation counts.
    pub fn take_ops(&mut self) -> OpCounts {
        std::mem::take(&mut self.ops)
    }

    /// The encoder's current reconstructed reference frame (what a
    /// loss-free decoder would display for the last encoded frame).
    pub fn reconstructed(&self) -> &Frame {
        &self.recon
    }

    /// Index the next encoded frame will get.
    pub fn next_frame_index(&self) -> u64 {
        self.frame_index
    }

    /// Encodes one frame under the given refresh policy.
    ///
    /// # Panics
    ///
    /// Panics if `frame`'s format differs from the configured format.
    pub fn encode_frame(&mut self, frame: &Frame, policy: &mut dyn RefreshPolicy) -> EncodedFrame {
        let mut out = EncodedFrame::empty();
        self.encode_frame_into(frame, policy, &mut out);
        out
    }

    /// Encodes one frame into a caller-owned output slot, reusing its
    /// `data` and `mb_modes` buffers. In steady state (slot capacity
    /// established, serial mode, no tracer) this performs **no heap
    /// allocation** — the property `tests/alloc_count.rs` asserts with a
    /// counting allocator.
    ///
    /// # Panics
    ///
    /// Panics if `frame`'s format differs from the configured format.
    pub fn encode_frame_into(
        &mut self,
        frame: &Frame,
        policy: &mut dyn RefreshPolicy,
        out: &mut EncodedFrame,
    ) {
        assert_eq!(
            frame.format(),
            self.cfg.format,
            "frame format does not match encoder configuration"
        );
        let ops_at_entry = self.ops;
        let span = self.tel.as_ref().map(|t| t.stage.span());
        let fctx = FrameContext {
            frame_index: self.frame_index,
            format: self.cfg.format,
            mb_count: self.grid.len(),
        };
        let kind = if self.frame_index == 0 {
            FrameKind::Intra
        } else {
            policy.begin_frame(&fctx)
        };

        let mut w = std::mem::take(&mut self.writer);
        w.reset();
        w.put_bits(PICTURE_START_CODE, PICTURE_START_CODE_LEN);
        w.put_bits((self.frame_index & 0xFF) as u32, 8);
        w.put_bit(kind == FrameKind::Inter);
        w.put_bits(self.cfg.qp.get() as u32, 5);
        w.put_bit(self.cfg.half_pel);
        w.put_bit(self.cfg.deblock);
        // Source format: 2-bit code for the standard sizes, escape code 3
        // followed by the dimensions in macroblock units. The decoder
        // validates this against its configured format instead of
        // silently mis-parsing a stream of the wrong size.
        match self.cfg.format {
            VideoFormat::SQCIF => w.put_bits(0, 2),
            VideoFormat::QCIF => w.put_bits(1, 2),
            VideoFormat::CIF => w.put_bits(2, 2),
            custom => {
                w.put_bits(3, 2);
                w.put_bits(custom.mb_cols() as u32, 8);
                w.put_bits(custom.mb_rows() as u32, 8);
            }
        }

        // Every pixel of the scratch frame is overwritten below (the MB
        // grid tiles the frame exactly), so stale content is harmless.
        let mut new_recon = self
            .scratch_recon
            .take()
            .unwrap_or_else(|| Frame::new(self.cfg.format));
        let mut stats = FrameStats::default();
        out.mb_modes.clear();

        // Slice-parallel encoding engages only when configured AND the
        // policy can freeze its ME bias for the frame; otherwise the
        // serial path runs (identical bitstream either way).
        let frozen = if self.cfg.opt.slices > 1 && self.grid.rows() > 1 {
            policy.frame_frozen_bias(&fctx)
        } else {
            None
        };
        if let Some(frozen) = frozen {
            self.encode_mbs_staged(
                frame,
                policy,
                &fctx,
                kind,
                &frozen,
                &mut w,
                &mut new_recon,
                &mut stats,
                out,
            );
        } else {
            self.encode_mbs_serial(
                frame,
                policy,
                &fctx,
                kind,
                &mut w,
                &mut new_recon,
                &mut stats,
                out,
            );
        }

        if self.cfg.deblock {
            crate::deblock::deblock_frame(&mut new_recon, self.cfg.qp);
        }

        stats.bits = w.bit_len();
        stats.me_invocations = self.frame_me_invocations;
        self.frame_me_invocations = 0;

        w.finish_into(&mut out.data);
        self.writer = w;
        self.ops.frames += 1;
        self.ops.intra_mbs += stats.intra_mbs as u64;
        self.ops.inter_mbs += stats.inter_mbs as u64;
        self.ops.skip_mbs += stats.skip_mbs as u64;
        self.ops.bits_emitted += stats.bits;

        policy.end_frame(&fctx, &stats);

        if let Some(t) = &self.tel {
            let frame_ops = self.ops - ops_at_entry;
            t.frames.inc(1);
            t.mbs_intra.inc(stats.intra_mbs as u64);
            t.mbs_inter.inc(stats.inter_mbs as u64);
            t.mbs_skip.inc(stats.skip_mbs as u64);
            t.me_searches.inc(stats.me_invocations as u64);
            if kind == FrameKind::Inter {
                t.me_skipped
                    .inc(self.grid.len() as u64 - stats.me_invocations as u64);
            }
            t.sad_ops.inc(frame_ops.sad_ops);
            t.bits.inc(stats.bits);
            t.bits_intra.inc(stats.intra_bits);
            t.bits_inter.inc(stats.inter_bits);
            t.bits_skip.inc(stats.skip_bits);
            t.frame_qp.record(self.cfg.qp.get() as u64);
            t.frame_bits.record(stats.bits);
            if let Some(mut span) = span {
                span.add_units(frame_ops.sad_ops);
            }
        }

        std::mem::swap(&mut self.recon, &mut new_recon);
        self.scratch_recon = Some(new_recon);
        self.prev_original.copy_from(frame);
        std::mem::swap(&mut self.prev_mvs, &mut self.cur_mvs);

        out.index = self.frame_index;
        out.kind = kind;
        out.stats = stats;
        self.frame_index += 1;
    }

    /// The serial macroblock loop: one raster pass doing pre-ME, search,
    /// post-ME, and block coding per macroblock.
    #[allow(clippy::too_many_arguments)]
    fn encode_mbs_serial(
        &mut self,
        frame: &Frame,
        policy: &mut dyn RefreshPolicy,
        fctx: &FrameContext,
        kind: FrameKind,
        w: &mut BitWriter,
        new_recon: &mut Frame,
        stats: &mut FrameStats,
        out: &mut EncodedFrame,
    ) {
        let (rows, cols) = (self.grid.rows(), self.grid.cols());
        for row in 0..rows {
            for col in 0..cols {
                let mb = MbIndex::new(row, col);
                let flat = row * cols + col;
                let mb_bits_before = w.bit_len();
                let mode = match kind {
                    FrameKind::Intra => {
                        code_intra_mb(&self.block_cfg(), w, frame, new_recon, mb, &mut self.ops);
                        self.cur_mvs[flat] = MotionVector::ZERO;
                        // Policies observe I-frame macroblocks too (GOP
                        // resets its cycle; PBPAIR refreshes its matrix).
                        // The colocated SAD is computed as for P-frames;
                        // for frame 0 the previous original is black, so
                        // similarity-based policies correctly see
                        // "nothing to conceal from".
                        let (ox, oy) = mb.luma_origin();
                        let colocated_sad = frame.y().sad_colocated(
                            self.prev_original.y(),
                            ox,
                            oy,
                            LUMA_BLOCK,
                            LUMA_BLOCK,
                        );
                        self.ops.sad_ops += 256;
                        policy.mb_coded(
                            fctx,
                            &MbOutcome {
                                mb,
                                mode: MbMode::Intra,
                                mv: MotionVector::ZERO,
                                sad_mv: None,
                                me_performed: false,
                                colocated_sad,
                            },
                        );
                        MbMode::Intra
                    }
                    FrameKind::Inter => {
                        let cands = self.predicted_candidates(row, col);
                        let mode = self.code_p_mb(w, frame, new_recon, mb, policy, fctx, &cands);
                        self.cur_mvs[flat] = self.last_mb_mv;
                        mode
                    }
                };
                let mb_bits = w.bit_len() - mb_bits_before;
                if let Some(t) = &self.trace {
                    let (mode_code, mv) = match mode {
                        MbMode::Intra => (trace_event::MODE_INTRA, MotionVector::ZERO),
                        MbMode::Inter => (trace_event::MODE_INTER, self.last_mb_mv),
                        MbMode::Skip => (trace_event::MODE_SKIP, MotionVector::ZERO),
                    };
                    t.emit(TraceEvent::MbCoded {
                        frame: self.frame_index as u32,
                        mb: flat as u16,
                        mode: mode_code,
                        mv_x: mv.x,
                        mv_y: mv.y,
                        bit_start: mb_bits_before as u32,
                        bit_len: mb_bits as u32,
                    });
                }
                match mode {
                    MbMode::Intra => {
                        stats.intra_mbs += 1;
                        stats.intra_bits += mb_bits;
                    }
                    MbMode::Inter => {
                        stats.inter_mbs += 1;
                        stats.inter_bits += mb_bits;
                    }
                    MbMode::Skip => {
                        stats.skip_mbs += 1;
                        stats.skip_bits += mb_bits;
                    }
                }
                out.mb_modes.push(mode);
            }
        }
    }

    /// The slice-parallel macroblock loop: a five-stage pipeline that
    /// produces a bitstream **bit-identical** to the serial path.
    ///
    /// 1. *serial* — colocated SADs and the policy's pre-ME decisions in
    ///    raster order (so sequential policy state like PBPAIR's refresh
    ///    cap replays exactly);
    /// 2. *parallel rows* — motion search with the frame-frozen bias. The
    ///    fast search's prepass candidates (zero, colocated-previous, the
    ///    row's previous winner) only ever tighten the pruning bound and
    ///    never select the winner, so the result is the same vector the
    ///    serial search finds even though its candidate list differs —
    ///    and it is row-local, making the operation count independent of
    ///    the thread count;
    /// 3. *serial* — the natural intra test and the policy's post-ME
    ///    overrides in raster order;
    /// 4. *parallel rows* — half-pel refinement, block coding into
    ///    per-row writers, and per-row reconstruction;
    /// 5. *serial* — row writers appended in order, then per-macroblock
    ///    bookkeeping (trace, stats, policy observation, MV history) in
    ///    raster order.
    ///
    /// Policy hooks run in the same per-hook order as the serial path;
    /// the hooks are *interleaved* differently (all pre-ME before any
    /// `mb_coded`), which is exactly what
    /// [`RefreshPolicy::frame_frozen_bias`] certifies as safe.
    #[allow(clippy::too_many_arguments)]
    fn encode_mbs_staged(
        &mut self,
        frame: &Frame,
        policy: &mut dyn RefreshPolicy,
        fctx: &FrameContext,
        kind: FrameKind,
        frozen: &FrozenMeBias,
        w: &mut BitWriter,
        new_recon: &mut Frame,
        stats: &mut FrameStats,
        out: &mut EncodedFrame,
    ) {
        let (rows, cols) = (self.grid.rows(), self.grid.cols());
        if self.par.is_none() {
            self.par = Some(ParScratch::new(self.cfg.format));
        }
        let workers = (self.cfg.opt.slices as usize).min(rows).max(1);
        if self.pool.as_ref().map(|p| p.workers()) != Some(workers) {
            self.pool = Some(WorkStealingPool::new(workers, rows.max(16)));
        }
        let mut par = self.par.take().expect("par scratch initialized above");

        // Stage 1 (serial): content similarity + pre-ME decisions.
        match kind {
            FrameKind::Intra => {
                for st in &mut par.mbs {
                    *st = par::MbStage::default();
                    st.force_intra = true;
                }
            }
            FrameKind::Inter => {
                for row in 0..rows {
                    for col in 0..cols {
                        let mb = MbIndex::new(row, col);
                        let flat = row * cols + col;
                        let (ox, oy) = mb.luma_origin();
                        let colocated_sad = frame.y().sad_colocated(
                            self.prev_original.y(),
                            ox,
                            oy,
                            LUMA_BLOCK,
                            LUMA_BLOCK,
                        );
                        self.ops.sad_ops += 256;
                        let ctx = MbContext {
                            frame_index: self.frame_index,
                            mb,
                            cur_luma: frame.y(),
                            ref_luma: self.recon.y(),
                            colocated_sad,
                        };
                        let st = &mut par.mbs[flat];
                        st.colocated_sad = colocated_sad;
                        st.force_intra = policy.pre_me_mode(&ctx) == PreMeDecision::ForceIntra;
                        st.inter_mv = None;
                    }
                }
            }
        }

        // Stage 2 (parallel rows): motion search with the frozen bias.
        if kind == FrameKind::Inter {
            let recon = &self.recon;
            let prev_mvs = &self.prev_mvs;
            let me_cfg = self.cfg.me;
            let fast_me = self.cfg.opt.fast_me;
            let kernels = self.kernels;
            let ParScratch { mbs, rows: rowscr } = &mut par;
            let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = mbs
                .chunks_mut(cols)
                .zip(rowscr.iter_mut())
                .enumerate()
                .map(|(row, (stages, rs))| {
                    Box::new(move || {
                        rs.ops = OpCounts::new();
                        rs.me_invocations = 0;
                        // The row's previous ME winner seeds the next
                        // MB's pruning bound (the serial path uses the
                        // median of coded neighbours instead; either list
                        // is sound because the prepass cannot change the
                        // winner).
                        let mut left: Option<MotionVector> = None;
                        for (col, st) in stages.iter_mut().enumerate() {
                            if st.force_intra {
                                left = None;
                                continue;
                            }
                            let mb = MbIndex::new(row, col);
                            let flat = row * cols + col;
                            let mut cands = MvCandidates::default();
                            if fast_me {
                                cands.push_clamped(MotionVector::ZERO, me_cfg.search_range);
                                cands.push_clamped(prev_mvs[flat], me_cfg.search_range);
                                if let Some(lv) = left {
                                    cands.push_clamped(lv, me_cfg.search_range);
                                }
                            }
                            let mut bias = |mv: MotionVector| frozen(mb, mv);
                            let me_result = if fast_me {
                                me::search_fast_with(
                                    kernels,
                                    frame.y(),
                                    recon.y(),
                                    mb,
                                    me_cfg,
                                    &mut bias,
                                    &cands,
                                )
                            } else {
                                me::search_with(
                                    kernels,
                                    frame.y(),
                                    recon.y(),
                                    mb,
                                    me_cfg,
                                    &mut bias,
                                )
                            };
                            rs.ops.me_invocations += 1;
                            rs.me_invocations += 1;
                            rs.ops.sad_candidates += me_result.candidates as u64;
                            rs.ops.sad_ops += me_result.sad_ops;
                            st.me = me_result;
                            st.sad_self = me::sad_self(frame.y(), mb);
                            rs.ops.sad_ops += 512; // mean + deviation pass
                            left = Some(me_result.mv);
                        }
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            self.pool
                .as_ref()
                .expect("pool initialized above")
                .run_scoped(jobs);
        }

        // Stage 3 (serial): natural intra test + post-ME overrides.
        if kind == FrameKind::Inter {
            for row in 0..rows {
                for col in 0..cols {
                    let flat = row * cols + col;
                    let st = &mut par.mbs[flat];
                    if st.force_intra {
                        continue;
                    }
                    let mb = MbIndex::new(row, col);
                    let ctx = MbContext {
                        frame_index: self.frame_index,
                        mb,
                        cur_luma: frame.y(),
                        ref_luma: self.recon.y(),
                        colocated_sad: st.colocated_sad,
                    };
                    let natural_intra = st.me.sad > st.sad_self + self.cfg.intra_bias as u64;
                    let post = policy.post_me_mode(&ctx, &st.me);
                    st.inter_mv = if natural_intra || post == PostMeDecision::ForceIntra {
                        None
                    } else {
                        Some(st.me.mv)
                    };
                }
            }
        }

        // Stage 4 (parallel rows): refinement + block coding into per-row
        // writers and reconstruction bands.
        {
            let bcfg = self.block_cfg();
            let recon = &self.recon;
            let half_pel = self.cfg.half_pel;
            let kernels = self.kernels;
            let rde_cfg = self.active_rde();
            let ParScratch { mbs, rows: rowscr } = &mut par;
            let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = mbs
                .chunks_mut(cols)
                .zip(rowscr.iter_mut())
                .enumerate()
                .map(|(row, (stages, rs))| {
                    Box::new(move || {
                        rs.writer.reset();
                        if kind == FrameKind::Intra {
                            rs.ops = OpCounts::new();
                            rs.me_invocations = 0;
                        }
                        for (col, st) in stages.iter_mut().enumerate() {
                            let mb = MbIndex::new(row, col);
                            let bit_start = rs.writer.bit_len();
                            if kind == FrameKind::Intra {
                                code_intra_mb(
                                    &bcfg,
                                    &mut rs.writer,
                                    frame,
                                    &mut rs.recon,
                                    mb,
                                    &mut rs.ops,
                                );
                                st.final_mode = MbMode::Intra;
                                st.final_mv = MotionVector::ZERO;
                                st.sad_mv = None;
                            } else {
                                // Baseline decision (what the serial
                                // policy path produces), with half-pel
                                // refinement when inter survived.
                                let baseline = if let Some(int_mv) = st.inter_mv {
                                    let (mv, sad) = if half_pel {
                                        let refined = me::refine_half_pel_with(
                                            kernels,
                                            frame.y(),
                                            recon.y(),
                                            mb,
                                            int_mv,
                                            st.me.sad,
                                        );
                                        rs.ops.sad_ops += refined.sad_ops;
                                        (refined.mv, refined.sad)
                                    } else {
                                        (SubPelVector::integer(int_mv), st.me.sad)
                                    };
                                    st.sad_mv = Some(sad);
                                    RdeCandidate::Inter(mv)
                                } else {
                                    st.sad_mv = if st.force_intra {
                                        None
                                    } else {
                                        Some(st.me.sad)
                                    };
                                    RdeCandidate::Intra
                                };
                                let final_mode = if let Some(rde_cfg) = &rde_cfg {
                                    rde::choose_and_code_mb(
                                        rde_cfg,
                                        &bcfg,
                                        &mut rs.writer,
                                        &mut rs.rde_writer,
                                        frame,
                                        recon,
                                        &mut rs.recon,
                                        mb,
                                        baseline,
                                        &mut rs.ops,
                                    )
                                } else {
                                    match baseline {
                                        RdeCandidate::Inter(mv) => code_inter_mb(
                                            &bcfg,
                                            &mut rs.writer,
                                            frame,
                                            recon,
                                            &mut rs.recon,
                                            mb,
                                            mv,
                                            &mut rs.ops,
                                        ),
                                        _ => {
                                            rs.writer.put_bit(false); // COD = 0: coded
                                            rs.writer.put_bit(true); // intra
                                            code_intra_mb(
                                                &bcfg,
                                                &mut rs.writer,
                                                frame,
                                                &mut rs.recon,
                                                mb,
                                                &mut rs.ops,
                                            );
                                            MbMode::Intra
                                        }
                                    }
                                };
                                st.final_mode = final_mode;
                                st.final_mv = match (final_mode, baseline) {
                                    (MbMode::Inter, RdeCandidate::Inter(mv)) => mv.int,
                                    _ => MotionVector::ZERO,
                                };
                            }
                            st.bit_start = bit_start;
                            st.bit_len = rs.writer.bit_len() - bit_start;
                        }
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            self.pool
                .as_ref()
                .expect("pool initialized above")
                .run_scoped(jobs);
        }

        // Stage 5 (serial): deterministic assembly in row order, then
        // per-MB bookkeeping in raster order (matching the serial path's
        // `mb_coded` sequence).
        {
            let ParScratch { mbs, rows: rowscr } = &mut par;
            for (row, rs) in rowscr.iter_mut().enumerate() {
                let row_start = w.bit_len();
                w.append(&rs.writer);
                self.ops += rs.ops;
                self.frame_me_invocations += rs.me_invocations;
                for col in 0..cols {
                    let flat = row * cols + col;
                    let st = &mbs[flat];
                    let mb = MbIndex::new(row, col);
                    let colocated_sad = if kind == FrameKind::Intra {
                        let (ox, oy) = mb.luma_origin();
                        let sad = frame.y().sad_colocated(
                            self.prev_original.y(),
                            ox,
                            oy,
                            LUMA_BLOCK,
                            LUMA_BLOCK,
                        );
                        self.ops.sad_ops += 256;
                        sad
                    } else {
                        st.colocated_sad
                    };
                    if let Some(t) = &self.trace {
                        let (mode_code, mv) = match st.final_mode {
                            MbMode::Intra => (trace_event::MODE_INTRA, MotionVector::ZERO),
                            MbMode::Inter => (trace_event::MODE_INTER, st.final_mv),
                            MbMode::Skip => (trace_event::MODE_SKIP, MotionVector::ZERO),
                        };
                        t.emit(TraceEvent::MbCoded {
                            frame: self.frame_index as u32,
                            mb: flat as u16,
                            mode: mode_code,
                            mv_x: mv.x,
                            mv_y: mv.y,
                            bit_start: (row_start + st.bit_start) as u32,
                            bit_len: st.bit_len as u32,
                        });
                    }
                    match st.final_mode {
                        MbMode::Intra => {
                            stats.intra_mbs += 1;
                            stats.intra_bits += st.bit_len;
                        }
                        MbMode::Inter => {
                            stats.inter_mbs += 1;
                            stats.inter_bits += st.bit_len;
                        }
                        MbMode::Skip => {
                            stats.skip_mbs += 1;
                            stats.skip_bits += st.bit_len;
                        }
                    }
                    out.mb_modes.push(st.final_mode);
                    policy.mb_coded(
                        fctx,
                        &MbOutcome {
                            mb,
                            mode: st.final_mode,
                            mv: st.final_mv,
                            sad_mv: st.sad_mv,
                            me_performed: kind == FrameKind::Inter && !st.force_intra,
                            colocated_sad,
                        },
                    );
                    self.cur_mvs[flat] = st.final_mv;
                    self.last_mb_mv = st.final_mv;
                }
                par::copy_row_band(new_recon, &rs.recon, row);
            }
        }
        self.par = Some(par);
    }

    /// The RDE configuration, only when it actually reprices decisions
    /// (the zero-λ gate: `None` and zero-λ configs are the same encoder).
    fn active_rde(&self) -> Option<RdeConfig> {
        self.cfg.rde.filter(|r| r.is_active())
    }

    /// The block-coding parameters for the current frame.
    fn block_cfg(&self) -> BlockCodeCfg {
        BlockCodeCfg {
            qp: self.cfg.qp,
            half_pel: self.cfg.half_pel,
            fused: self.cfg.opt.fused_transform,
            kernels: self.kernels,
        }
    }

    /// Builds the fast search's predicted-MV candidate list for the
    /// macroblock at `(row, col)`: the component-wise median of the
    /// left/top/top-right neighbours coded this frame, the zero vector,
    /// and the colocated vector of the previous frame. Empty when fast
    /// ME is off (the naive search takes no prepass).
    fn predicted_candidates(&self, row: usize, col: usize) -> MvCandidates {
        let mut cands = MvCandidates::default();
        if !self.cfg.opt.fast_me {
            return cands;
        }
        let cols = self.grid.cols();
        let flat = row * cols + col;
        let range = self.cfg.me.search_range;
        let zero = MotionVector::ZERO;
        let left = if col > 0 {
            self.cur_mvs[flat - 1]
        } else {
            zero
        };
        let top = if row > 0 {
            self.cur_mvs[flat - cols]
        } else {
            zero
        };
        let top_right = if row > 0 && col + 1 < cols {
            self.cur_mvs[flat - cols + 1]
        } else {
            zero
        };
        cands.push_clamped(me::median_mv(left, top, top_right), range);
        cands.push_clamped(zero, range);
        cands.push_clamped(self.prev_mvs[flat], range);
        cands
    }
}

// The per-frame ME counter lives on the struct to avoid threading it
// through every call; it is reset at each frame end.
impl Encoder {
    #[allow(clippy::too_many_arguments)]
    fn code_p_mb(
        &mut self,
        w: &mut BitWriter,
        frame: &Frame,
        new_recon: &mut Frame,
        mb: MbIndex,
        policy: &mut dyn RefreshPolicy,
        fctx: &FrameContext,
        cands: &MvCandidates,
    ) -> MbMode {
        let (ox, oy) = mb.luma_origin();
        // Content-similarity measurement (SAD against the colocated MB of
        // the previous original frame); one 256-op SAD, charged uniformly.
        let colocated_sad =
            frame
                .y()
                .sad_colocated(self.prev_original.y(), ox, oy, LUMA_BLOCK, LUMA_BLOCK);
        self.ops.sad_ops += 256;

        let ctx = MbContext {
            frame_index: self.frame_index,
            mb,
            cur_luma: frame.y(),
            ref_luma: self.recon.y(),
            colocated_sad,
        };

        let pre = policy.pre_me_mode(&ctx);
        let (mode, mv, sad_mv, me_performed) = if pre == PreMeDecision::ForceIntra {
            (MbMode::Intra, SubPelVector::ZERO, None, false)
        } else {
            let me_result = if self.cfg.opt.fast_me {
                me::search_fast_with(
                    self.kernels,
                    frame.y(),
                    self.recon.y(),
                    mb,
                    self.cfg.me,
                    &mut |mv| policy.me_bias(&ctx, mv),
                    cands,
                )
            } else {
                me::search_with(
                    self.kernels,
                    frame.y(),
                    self.recon.y(),
                    mb,
                    self.cfg.me,
                    &mut |mv| policy.me_bias(&ctx, mv),
                )
            };
            self.ops.me_invocations += 1;
            self.frame_me_invocations += 1;
            self.ops.sad_candidates += me_result.candidates as u64;
            self.ops.sad_ops += me_result.sad_ops;

            let sad_self = me::sad_self(frame.y(), mb);
            self.ops.sad_ops += 512; // mean + deviation pass
            let natural_intra = me_result.sad > sad_self + self.cfg.intra_bias as u64;
            let post = policy.post_me_mode(&ctx, &me_result);
            if natural_intra || post == PostMeDecision::ForceIntra {
                (MbMode::Intra, SubPelVector::ZERO, Some(me_result.sad), true)
            } else if self.cfg.half_pel {
                let refined = me::refine_half_pel_with(
                    self.kernels,
                    frame.y(),
                    self.recon.y(),
                    mb,
                    me_result.mv,
                    me_result.sad,
                );
                self.ops.sad_ops += refined.sad_ops;
                (MbMode::Inter, refined.mv, Some(refined.sad), true)
            } else {
                (
                    MbMode::Inter,
                    SubPelVector::integer(me_result.mv),
                    Some(me_result.sad),
                    true,
                )
            }
        };

        let bcfg = self.block_cfg();
        let final_mode = if let Some(rde_cfg) = self.active_rde() {
            let baseline = match mode {
                MbMode::Intra => RdeCandidate::Intra,
                _ => RdeCandidate::Inter(mv),
            };
            rde::choose_and_code_mb(
                &rde_cfg,
                &bcfg,
                w,
                &mut self.rde_scratch,
                frame,
                &self.recon,
                new_recon,
                mb,
                baseline,
                &mut self.ops,
            )
        } else {
            match mode {
                MbMode::Intra => {
                    w.put_bit(false); // COD = 0: coded
                    w.put_bit(true); // intra
                    code_intra_mb(&bcfg, w, frame, new_recon, mb, &mut self.ops);
                    MbMode::Intra
                }
                _ => code_inter_mb(
                    &bcfg,
                    w,
                    frame,
                    &self.recon,
                    new_recon,
                    mb,
                    mv,
                    &mut self.ops,
                ),
            }
        };

        let outcome_mv = if final_mode == MbMode::Inter {
            mv.int
        } else {
            MotionVector::ZERO
        };
        self.last_mb_mv = outcome_mv;
        policy.mb_coded(
            fctx,
            &MbOutcome {
                mb,
                mode: final_mode,
                mv: outcome_mv,
                sad_mv,
                me_performed,
                colocated_sad,
            },
        );
        final_mode
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::NaturalPolicy;
    use pbpair_media::metrics;
    use pbpair_media::synth::SyntheticSequence;

    fn encode_n(n: usize, seed: u64) -> (Encoder, Vec<EncodedFrame>, Vec<Frame>) {
        let mut enc = Encoder::new(EncoderConfig::default());
        let mut policy = NaturalPolicy::new();
        let mut seq = SyntheticSequence::foreman_class(seed);
        let mut encoded = Vec::new();
        let mut originals = Vec::new();
        for _ in 0..n {
            let f = seq.next_frame();
            encoded.push(enc.encode_frame(&f, &mut policy));
            originals.push(f);
        }
        (enc, encoded, originals)
    }

    #[test]
    fn first_frame_is_always_intra() {
        let (_, encoded, _) = encode_n(2, 1);
        assert_eq!(encoded[0].kind, FrameKind::Intra);
        assert_eq!(encoded[0].stats.intra_mbs, 99);
        assert_eq!(encoded[1].kind, FrameKind::Inter);
    }

    #[test]
    fn reconstruction_tracks_the_original() {
        let (enc, _, originals) = encode_n(5, 2);
        let p = metrics::psnr_y(originals.last().unwrap(), enc.reconstructed());
        assert!(p > 28.0, "encoder reconstruction PSNR too low: {p}");
    }

    #[test]
    fn p_frames_are_much_smaller_than_i_frames() {
        let (_, encoded, _) = encode_n(4, 3);
        let i_bits = encoded[0].stats.bits;
        let p_bits = encoded[2].stats.bits;
        assert!(
            p_bits * 2 < i_bits,
            "P-frame ({p_bits} bits) should be well under the I-frame ({i_bits} bits)"
        );
    }

    #[test]
    fn ops_are_accounted() {
        let (enc, encoded, _) = encode_n(3, 4);
        let ops = enc.ops();
        assert_eq!(ops.frames, 3);
        assert_eq!(ops.total_mbs(), 3 * 99);
        // I-frame has no ME; P-frames search for non-forced MBs.
        assert!(ops.me_invocations > 0);
        assert!(ops.me_invocations <= 2 * 99);
        assert!(ops.sad_ops > 0);
        assert_eq!(
            ops.bits_emitted,
            encoded.iter().map(|e| e.stats.bits).sum::<u64>()
        );
        // 6 blocks per coded MB are transformed (skip MBs transform too
        // before demotion).
        assert!(ops.dct_blocks >= (ops.intra_mbs + ops.inter_mbs) * 6);
    }

    #[test]
    fn mb_modes_match_stats() {
        let (_, encoded, _) = encode_n(3, 5);
        for e in &encoded {
            let intra = e.mb_modes.iter().filter(|m| **m == MbMode::Intra).count() as u32;
            let inter = e.mb_modes.iter().filter(|m| **m == MbMode::Inter).count() as u32;
            let skip = e.mb_modes.iter().filter(|m| **m == MbMode::Skip).count() as u32;
            assert_eq!(intra, e.stats.intra_mbs);
            assert_eq!(inter, e.stats.inter_mbs);
            assert_eq!(skip, e.stats.skip_mbs);
        }
    }

    #[test]
    fn static_content_produces_skip_mbs() {
        // A perfectly static source (flat frames) must devolve to skip
        // macroblocks after the first frame.
        let mut enc = Encoder::new(EncoderConfig::default());
        let mut policy = NaturalPolicy::new();
        let flat = Frame::flat(VideoFormat::QCIF, 90);
        let _ = enc.encode_frame(&flat, &mut policy);
        let e = enc.encode_frame(&flat, &mut policy);
        assert_eq!(e.stats.skip_mbs, 99, "static frame should fully skip");
        assert!(e.stats.bits < 200, "a fully skipped frame is ~1 bit/MB");
    }

    #[test]
    fn optimizations_do_not_change_the_bitstream() {
        // Fast ME + fused transform vs. the retained naive path: the
        // bitstreams and side info must be identical frame by frame, and
        // the fast path must execute strictly fewer SAD operations.
        let mut fast = Encoder::new(EncoderConfig::default());
        let mut naive = Encoder::new(EncoderConfig {
            opt: OptConfig::naive(),
            ..EncoderConfig::default()
        });
        let mut pf = NaturalPolicy::new();
        let mut pn = NaturalPolicy::new();
        let mut seq_f = SyntheticSequence::foreman_class(11);
        let mut seq_n = SyntheticSequence::foreman_class(11);
        for i in 0..5 {
            let ef = fast.encode_frame(&seq_f.next_frame(), &mut pf);
            let en = naive.encode_frame(&seq_n.next_frame(), &mut pn);
            assert_eq!(ef.data, en.data, "bitstream diverged at frame {i}");
            assert_eq!(ef.stats, en.stats, "stats diverged at frame {i}");
            assert_eq!(ef.mb_modes, en.mb_modes, "modes diverged at frame {i}");
        }
        assert!(
            fast.ops().sad_ops < naive.ops().sad_ops,
            "fast path must save SAD ops: {} vs {}",
            fast.ops().sad_ops,
            naive.ops().sad_ops
        );
    }

    #[test]
    fn slice_parallel_encoding_is_bit_identical_and_deterministic() {
        // The staged pipeline must reproduce the serial bitstream exactly
        // at every thread count, and its operation counts must not depend
        // on the thread count (row-local candidate seeding).
        let encode = |slices: u8| {
            let mut enc = Encoder::new(EncoderConfig {
                opt: OptConfig {
                    slices,
                    ..OptConfig::default()
                },
                ..EncoderConfig::default()
            });
            let mut policy = NaturalPolicy::new();
            let mut seq = SyntheticSequence::foreman_class(21);
            let frames: Vec<_> = (0..5)
                .map(|_| enc.encode_frame(&seq.next_frame(), &mut policy))
                .collect();
            (frames, *enc.ops())
        };
        let (serial, _) = encode(1);
        let (two, ops2) = encode(2);
        let (four, ops4) = encode(4);
        for i in 0..serial.len() {
            assert_eq!(
                serial[i].data, two[i].data,
                "2 slices diverged at frame {i}"
            );
            assert_eq!(
                serial[i].data, four[i].data,
                "4 slices diverged at frame {i}"
            );
            assert_eq!(serial[i].stats, two[i].stats, "stats diverged at frame {i}");
            assert_eq!(
                serial[i].stats, four[i].stats,
                "stats diverged at frame {i}"
            );
            assert_eq!(serial[i].mb_modes, two[i].mb_modes);
            assert_eq!(serial[i].mb_modes, four[i].mb_modes);
        }
        assert_eq!(
            ops2, ops4,
            "operation counts must be independent of the thread count"
        );
    }

    #[test]
    fn slice_parallel_without_frozen_bias_falls_back_to_serial() {
        // A policy that cannot freeze its bias (the default `None`) must
        // still encode correctly with slices configured: the encoder
        // silently takes the serial path.
        struct Unfreezable;
        impl RefreshPolicy for Unfreezable {
            fn label(&self) -> String {
                "unfreezable".into()
            }
        }
        let mut parallel = Encoder::new(EncoderConfig {
            opt: OptConfig {
                slices: 4,
                ..OptConfig::default()
            },
            ..EncoderConfig::default()
        });
        let mut serial = Encoder::new(EncoderConfig::default());
        let mut seq_a = SyntheticSequence::foreman_class(22);
        let mut seq_b = SyntheticSequence::foreman_class(22);
        for i in 0..3 {
            let a = parallel.encode_frame(&seq_a.next_frame(), &mut Unfreezable);
            let b = serial.encode_frame(&seq_b.next_frame(), &mut Unfreezable);
            assert_eq!(a, b, "fallback diverged at frame {i}");
        }
    }

    #[test]
    fn encode_frame_into_reuses_the_output_slot() {
        let mut enc = Encoder::new(EncoderConfig::default());
        let mut policy = NaturalPolicy::new();
        let mut seq = SyntheticSequence::foreman_class(6);
        let mut out = EncodedFrame::empty();
        let mut reference = Encoder::new(EncoderConfig::default());
        let mut ref_policy = NaturalPolicy::new();
        let mut ref_seq = SyntheticSequence::foreman_class(6);
        for i in 0..4 {
            enc.encode_frame_into(&seq.next_frame(), &mut policy, &mut out);
            let want = reference.encode_frame(&ref_seq.next_frame(), &mut ref_policy);
            assert_eq!(out, want, "frame {i} diverged between into/owned APIs");
        }
    }

    #[test]
    #[should_panic(expected = "format")]
    fn wrong_format_panics() {
        let mut enc = Encoder::new(EncoderConfig::default());
        let mut policy = NaturalPolicy::new();
        let wrong = Frame::new(VideoFormat::CIF);
        let _ = enc.encode_frame(&wrong, &mut policy);
    }
}
