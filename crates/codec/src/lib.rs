//! An H.263-class hybrid video codec with pluggable error-resilience
//! policies and operation accounting.
//!
//! This crate is the substrate on which the PBPAIR reproduction runs: a
//! from-scratch predictive DCT codec with the same pipeline as the paper's
//! H.263 encoder — motion estimation ([`me`]), transform ([`dct`]),
//! quantization ([`quant`]), and variable-length coding ([`vlc`]) — plus a
//! decoder with error concealment ([`decoder`]).
//!
//! Two design points make it a *research* codec for this paper rather than
//! a generic one:
//!
//! * **Refresh policies** ([`policy::RefreshPolicy`]) expose the exact
//!   hooks where error-resilient schemes intervene: frame type selection,
//!   pre-ME mode selection (PBPAIR's energy-saving early intra decision),
//!   an additive bias in the ME cost function (PBPAIR's
//!   probability-of-correctness term), and a post-ME override (AIR/PGOP).
//! * **Operation accounting** ([`ops::OpCounts`]) tallies every SAD op,
//!   transform, and emitted bit so the `pbpair-energy` crate can model
//!   encoding energy the way the paper measured it on PDAs.
//!
//! # Quick start
//!
//! ```rust
//! use pbpair_codec::{Decoder, Encoder, EncoderConfig, NaturalPolicy};
//! use pbpair_media::{metrics, synth::SyntheticSequence, VideoFormat};
//!
//! # fn main() -> Result<(), pbpair_codec::DecodeError> {
//! let mut enc = Encoder::new(EncoderConfig::default());
//! let mut dec = Decoder::new(VideoFormat::QCIF);
//! let mut policy = NaturalPolicy::new(); // no error resilience ("NO")
//! let mut seq = SyntheticSequence::foreman_class(42);
//!
//! for _ in 0..3 {
//!     let frame = seq.next_frame();
//!     let encoded = enc.encode_frame(&frame, &mut policy);
//!     let (decoded, _info) = dec.decode_frame(&encoded.data)?;
//!     assert!(metrics::psnr_y(&frame, &decoded) > 25.0);
//! }
//! println!("SAD ops executed: {}", enc.ops().sad_ops);
//! # Ok(())
//! # }
//! ```

pub mod bitstream;
pub mod block;
pub mod blockcode;
pub mod dct;
pub mod deblock;
pub mod decoder;
pub mod encoder;
pub mod fused;
pub mod kernels;
pub mod mb;
pub(crate) mod mbcode;
pub mod mc;
pub mod me;
pub mod ops;
pub(crate) mod par;
pub mod policy;
pub mod quant;
pub mod rate;
pub mod rde;
pub mod vlc;
pub mod zigzag;

pub use bitstream::BitstreamError;
pub use decoder::{Concealment, DecodeError, DecodeReport, DecodedInfo, Decoder};
pub use encoder::{EncodedFrame, Encoder, EncoderConfig, OptConfig};
pub use kernels::{KernelChoice, KernelTier, Kernels};
pub use mb::{FrameStats, MbMode, MotionVector};
pub use me::{MeConfig, MeResult, SearchStrategy};
pub use ops::OpCounts;
pub use policy::{
    FrameContext, FrameKind, FrozenMeBias, MbContext, MbOutcome, NaturalPolicy, PostMeDecision,
    PreMeDecision, RefreshPolicy,
};
pub use quant::Qp;
pub use rate::RateController;
pub use rde::{
    bisect_min_lambda, BisectOutcome, EnergyPrice, FrameLambdaAdapter, RdeConfig, LAMBDA_ONE,
    PJ_PER_NJ, PJ_PER_UJ,
};
