//! Optional in-loop deblocking filter (H.263 Annex J-inspired).
//!
//! Block-based codecs produce visible discontinuities at 8×8 block
//! boundaries at coarse quantization. This filter smooths each boundary
//! with a QP-dependent clipped correction, applied identically inside the
//! encoder's reconstruction loop and the decoder (the flag travels in the
//! picture header, so streams are self-describing).
//!
//! For each boundary pixel pair `B | C` with outer neighbours `A`, `D`:
//!
//! ```text
//! delta = clamp((A − 4B + 4C − D) / 8, −s, s),   s = max(1, QP/2)
//! B' = B + delta,  C' = C − delta
//! ```
//!
//! A genuine edge (large step) produces a `delta` beyond the clamp and is
//! only softened by at most `s`, while small blocking steps are removed
//! entirely — the standard strength-clipped deblocking idea.
//!
//! The filter is **off** in all paper-figure experiments (the paper's
//! codec is baseline H.263) and excluded from the energy accounting.

use crate::quant::Qp;
use pbpair_media::{Frame, Plane};

/// Filter strength for a quantizer: `max(1, QP/2)` sample codes.
pub fn strength(qp: Qp) -> i32 {
    (qp.get() as i32 / 2).max(1)
}

/// Applies the deblocking filter in place to all three planes of a
/// reconstructed frame: horizontal edges first, then vertical, at every
/// interior 8-aligned boundary.
pub fn deblock_frame(frame: &mut Frame, qp: Qp) {
    let s = strength(qp);
    let (y, cb, cr) = frame.planes_mut();
    filter_plane(y, s);
    filter_plane(cb, s);
    filter_plane(cr, s);
}

/// Filters one plane in place at interior 8-aligned boundaries.
pub fn filter_plane(p: &mut Plane, s: i32) {
    let (w, h) = (p.width(), p.height());
    // Horizontal edges: boundary between rows y−1 and y.
    let mut y = 8;
    while y + 1 < h {
        for x in 0..w {
            let a = p.get(x, y - 2) as i32;
            let b = p.get(x, y - 1) as i32;
            let c = p.get(x, y) as i32;
            let d = p.get(x, y + 1) as i32;
            let delta = ((a - 4 * b + 4 * c - d) / 8).clamp(-s, s);
            p.set(x, y - 1, (b + delta).clamp(0, 255) as u8);
            p.set(x, y, (c - delta).clamp(0, 255) as u8);
        }
        y += 8;
    }
    // Vertical edges: boundary between columns x−1 and x.
    let mut x = 8;
    while x + 1 < w {
        for y in 0..h {
            let a = p.get(x - 2, y) as i32;
            let b = p.get(x - 1, y) as i32;
            let c = p.get(x, y) as i32;
            let d = p.get(x + 1, y) as i32;
            let delta = ((a - 4 * b + 4 * c - d) / 8).clamp(-s, s);
            p.set(x - 1, y, (b + delta).clamp(0, 255) as u8);
            p.set(x, y, (c - delta).clamp(0, 255) as u8);
        }
        x += 8;
    }
}

/// Mean absolute step across interior 8-aligned boundaries of a plane —
/// the "blockiness" measure the filter is judged by.
pub fn blockiness(p: &Plane) -> f64 {
    let (w, h) = (p.width(), p.height());
    let mut acc = 0u64;
    let mut n = 0u64;
    let mut y = 8;
    while y < h {
        for x in 0..w {
            acc += (p.get(x, y - 1) as i32 - p.get(x, y) as i32).unsigned_abs() as u64;
            n += 1;
        }
        y += 8;
    }
    let mut x = 8;
    while x < w {
        for y in 0..h {
            acc += (p.get(x - 1, y) as i32 - p.get(x, y) as i32).unsigned_abs() as u64;
            n += 1;
        }
        x += 8;
    }
    acc as f64 / n.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strength_scales_with_qp() {
        assert_eq!(strength(Qp::new(1).unwrap()), 1);
        assert_eq!(strength(Qp::new(8).unwrap()), 4);
        assert_eq!(strength(Qp::new(31).unwrap()), 15);
    }

    #[test]
    fn small_block_steps_are_removed() {
        // Flat 100 | flat 104 across the boundary at x = 8: the 4-code
        // step is below the clamp at QP 16 (s = 8) and gets halved twice
        // over — delta = 3·4/8 = 1 per application side.
        let mut p = Plane::from_fn(16, 16, |x, _| if x < 8 { 100 } else { 104 });
        let before = blockiness(&p);
        filter_plane(&mut p, 8);
        let after = blockiness(&p);
        assert!(after < before, "blockiness must drop: {before} → {after}");
    }

    #[test]
    fn genuine_edges_are_preserved_up_to_strength() {
        // A 100-code step is a real edge; the filter may move each side by
        // at most s = 2.
        let mut p = Plane::from_fn(16, 16, |x, _| if x < 8 { 50 } else { 150 });
        filter_plane(&mut p, 2);
        assert!(p.get(7, 8) >= 48 && p.get(7, 8) <= 52);
        assert!(p.get(8, 8) >= 148 && p.get(8, 8) <= 152);
    }

    #[test]
    fn flat_planes_are_untouched() {
        let mut p = Plane::filled(32, 32, 77);
        let orig = p.clone();
        filter_plane(&mut p, 8);
        assert_eq!(p, orig);
    }

    #[test]
    fn smooth_gradients_are_nearly_untouched() {
        // delta of a linear ramp: a−4b+4c−d = (b−1) −4b +4c −(c+1) =
        // 3(c−b) −2 = 1 for unit slope → small correction only.
        let mut p = Plane::from_fn(32, 32, |x, y| (x + y) as u8 * 2);
        let orig = p.clone();
        filter_plane(&mut p, 8);
        let max_diff = p
            .samples()
            .iter()
            .zip(orig.samples())
            .map(|(a, b)| (*a as i32 - *b as i32).abs())
            .max()
            .unwrap();
        assert!(max_diff <= 1, "gradient distorted by {max_diff}");
    }

    #[test]
    fn frame_filter_touches_all_planes() {
        use pbpair_media::VideoFormat;
        let fmt = VideoFormat::QCIF;
        let mut f = Frame::new(fmt);
        // Blocky pattern on every plane.
        for plane in [f.y_mut()] {
            for y in 0..plane.height() {
                for x in 0..plane.width() {
                    plane.set(x, y, if (x / 8) % 2 == 0 { 90 } else { 110 });
                }
            }
        }
        let before = blockiness(f.y());
        deblock_frame(&mut f, Qp::new(10).unwrap());
        assert!(blockiness(f.y()) < before);
    }
}
