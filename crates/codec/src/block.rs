//! Pixel-block helpers shared by the encoder's reconstruction loop and the
//! decoder, guaranteeing bit-identical reconstruction on both sides.

use crate::dct::{BLOCK, BLOCK_LEN};
use crate::kernels::Kernels;
use pbpair_media::Plane;

/// Loads an 8×8 block of samples at `(x, y)` as `i32` (fully inside the
/// plane).
///
/// # Panics
///
/// Panics if the block is out of bounds.
pub fn load_block(p: &Plane, x: usize, y: usize) -> [i32; BLOCK_LEN] {
    let mut out = [0i32; BLOCK_LEN];
    for by in 0..BLOCK {
        let row = &p.row(y + by)[x..x + BLOCK];
        for (bx, &s) in row.iter().enumerate() {
            out[by * BLOCK + bx] = s as i32;
        }
    }
    out
}

/// Computes the 8×8 residual between the samples of `p` at `(x, y)` and a
/// prediction buffer: `pred` is row-major with the given `stride`, and
/// `(px, py)` is the block's offset inside it.
pub fn residual_block(
    p: &Plane,
    x: usize,
    y: usize,
    pred: &[u8],
    stride: usize,
    px: usize,
    py: usize,
) -> [i32; BLOCK_LEN] {
    let mut out = [0i32; BLOCK_LEN];
    for by in 0..BLOCK {
        let row = &p.row(y + by)[x..x + BLOCK];
        for (bx, &s) in row.iter().enumerate() {
            out[by * BLOCK + bx] = s as i32 - pred[(py + by) * stride + (px + bx)] as i32;
        }
    }
    out
}

/// Stores an 8×8 spatial block into the plane at `(x, y)`, clamping each
/// sample to `0..=255` — the reconstruction path of intra blocks.
///
/// # Panics
///
/// Panics if the block is out of bounds.
pub fn store_block_clamped(p: &mut Plane, x: usize, y: usize, data: &[i32; BLOCK_LEN]) {
    store_block_clamped_with(Kernels::active(), p, x, y, data)
}

/// [`store_block_clamped`] through an explicit kernel table.
///
/// # Panics
///
/// Panics if the block is out of bounds.
pub fn store_block_clamped_with(
    k: &Kernels,
    p: &mut Plane,
    x: usize,
    y: usize,
    data: &[i32; BLOCK_LEN],
) {
    for by in 0..BLOCK {
        let row = &mut p.row_mut(y + by)[x..x + BLOCK];
        k.store_clamped8(row, &data[by * BLOCK..(by + 1) * BLOCK]);
    }
}

/// Stores prediction + residual into the plane at `(x, y)`, clamped — the
/// reconstruction path of inter blocks. `pred`/`stride`/`(px, py)` are as
/// in [`residual_block`].
#[allow(clippy::too_many_arguments)]
pub fn store_pred_plus_residual(
    p: &mut Plane,
    x: usize,
    y: usize,
    pred: &[u8],
    stride: usize,
    px: usize,
    py: usize,
    resid: &[i32; BLOCK_LEN],
) {
    store_pred_plus_residual_with(Kernels::active(), p, x, y, pred, stride, px, py, resid)
}

/// [`store_pred_plus_residual`] through an explicit kernel table.
#[allow(clippy::too_many_arguments)]
pub fn store_pred_plus_residual_with(
    k: &Kernels,
    p: &mut Plane,
    x: usize,
    y: usize,
    pred: &[u8],
    stride: usize,
    px: usize,
    py: usize,
    resid: &[i32; BLOCK_LEN],
) {
    for by in 0..BLOCK {
        let row = &mut p.row_mut(y + by)[x..x + BLOCK];
        k.add_residual8(
            row,
            &pred[(py + by) * stride + px..(py + by) * stride + px + BLOCK],
            &resid[by * BLOCK..(by + 1) * BLOCK],
        );
    }
}

/// Copies a prediction buffer region into the plane verbatim (skip mode /
/// zero residual).
#[allow(clippy::too_many_arguments)]
pub fn store_pred(
    p: &mut Plane,
    x: usize,
    y: usize,
    pred: &[u8],
    stride: usize,
    px: usize,
    py: usize,
    size: usize,
) {
    for by in 0..size {
        let row = &mut p.row_mut(y + by)[x..x + size];
        row.copy_from_slice(&pred[(py + by) * stride + px..(py + by) * stride + px + size]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_store_roundtrip() {
        let mut p = Plane::from_fn(16, 16, |x, y| (x * 16 + y) as u8);
        let blk = load_block(&p, 8, 8);
        let mut q = Plane::new(16, 16);
        store_block_clamped(&mut q, 8, 8, &blk);
        for y in 8..16 {
            for x in 8..16 {
                assert_eq!(q.get(x, y), p.get(x, y));
            }
        }
        // Clamping.
        let hot = [300i32; BLOCK_LEN];
        store_block_clamped(&mut p, 0, 0, &hot);
        assert_eq!(p.get(0, 0), 255);
        let cold = [-5i32; BLOCK_LEN];
        store_block_clamped(&mut p, 0, 0, &cold);
        assert_eq!(p.get(0, 0), 0);
    }

    #[test]
    fn residual_plus_prediction_reconstructs() {
        let cur = Plane::from_fn(16, 16, |x, y| (40 + x * 3 + y) as u8);
        let pred: Vec<u8> = (0..256).map(|i| (i % 200) as u8).collect();
        let resid = residual_block(&cur, 0, 8, &pred, 16, 0, 8);
        let mut out = Plane::new(16, 16);
        store_pred_plus_residual(&mut out, 0, 8, &pred, 16, 0, 8, &resid);
        for y in 8..16 {
            for x in 0..8 {
                assert_eq!(out.get(x, y), cur.get(x, y));
            }
        }
    }

    #[test]
    fn store_pred_copies_subregion() {
        let pred: Vec<u8> = (0..256).map(|i| i as u8).collect();
        let mut p = Plane::new(32, 32);
        store_pred(&mut p, 16, 16, &pred, 16, 8, 8, 8);
        assert_eq!(p.get(16, 16), pred[8 * 16 + 8]);
        assert_eq!(p.get(23, 23), pred[15 * 16 + 15]);
    }
}
