//! Zigzag scan order for 8×8 coefficient blocks.
//!
//! The scan orders coefficients from low to high spatial frequency so the
//! run-length (LAST, RUN, LEVEL) events see long zero runs at the tail.

use crate::dct::BLOCK_LEN;

/// Natural (row-major) index of the n-th coefficient in zigzag order —
/// the standard JPEG/H.263 scan.
pub const ZIGZAG: [usize; BLOCK_LEN] = [
    0, 1, 8, 16, 9, 2, 3, 10, 17, 24, 32, 25, 18, 11, 4, 5, 12, 19, 26, 33, 40, 48, 41, 34, 27, 20,
    13, 6, 7, 14, 21, 28, 35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51, 58, 59,
    52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63,
];

/// Reorders a natural-order block into zigzag order.
pub fn scan(natural: &[i32; BLOCK_LEN]) -> [i32; BLOCK_LEN] {
    std::array::from_fn(|i| natural[ZIGZAG[i]])
}

/// Reorders a zigzag-order block back into natural order.
pub fn unscan(zig: &[i32; BLOCK_LEN]) -> [i32; BLOCK_LEN] {
    let mut out = [0i32; BLOCK_LEN];
    for (i, &v) in zig.iter().enumerate() {
        out[ZIGZAG[i]] = v;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zigzag_is_a_permutation() {
        let mut seen = [false; BLOCK_LEN];
        for &i in &ZIGZAG {
            assert!(i < BLOCK_LEN);
            assert!(!seen[i], "index {i} repeated");
            seen[i] = true;
        }
    }

    #[test]
    fn scan_unscan_roundtrip() {
        let natural: [i32; BLOCK_LEN] = std::array::from_fn(|i| i as i32 * 3 - 50);
        assert_eq!(unscan(&scan(&natural)), natural);
    }

    #[test]
    fn first_entries_follow_the_diagonal() {
        // 0, then (0,1), (1,0), (2,0), (1,1), (0,2)...
        assert_eq!(&ZIGZAG[..6], &[0, 1, 8, 16, 9, 2]);
        assert_eq!(ZIGZAG[63], 63);
    }

    #[test]
    fn scan_moves_low_frequencies_first() {
        // A block with energy only in the top-left 2x2 must be entirely
        // within the first 5 zigzag positions.
        let mut natural = [0i32; BLOCK_LEN];
        natural[0] = 5;
        natural[1] = 4;
        natural[8] = 3;
        natural[9] = 2;
        let z = scan(&natural);
        assert!(z[..5].iter().filter(|&&v| v != 0).count() == 4);
        assert!(z[5..].iter().all(|&v| v == 0));
    }
}
