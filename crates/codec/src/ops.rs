//! Operation accounting — the codec-side half of the energy model.
//!
//! The paper measures encoding energy with a DAQ board on real PDAs. We
//! substitute an operation-accounting model: the codec counts every
//! primitive operation class it executes, and `pbpair-energy` converts
//! those counts to Joules with per-device cost profiles. Because every
//! scheme runs through the same codec, the *ratios* between schemes —
//! the paper's headline result — are preserved by construction.

use serde::{Deserialize, Serialize};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

/// Counts of the primitive operations performed by the codec.
///
/// All counters are cumulative; [`OpCounts::add`] and the `+=` operator
/// merge counters from multiple frames or runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpCounts {
    /// Frames encoded.
    pub frames: u64,
    /// Macroblocks coded intra.
    pub intra_mbs: u64,
    /// Macroblocks coded inter.
    pub inter_mbs: u64,
    /// Macroblocks skipped.
    pub skip_mbs: u64,
    /// Motion-estimation searches performed (one per inter-attempted MB).
    pub me_invocations: u64,
    /// Candidate positions evaluated across all searches.
    pub sad_candidates: u64,
    /// Absolute-difference operations performed by SAD kernels — the
    /// dominant energy term, as in the paper ("motion estimation is the
    /// most power consuming operation").
    pub sad_ops: u64,
    /// Forward 8×8 DCTs.
    pub dct_blocks: u64,
    /// Inverse 8×8 DCTs (encoder reconstruction loop and decoder).
    pub idct_blocks: u64,
    /// Quantized 8×8 blocks.
    pub quant_blocks: u64,
    /// Dequantized 8×8 blocks.
    pub dequant_blocks: u64,
    /// Motion-compensated 16×16 luma blocks.
    pub mc_luma_blocks: u64,
    /// Motion-compensated 8×8 chroma blocks.
    pub mc_chroma_blocks: u64,
    /// Bits produced by the entropy coder.
    pub bits_emitted: u64,
    /// Reference-frame bytes read by motion-compensated prediction (the
    /// luma + chroma prediction windows, including the extra row/column a
    /// half-pel interpolation touches). Counted at the macroblock level,
    /// independent of the SIMD kernel tier in use.
    pub ref_read_bytes: u64,
    /// Reconstruction bytes written back by the coding loop (every coded
    /// or skipped macroblock stores its 384-byte YCbCr footprint exactly
    /// once). Kernel-tier independent, like `ref_read_bytes`.
    pub recon_write_bytes: u64,
}

impl OpCounts {
    /// An all-zero counter.
    pub fn new() -> Self {
        OpCounts::default()
    }

    /// Total macroblocks processed.
    pub fn total_mbs(&self) -> u64 {
        self.intra_mbs + self.inter_mbs + self.skip_mbs
    }

    /// Bytes produced by the entropy coder (rounded up per frame happens
    /// at the container level; this is the raw bit total / 8).
    pub fn bytes_emitted(&self) -> u64 {
        self.bits_emitted.div_ceil(8)
    }

    /// Fraction of macroblocks that skipped motion estimation entirely —
    /// PBPAIR's source of energy savings.
    pub fn me_skip_ratio(&self) -> f64 {
        let total = self.total_mbs();
        if total == 0 {
            return 0.0;
        }
        1.0 - self.me_invocations as f64 / total as f64
    }
}

impl Add for OpCounts {
    type Output = OpCounts;

    fn add(self, rhs: OpCounts) -> OpCounts {
        OpCounts {
            frames: self.frames + rhs.frames,
            intra_mbs: self.intra_mbs + rhs.intra_mbs,
            inter_mbs: self.inter_mbs + rhs.inter_mbs,
            skip_mbs: self.skip_mbs + rhs.skip_mbs,
            me_invocations: self.me_invocations + rhs.me_invocations,
            sad_candidates: self.sad_candidates + rhs.sad_candidates,
            sad_ops: self.sad_ops + rhs.sad_ops,
            dct_blocks: self.dct_blocks + rhs.dct_blocks,
            idct_blocks: self.idct_blocks + rhs.idct_blocks,
            quant_blocks: self.quant_blocks + rhs.quant_blocks,
            dequant_blocks: self.dequant_blocks + rhs.dequant_blocks,
            mc_luma_blocks: self.mc_luma_blocks + rhs.mc_luma_blocks,
            mc_chroma_blocks: self.mc_chroma_blocks + rhs.mc_chroma_blocks,
            bits_emitted: self.bits_emitted + rhs.bits_emitted,
            ref_read_bytes: self.ref_read_bytes + rhs.ref_read_bytes,
            recon_write_bytes: self.recon_write_bytes + rhs.recon_write_bytes,
        }
    }
}

impl AddAssign for OpCounts {
    fn add_assign(&mut self, rhs: OpCounts) {
        *self = *self + rhs;
    }
}

impl Sub for OpCounts {
    type Output = OpCounts;

    /// Per-field difference — used to extract the cost of a single frame
    /// from two cumulative snapshots.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if any field would underflow (`rhs` must be
    /// an earlier snapshot of the same counter).
    fn sub(self, rhs: OpCounts) -> OpCounts {
        OpCounts {
            frames: self.frames - rhs.frames,
            intra_mbs: self.intra_mbs - rhs.intra_mbs,
            inter_mbs: self.inter_mbs - rhs.inter_mbs,
            skip_mbs: self.skip_mbs - rhs.skip_mbs,
            me_invocations: self.me_invocations - rhs.me_invocations,
            sad_candidates: self.sad_candidates - rhs.sad_candidates,
            sad_ops: self.sad_ops - rhs.sad_ops,
            dct_blocks: self.dct_blocks - rhs.dct_blocks,
            idct_blocks: self.idct_blocks - rhs.idct_blocks,
            quant_blocks: self.quant_blocks - rhs.quant_blocks,
            dequant_blocks: self.dequant_blocks - rhs.dequant_blocks,
            mc_luma_blocks: self.mc_luma_blocks - rhs.mc_luma_blocks,
            mc_chroma_blocks: self.mc_chroma_blocks - rhs.mc_chroma_blocks,
            bits_emitted: self.bits_emitted - rhs.bits_emitted,
            ref_read_bytes: self.ref_read_bytes - rhs.ref_read_bytes,
            recon_write_bytes: self.recon_write_bytes - rhs.recon_write_bytes,
        }
    }
}

impl Sum for OpCounts {
    fn sum<I: Iterator<Item = OpCounts>>(iter: I) -> OpCounts {
        iter.fold(OpCounts::new(), |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_merges_every_field() {
        let a = OpCounts {
            frames: 1,
            intra_mbs: 2,
            inter_mbs: 3,
            skip_mbs: 4,
            me_invocations: 5,
            sad_candidates: 6,
            sad_ops: 7,
            dct_blocks: 8,
            idct_blocks: 9,
            quant_blocks: 10,
            dequant_blocks: 11,
            mc_luma_blocks: 12,
            mc_chroma_blocks: 13,
            bits_emitted: 14,
            ref_read_bytes: 15,
            recon_write_bytes: 16,
        };
        let sum = a + a;
        assert_eq!(sum.frames, 2);
        assert_eq!(sum.bits_emitted, 28);
        assert_eq!(sum.ref_read_bytes, 30);
        assert_eq!(sum.recon_write_bytes, 32);
        assert_eq!(sum.total_mbs(), 18);
        let mut b = OpCounts::new();
        b += a;
        assert_eq!(b, a);
        let s: OpCounts = vec![a, a, a].into_iter().sum();
        assert_eq!(s.sad_ops, 21);
        assert_eq!(s - a - a, a, "subtraction inverts addition");
    }

    #[test]
    fn me_skip_ratio_reflects_skipped_searches() {
        let c = OpCounts {
            intra_mbs: 30,
            inter_mbs: 60,
            skip_mbs: 10,
            me_invocations: 70,
            ..OpCounts::default()
        };
        assert!((c.me_skip_ratio() - 0.3).abs() < 1e-12);
        assert_eq!(OpCounts::new().me_skip_ratio(), 0.0);
    }

    #[test]
    fn bytes_round_up() {
        let c = OpCounts {
            bits_emitted: 9,
            ..OpCounts::default()
        };
        assert_eq!(c.bytes_emitted(), 2);
    }
}
