//! Variable-length coding of coefficient events, motion vectors, and coded
//! block patterns.
//!
//! The entropy layer mirrors H.263's structure — (LAST, RUN, LEVEL) events
//! for transform coefficients, a short code per motion-vector component,
//! and a coded-block-pattern code per macroblock — but the tables are
//! generated canonical Huffman codes (see [`huffman`]) from static
//! frequency models, with an escape path (Exp-Golomb coded) for events
//! outside the table, just like H.263's ESCAPE codeword.

pub mod huffman;
mod tables;

use crate::bitstream::{BitReader, BitWriter, BitstreamError};
pub use tables::{cbp_codebook, mvd_codebook, tcoef_codebook};

/// Largest RUN covered by a regular TCOEF codeword; longer runs escape.
pub const TCOEF_RUN_MAX: u8 = 14;
/// Largest |LEVEL| covered by a regular TCOEF codeword; larger levels
/// escape.
pub const TCOEF_LEVEL_MAX: i16 = 8;
/// Motion-vector component magnitude covered by a regular codeword.
pub const MVD_MAX: i16 = 16;

/// One (LAST, RUN, LEVEL) transform-coefficient event, H.263 style:
/// `run` zero coefficients followed by one coefficient of value `level`,
/// with `last` set on the final event of the block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcoefEvent {
    /// True if this is the last non-zero coefficient of the block.
    pub last: bool,
    /// Number of zero coefficients preceding this one in scan order.
    pub run: u8,
    /// The non-zero coefficient value.
    pub level: i16,
}

/// Writes one TCOEF event: a regular table codeword plus sign bit when the
/// event is in range, otherwise the escape codeword followed by
/// `last`/`ue(run)`/`se(level)`.
///
/// # Panics
///
/// Panics if `level == 0` (a zero level is not an event).
pub fn write_tcoef(w: &mut BitWriter, ev: TcoefEvent) {
    assert!(ev.level != 0, "TCOEF level must be non-zero");
    let book = tcoef_codebook();
    let mag = ev.level.unsigned_abs() as i16;
    if ev.run <= TCOEF_RUN_MAX && mag <= TCOEF_LEVEL_MAX {
        let sym = tables::tcoef_symbol(ev.last, ev.run, mag);
        book.write(w, sym);
        w.put_bit(ev.level < 0);
    } else {
        book.write(w, tables::TCOEF_ESCAPE);
        w.put_bit(ev.last);
        w.put_ue(ev.run as u32);
        w.put_se(ev.level as i32);
    }
}

/// Exact bit cost of [`write_tcoef`] without writing — used by rate
/// estimation.
pub fn tcoef_bits(ev: TcoefEvent) -> u32 {
    let mut w = BitWriter::new();
    write_tcoef(&mut w, ev);
    w.bit_len() as u32
}

/// Reads one TCOEF event.
///
/// # Errors
///
/// Propagates truncation errors, and reports
/// [`BitstreamError::ValueOutOfRange`] for an escaped event with
/// `level == 0` or an absurd run (corruption).
pub fn read_tcoef(r: &mut BitReader<'_>) -> Result<TcoefEvent, BitstreamError> {
    let book = tcoef_codebook();
    let sym = book.read(r)?;
    if sym == tables::TCOEF_ESCAPE {
        let last = r.get_bit()?;
        let run = r.get_ue()?;
        // A 64-coefficient block admits runs up to 63 (a lone coefficient
        // in the final scan position of an inter block).
        if run > 63 {
            return Err(BitstreamError::ValueOutOfRange {
                what: "escaped TCOEF run",
                value: run as i64,
            });
        }
        let level = r.get_se()?;
        if level == 0 || level.unsigned_abs() > 4096 {
            return Err(BitstreamError::ValueOutOfRange {
                what: "escaped TCOEF level",
                value: level as i64,
            });
        }
        Ok(TcoefEvent {
            last,
            run: run as u8,
            level: level as i16,
        })
    } else {
        let (last, run, mag) = tables::tcoef_unsymbol(sym);
        let neg = r.get_bit()?;
        Ok(TcoefEvent {
            last,
            run,
            level: if neg { -mag } else { mag },
        })
    }
}

/// Writes one motion-vector component (in integer pixels).
pub fn write_mvd(w: &mut BitWriter, v: i16) {
    let book = mvd_codebook();
    if v.abs() <= MVD_MAX {
        book.write(w, tables::mvd_symbol(v));
    } else {
        book.write(w, tables::MVD_ESCAPE);
        w.put_se(v as i32);
    }
}

/// Reads one motion-vector component.
///
/// # Errors
///
/// Propagates truncation; escaped components beyond ±2048 are reported as
/// corruption.
pub fn read_mvd(r: &mut BitReader<'_>) -> Result<i16, BitstreamError> {
    let book = mvd_codebook();
    let sym = book.read(r)?;
    if sym == tables::MVD_ESCAPE {
        let v = r.get_se()?;
        if v.unsigned_abs() > 2048 {
            return Err(BitstreamError::ValueOutOfRange {
                what: "escaped MVD",
                value: v as i64,
            });
        }
        Ok(v as i16)
    } else {
        Ok(tables::mvd_unsymbol(sym))
    }
}

/// Writes a 6-bit coded block pattern (bit 5..2 = luma blocks 0..3 in
/// raster order, bit 1 = Cb, bit 0 = Cr).
pub fn write_cbp(w: &mut BitWriter, cbp: u8) {
    debug_assert!(cbp < 64);
    cbp_codebook().write(w, cbp as usize);
}

/// Reads a coded block pattern.
///
/// # Errors
///
/// Propagates truncation errors.
pub fn read_cbp(r: &mut BitReader<'_>) -> Result<u8, BitstreamError> {
    Ok(cbp_codebook().read(r)? as u8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tcoef_regular_roundtrip() {
        let mut w = BitWriter::new();
        let events = [
            TcoefEvent {
                last: false,
                run: 0,
                level: 1,
            },
            TcoefEvent {
                last: false,
                run: 3,
                level: -2,
            },
            TcoefEvent {
                last: true,
                run: 14,
                level: 8,
            },
        ];
        for ev in events {
            write_tcoef(&mut w, ev);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for ev in events {
            assert_eq!(read_tcoef(&mut r).unwrap(), ev);
        }
    }

    #[test]
    fn tcoef_escape_roundtrip() {
        let mut w = BitWriter::new();
        let events = [
            TcoefEvent {
                last: false,
                run: 40,
                level: 1,
            },
            TcoefEvent {
                last: true,
                run: 0,
                level: 300,
            },
            TcoefEvent {
                last: true,
                run: 62,
                level: -2000,
            },
        ];
        for ev in events {
            write_tcoef(&mut w, ev);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for ev in events {
            assert_eq!(read_tcoef(&mut r).unwrap(), ev);
        }
    }

    #[test]
    fn common_events_cost_fewer_bits() {
        let common = TcoefEvent {
            last: false,
            run: 0,
            level: 1,
        };
        let rare = TcoefEvent {
            last: true,
            run: 14,
            level: 8,
        };
        let escaped = TcoefEvent {
            last: true,
            run: 30,
            level: 100,
        };
        assert!(tcoef_bits(common) < tcoef_bits(rare));
        assert!(tcoef_bits(rare) <= tcoef_bits(escaped));
        assert!(
            tcoef_bits(common) <= 5,
            "the most common event must be short"
        );
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_level_is_rejected() {
        let mut w = BitWriter::new();
        write_tcoef(
            &mut w,
            TcoefEvent {
                last: false,
                run: 0,
                level: 0,
            },
        );
    }

    #[test]
    fn mvd_roundtrip_full_regular_range() {
        let mut w = BitWriter::new();
        for v in -MVD_MAX..=MVD_MAX {
            write_mvd(&mut w, v);
        }
        write_mvd(&mut w, 500);
        write_mvd(&mut w, -731);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for v in -MVD_MAX..=MVD_MAX {
            assert_eq!(read_mvd(&mut r).unwrap(), v);
        }
        assert_eq!(read_mvd(&mut r).unwrap(), 500);
        assert_eq!(read_mvd(&mut r).unwrap(), -731);
    }

    #[test]
    fn zero_mv_is_the_shortest() {
        let len = |v: i16| {
            let mut w = BitWriter::new();
            write_mvd(&mut w, v);
            w.bit_len()
        };
        for v in [-16i16, -7, -1, 1, 3, 9, 16] {
            assert!(len(0) <= len(v), "mvd 0 must not cost more than {v}");
        }
    }

    #[test]
    fn cbp_roundtrip_all_patterns() {
        let mut w = BitWriter::new();
        for cbp in 0..64u8 {
            write_cbp(&mut w, cbp);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for cbp in 0..64u8 {
            assert_eq!(read_cbp(&mut r).unwrap(), cbp);
        }
    }

    #[test]
    fn corrupt_escape_level_detected() {
        // Hand-craft: escape codeword + last bit + ue(0 run) + se(0 level).
        let mut w = BitWriter::new();
        tcoef_codebook().write(&mut w, super::tables::TCOEF_ESCAPE);
        w.put_bit(true);
        w.put_ue(0);
        w.put_se(0); // illegal: zero level
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert!(matches!(
            read_tcoef(&mut r),
            Err(BitstreamError::ValueOutOfRange { .. })
        ));
    }
}
