//! Static frequency models and the lazily-built shared codebooks.
//!
//! Weights follow the qualitative statistics that shaped the H.263 tables:
//! coefficient events decay geometrically in RUN and LEVEL and LAST events
//! are rarer than non-LAST; motion-vector components decay geometrically in
//! magnitude with 0 most likely; coded block patterns favor "all luma, no
//! chroma" and "nothing coded". The exact constants only shape code
//! lengths — correctness needs only prefix-freeness, which the canonical
//! builder guarantees.

use super::huffman::Codebook;
use super::{TCOEF_LEVEL_MAX, TCOEF_RUN_MAX};
use std::sync::OnceLock;

/// Symbol id of the TCOEF escape codeword.
pub const TCOEF_ESCAPE: usize = 0;
/// Symbol id of the MVD escape codeword.
pub const MVD_ESCAPE: usize = 0;

const RUNS: usize = TCOEF_RUN_MAX as usize + 1; // 15
const LEVELS: usize = TCOEF_LEVEL_MAX as usize; // 8

/// Maps a regular (last, run, |level|) event to its symbol id (1-based;
/// 0 is the escape).
pub fn tcoef_symbol(last: bool, run: u8, mag: i16) -> usize {
    debug_assert!((run as usize) < RUNS);
    debug_assert!(mag >= 1 && (mag as usize) <= LEVELS);
    1 + ((last as usize * RUNS) + run as usize) * LEVELS + (mag as usize - 1)
}

/// Inverse of [`tcoef_symbol`].
pub fn tcoef_unsymbol(sym: usize) -> (bool, u8, i16) {
    debug_assert!(sym >= 1);
    let s = sym - 1;
    let mag = (s % LEVELS) as i16 + 1;
    let rest = s / LEVELS;
    let run = (rest % RUNS) as u8;
    let last = rest / RUNS == 1;
    (last, run, mag)
}

/// The shared TCOEF codebook (escape + 2·15·8 regular events).
pub fn tcoef_codebook() -> &'static Codebook {
    static BOOK: OnceLock<Codebook> = OnceLock::new();
    BOOK.get_or_init(|| {
        let mut weights = Vec::with_capacity(1 + 2 * RUNS * LEVELS);
        // Escape: comparable to a mid-rarity event so its code stays ~10 bits.
        weights.push(3_000_000u64);
        for last in [false, true] {
            for run in 0..RUNS {
                for level in 1..=LEVELS {
                    let w = 4.0e12
                        * 0.72f64.powi(run as i32)
                        * 0.40f64.powi(level as i32 - 1)
                        * if last { 0.12 } else { 1.0 };
                    weights.push((w as u64).max(1_000));
                }
            }
        }
        Codebook::from_weights(&weights)
    })
}

/// Maps an MVD component in `-16..=16` to its symbol id.
pub fn mvd_symbol(v: i16) -> usize {
    debug_assert!((-16..=16).contains(&v));
    (v + 16) as usize + 1
}

/// Inverse of [`mvd_symbol`].
pub fn mvd_unsymbol(sym: usize) -> i16 {
    debug_assert!(sym >= 1);
    sym as i16 - 1 - 16
}

/// The shared motion-vector-component codebook (escape + −16..=16).
pub fn mvd_codebook() -> &'static Codebook {
    static BOOK: OnceLock<Codebook> = OnceLock::new();
    BOOK.get_or_init(|| {
        let mut weights = Vec::with_capacity(34);
        weights.push(40u64); // escape: rarest
        for v in -16i32..=16 {
            let w = 1.0e9 * 0.60f64.powi(v.abs());
            weights.push((w as u64).max(50));
        }
        Codebook::from_weights(&weights)
    })
}

/// The shared coded-block-pattern codebook (64 patterns).
pub fn cbp_codebook() -> &'static Codebook {
    static BOOK: OnceLock<Codebook> = OnceLock::new();
    BOOK.get_or_init(|| {
        let mut weights = Vec::with_capacity(64);
        for cbp in 0u32..64 {
            let ones = cbp.count_ones() as i32;
            let zeros = 6 - ones;
            // Mixture: mass near "everything coded" and near "nothing
            // coded", the two regimes of low-QP inter coding.
            let dense = 1.0e9 * 0.55f64.powi(zeros);
            let sparse = 0.8e9 * 0.45f64.powi(ones);
            weights.push((dense + sparse) as u64 + 1);
        }
        Codebook::from_weights(&weights)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tcoef_symbol_mapping_roundtrips() {
        for last in [false, true] {
            for run in 0..=TCOEF_RUN_MAX {
                for mag in 1..=TCOEF_LEVEL_MAX {
                    let sym = tcoef_symbol(last, run, mag);
                    assert!((1..=2 * RUNS * LEVELS).contains(&sym));
                    assert_eq!(tcoef_unsymbol(sym), (last, run, mag));
                }
            }
        }
    }

    #[test]
    fn mvd_symbol_mapping_roundtrips() {
        for v in -16i16..=16 {
            assert_eq!(mvd_unsymbol(mvd_symbol(v)), v);
        }
    }

    #[test]
    fn codebooks_have_expected_sizes() {
        assert_eq!(tcoef_codebook().len(), 1 + 2 * RUNS * LEVELS);
        assert_eq!(mvd_codebook().len(), 34);
        assert_eq!(cbp_codebook().len(), 64);
    }

    #[test]
    fn codebooks_fit_the_length_budget() {
        assert!(tcoef_codebook().max_code_len() <= 28);
        assert!(mvd_codebook().max_code_len() <= 28);
        assert!(cbp_codebook().max_code_len() <= 28);
    }

    #[test]
    fn all_luma_cbp_is_short() {
        let book = cbp_codebook();
        let all = book.code_len(0b111111);
        let none = book.code_len(0b000000);
        let odd = book.code_len(0b010101);
        assert!(all <= odd);
        assert!(none <= odd);
    }
}
