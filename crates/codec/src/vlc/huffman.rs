//! Deterministic canonical Huffman codebooks.
//!
//! The codec's VLC tables are not copied from the H.263 annex; they are
//! *generated* — a canonical Huffman code built from a static frequency
//! model of each symbol class (coefficient events, motion vectors, coded
//! block patterns). This gives H.263-like code-length profiles while being
//! prefix-free **by construction**, and both the encoder and the decoder
//! derive the identical table from the same weights.

use crate::bitstream::{BitReader, BitWriter, BitstreamError};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One variable-length codeword: `len` bits, stored right-aligned in
/// `bits`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Code {
    /// Codeword value, right-aligned (the MSB of the codeword is bit
    /// `len-1`).
    pub bits: u32,
    /// Codeword length in bits, 1..=32.
    pub len: u8,
}

/// A canonical Huffman codebook over symbols `0..n`.
///
/// # Example
///
/// ```rust
/// use pbpair_codec::vlc::huffman::Codebook;
/// use pbpair_codec::bitstream::{BitReader, BitWriter};
///
/// # fn main() -> Result<(), pbpair_codec::bitstream::BitstreamError> {
/// // Three symbols; symbol 0 is twice as common as the others.
/// let book = Codebook::from_weights(&[4, 2, 2]);
/// let mut w = BitWriter::new();
/// book.write(&mut w, 2);
/// book.write(&mut w, 0);
/// let bytes = w.finish();
/// let mut r = BitReader::new(&bytes);
/// assert_eq!(book.read(&mut r)?, 2);
/// assert_eq!(book.read(&mut r)?, 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Codebook {
    codes: Vec<Code>,
    /// Symbols sorted canonically: by (length, symbol id).
    sorted_symbols: Vec<u32>,
    /// For each length `l`, the canonical value of the first code of that
    /// length, and the index into `sorted_symbols` where codes of that
    /// length begin. Lengths run 1..=MAX_CODE_LEN.
    first_code: [u32; Codebook::MAX_CODE_LEN + 1],
    count_of_len: [u32; Codebook::MAX_CODE_LEN + 1],
    first_index: [u32; Codebook::MAX_CODE_LEN + 1],
    max_len: u8,
}

impl Codebook {
    /// The longest codeword this builder accepts. Frequency models whose
    /// Huffman tree exceeds this are a bug in the model, not a runtime
    /// condition.
    pub const MAX_CODE_LEN: usize = 28;

    /// Builds the canonical codebook for the given symbol weights.
    ///
    /// Ties are broken deterministically (by symbol id), so every build
    /// from the same weights yields the same code — encoder and decoder can
    /// each build their own copy.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 2 symbols are given, if any weight is zero, or
    /// if the resulting tree exceeds [`Codebook::MAX_CODE_LEN`].
    pub fn from_weights(weights: &[u64]) -> Self {
        assert!(weights.len() >= 2, "a codebook needs at least two symbols");
        assert!(
            weights.iter().all(|&w| w > 0),
            "all symbol weights must be positive"
        );

        // Standard Huffman with a deterministic heap order: (weight, tie
        // counter). Internal nodes get fresh tie ids after all leaves so
        // builds are reproducible.
        #[derive(Debug)]
        enum Node {
            Leaf(u32),
            Internal(Box<Node>, Box<Node>),
        }
        let mut heap: BinaryHeap<Reverse<(u64, u32, usize)>> = BinaryHeap::new();
        let mut nodes: Vec<Option<Node>> = Vec::with_capacity(weights.len() * 2);
        for (i, &w) in weights.iter().enumerate() {
            nodes.push(Some(Node::Leaf(i as u32)));
            heap.push(Reverse((w, i as u32, i)));
        }
        let mut tie = weights.len() as u32;
        while heap.len() > 1 {
            let Reverse((wa, _, ia)) = heap.pop().expect("len > 1");
            let Reverse((wb, _, ib)) = heap.pop().expect("len > 1");
            let a = nodes[ia].take().expect("node taken once");
            let b = nodes[ib].take().expect("node taken once");
            nodes.push(Some(Node::Internal(Box::new(a), Box::new(b))));
            heap.push(Reverse((wa + wb, tie, nodes.len() - 1)));
            tie += 1;
        }
        let Reverse((_, _, root_idx)) = heap.pop().expect("non-empty");
        let root = nodes[root_idx].take().expect("root present");

        // Extract code lengths.
        let mut lengths = vec![0u8; weights.len()];
        let mut stack = vec![(root, 0u8)];
        while let Some((node, depth)) = stack.pop() {
            match node {
                Node::Leaf(sym) => {
                    // A 1-symbol degenerate tree cannot occur (len >= 2),
                    // so depth >= 1 here.
                    lengths[sym as usize] = depth.max(1);
                }
                Node::Internal(a, b) => {
                    stack.push((*a, depth + 1));
                    stack.push((*b, depth + 1));
                }
            }
        }
        let max_len = *lengths.iter().max().expect("non-empty");
        assert!(
            (max_len as usize) <= Codebook::MAX_CODE_LEN,
            "frequency model produced a {max_len}-bit code; flatten the weights"
        );

        Codebook::from_lengths(&lengths)
    }

    /// Builds the canonical codebook from explicit code lengths (must form
    /// a full prefix code, i.e. satisfy Kraft equality ≤ 1).
    ///
    /// # Panics
    ///
    /// Panics if the lengths violate the Kraft inequality.
    pub fn from_lengths(lengths: &[u8]) -> Self {
        let max_len = *lengths.iter().max().expect("non-empty") as usize;
        assert!(max_len <= Codebook::MAX_CODE_LEN);
        let kraft: u64 = lengths
            .iter()
            .map(|&l| 1u64 << (Codebook::MAX_CODE_LEN - l as usize))
            .sum();
        assert!(
            kraft <= 1u64 << Codebook::MAX_CODE_LEN,
            "code lengths violate the Kraft inequality"
        );

        // Canonical assignment: sort symbols by (length, id).
        let mut order: Vec<u32> = (0..lengths.len() as u32).collect();
        order.sort_by_key(|&s| (lengths[s as usize], s));

        let mut codes = vec![Code { bits: 0, len: 0 }; lengths.len()];
        let mut first_code = [0u32; Codebook::MAX_CODE_LEN + 1];
        let mut count_of_len = [0u32; Codebook::MAX_CODE_LEN + 1];
        let mut first_index = [0u32; Codebook::MAX_CODE_LEN + 1];
        for &l in lengths {
            count_of_len[l as usize] += 1;
        }
        let mut code = 0u32;
        let mut index = 0u32;
        for l in 1..=max_len {
            code <<= 1;
            first_code[l] = code;
            first_index[l] = index;
            code += count_of_len[l];
            index += count_of_len[l];
        }
        // Assign per-symbol codes in canonical order.
        let mut next = first_code;
        for &s in &order {
            let l = lengths[s as usize] as usize;
            codes[s as usize] = Code {
                bits: next[l],
                len: l as u8,
            };
            next[l] += 1;
        }

        Codebook {
            codes,
            sorted_symbols: order,
            first_code,
            count_of_len,
            first_index,
            max_len: max_len as u8,
        }
    }

    /// Number of symbols.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// Whether the codebook is empty (never true: builders require ≥ 2
    /// symbols).
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// The codeword for `symbol`.
    ///
    /// # Panics
    ///
    /// Panics if `symbol` is out of range.
    pub fn code(&self, symbol: usize) -> Code {
        self.codes[symbol]
    }

    /// Length in bits of `symbol`'s codeword — used by rate models without
    /// actually writing bits.
    pub fn code_len(&self, symbol: usize) -> u32 {
        self.codes[symbol].len as u32
    }

    /// Longest codeword length in the book.
    pub fn max_code_len(&self) -> u8 {
        self.max_len
    }

    /// Writes `symbol`'s codeword.
    ///
    /// # Panics
    ///
    /// Panics if `symbol` is out of range.
    pub fn write(&self, w: &mut BitWriter, symbol: usize) {
        let c = self.codes[symbol];
        w.put_bits(c.bits, c.len as u32);
    }

    /// Reads one symbol using canonical decoding (one compare per code
    /// length).
    ///
    /// # Errors
    ///
    /// [`BitstreamError::UnexpectedEnd`] on truncation. A bit pattern that
    /// matches no codeword cannot occur for a full code, but a non-full
    /// (Kraft < 1) book reports it as [`BitstreamError::ValueOutOfRange`].
    pub fn read(&self, r: &mut BitReader<'_>) -> Result<usize, BitstreamError> {
        let mut v = 0u32;
        for l in 1..=self.max_len as usize {
            v = (v << 1) | r.get_bit()? as u32;
            let cnt = self.count_of_len[l];
            if cnt > 0 && v >= self.first_code[l] && v < self.first_code[l] + cnt {
                let idx = self.first_index[l] + (v - self.first_code[l]);
                return Ok(self.sorted_symbols[idx as usize] as usize);
            }
        }
        Err(BitstreamError::ValueOutOfRange {
            what: "vlc codeword",
            value: v as i64,
        })
    }

    /// Expected code length in bits under the weights used at build time
    /// is not stored; this instead returns the mean codeword length over
    /// all symbols — a coarse sanity metric for tests.
    pub fn mean_code_len(&self) -> f64 {
        let total: u64 = self.codes.iter().map(|c| c.len as u64).sum();
        total as f64 / self.codes.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_codes_are_prefix_free() {
        let weights: Vec<u64> = (1..=40).map(|i| (i * i) as u64).collect();
        let book = Codebook::from_weights(&weights);
        for a in 0..book.len() {
            for b in 0..book.len() {
                if a == b {
                    continue;
                }
                let (ca, cb) = (book.code(a), book.code(b));
                if ca.len <= cb.len {
                    let prefix = cb.bits >> (cb.len - ca.len);
                    assert_ne!(prefix, ca.bits, "code {a} is a prefix of {b}");
                }
            }
        }
    }

    #[test]
    fn heavier_symbols_get_shorter_codes() {
        let book = Codebook::from_weights(&[1000, 100, 10, 1]);
        assert!(book.code_len(0) <= book.code_len(1));
        assert!(book.code_len(1) <= book.code_len(2));
        assert!(book.code_len(2) <= book.code_len(3));
    }

    #[test]
    fn roundtrip_every_symbol() {
        let weights: Vec<u64> = (0..257).map(|i| 1 + (i % 13) as u64 * 7).collect();
        let book = Codebook::from_weights(&weights);
        let mut w = BitWriter::new();
        for s in 0..book.len() {
            book.write(&mut w, s);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for s in 0..book.len() {
            assert_eq!(book.read(&mut r).unwrap(), s);
        }
    }

    #[test]
    fn builds_are_deterministic() {
        let weights: Vec<u64> = vec![5, 5, 5, 5, 3, 3, 2, 2, 1, 1];
        let a = Codebook::from_weights(&weights);
        let b = Codebook::from_weights(&weights);
        for s in 0..weights.len() {
            assert_eq!(a.code(s), b.code(s));
        }
    }

    #[test]
    fn two_symbol_book_uses_one_bit() {
        let book = Codebook::from_weights(&[7, 3]);
        assert_eq!(book.code_len(0), 1);
        assert_eq!(book.code_len(1), 1);
        assert_ne!(book.code(0).bits, book.code(1).bits);
    }

    #[test]
    fn kraft_equality_holds_for_huffman() {
        let weights: Vec<u64> = (1..=17).map(|i| i as u64 * 3 + 1).collect();
        let book = Codebook::from_weights(&weights);
        let kraft: f64 = (0..book.len())
            .map(|s| 2f64.powi(-(book.code_len(s) as i32)))
            .sum();
        assert!(
            (kraft - 1.0).abs() < 1e-9,
            "huffman codes are full: {kraft}"
        );
    }

    #[test]
    fn truncated_stream_reports_end() {
        let book = Codebook::from_weights(&[1, 1, 1, 1, 1]);
        let bytes: Vec<u8> = Vec::new();
        let mut r = BitReader::new(&bytes);
        assert!(matches!(
            book.read(&mut r),
            Err(BitstreamError::UnexpectedEnd)
        ));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_weight_rejected() {
        let _ = Codebook::from_weights(&[3, 0, 1]);
    }
}
