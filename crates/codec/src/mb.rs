//! Macroblock-level types shared by the encoder, decoder, and refresh
//! policies.

use serde::{Deserialize, Serialize};
use std::fmt;

/// An integer-pixel motion vector (luma units). Chroma prediction uses the
/// arithmetic half of each component.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MotionVector {
    /// Horizontal displacement in luma pixels (positive = rightward in the
    /// reference).
    pub x: i16,
    /// Vertical displacement in luma pixels.
    pub y: i16,
}

impl MotionVector {
    /// The zero vector.
    pub const ZERO: MotionVector = MotionVector { x: 0, y: 0 };

    /// Creates a vector.
    pub fn new(x: i16, y: i16) -> Self {
        MotionVector { x, y }
    }

    /// Whether both components are zero.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.x == 0 && self.y == 0
    }

    /// The chroma-plane vector: each component arithmetically halved
    /// (floor), matching the decoder exactly.
    #[inline]
    pub fn chroma(&self) -> MotionVector {
        MotionVector {
            x: self.x >> 1,
            y: self.y >> 1,
        }
    }

    /// L1 magnitude, used by rate-biased search.
    #[inline]
    pub fn l1(&self) -> u32 {
        self.x.unsigned_abs() as u32 + self.y.unsigned_abs() as u32
    }
}

impl fmt::Display for MotionVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.x, self.y)
    }
}

/// A motion vector with half-pixel precision: an integer part plus
/// half-sample offsets. Used when the encoder runs in half-pel mode
/// (H.263's default precision); the bitstream carries the vector in
/// half-pel units (`2·int + half`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SubPelVector {
    /// Integer-pixel part.
    pub int: MotionVector,
    /// Half-sample offset in x (+0.5 pixel when set).
    pub half_x: bool,
    /// Half-sample offset in y.
    pub half_y: bool,
}

impl SubPelVector {
    /// The zero vector.
    pub const ZERO: SubPelVector = SubPelVector {
        int: MotionVector::ZERO,
        half_x: false,
        half_y: false,
    };

    /// A purely integer vector.
    pub fn integer(int: MotionVector) -> Self {
        SubPelVector {
            int,
            half_x: false,
            half_y: false,
        }
    }

    /// Builds from half-pel units (`2·int + half` per component).
    pub fn from_half_units(hx: i16, hy: i16) -> Self {
        SubPelVector {
            int: MotionVector::new(hx.div_euclid(2), hy.div_euclid(2)),
            half_x: hx.rem_euclid(2) == 1,
            half_y: hy.rem_euclid(2) == 1,
        }
    }

    /// The vector in half-pel units.
    pub fn to_half_units(&self) -> (i16, i16) {
        (
            2 * self.int.x + self.half_x as i16,
            2 * self.int.y + self.half_y as i16,
        )
    }

    /// Whether the vector is exactly zero (no integer or half offset).
    pub fn is_zero(&self) -> bool {
        self.int.is_zero() && !self.half_x && !self.half_y
    }

    /// The chroma displacement in chroma half-pel units: the floor-halved
    /// luma half-pel vector (shared by encoder and decoder).
    pub fn chroma_half_units(&self) -> (i16, i16) {
        let (hx, hy) = self.to_half_units();
        (hx.div_euclid(2), hy.div_euclid(2))
    }
}

impl fmt::Display for SubPelVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (hx, hy) = self.to_half_units();
        write!(f, "({:.1},{:.1})", hx as f64 / 2.0, hy as f64 / 2.0)
    }
}

/// How a macroblock was coded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MbMode {
    /// Intra: coded from scratch, no temporal prediction. Serves as a
    /// refresh point for error propagation.
    Intra,
    /// Inter: motion-compensated prediction plus coded residual.
    Inter,
    /// Skipped: bit-free copy of the colocated reference macroblock
    /// (inter with zero vector and no residual).
    Skip,
}

impl MbMode {
    /// Whether this mode depends on the previous frame.
    pub fn is_predicted(&self) -> bool {
        !matches!(self, MbMode::Intra)
    }
}

/// Per-frame summary the encoder returns alongside the bitstream: the
/// series behind Figures 5(c)/6(b) (sizes) and the mode mix behind the
/// energy analysis.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrameStats {
    /// Intra-coded macroblocks in the frame.
    pub intra_mbs: u32,
    /// Inter-coded macroblocks in the frame.
    pub inter_mbs: u32,
    /// Skipped macroblocks in the frame.
    pub skip_mbs: u32,
    /// Motion-estimation searches actually performed.
    pub me_invocations: u32,
    /// Exact size of the encoded frame in bits.
    pub bits: u64,
    /// Bits spent on intra-coded macroblocks (COD/mode bits included).
    pub intra_bits: u64,
    /// Bits spent on inter-coded macroblocks.
    pub inter_bits: u64,
    /// Bits spent on skipped macroblocks (one COD bit each).
    pub skip_bits: u64,
}

impl FrameStats {
    /// Total macroblocks accounted for.
    pub fn total_mbs(&self) -> u32 {
        self.intra_mbs + self.inter_mbs + self.skip_mbs
    }

    /// Encoded size in bytes, rounded up — what gets packetized.
    pub fn bytes(&self) -> u64 {
        self.bits.div_ceil(8)
    }

    /// Fraction of macroblocks coded intra, `0.0..=1.0`.
    pub fn intra_ratio(&self) -> f64 {
        if self.total_mbs() == 0 {
            0.0
        } else {
            self.intra_mbs as f64 / self.total_mbs() as f64
        }
    }

    /// Bits not attributable to any macroblock — the picture header.
    pub fn header_bits(&self) -> u64 {
        self.bits
            .saturating_sub(self.intra_bits + self.inter_bits + self.skip_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chroma_vector_is_floor_halved() {
        assert_eq!(MotionVector::new(5, -5).chroma(), MotionVector::new(2, -3));
        assert_eq!(MotionVector::new(-4, 4).chroma(), MotionVector::new(-2, 2));
        assert_eq!(MotionVector::ZERO.chroma(), MotionVector::ZERO);
    }

    #[test]
    fn l1_magnitude() {
        assert_eq!(MotionVector::new(-3, 4).l1(), 7);
        assert_eq!(MotionVector::ZERO.l1(), 0);
    }

    #[test]
    fn subpel_half_unit_roundtrip() {
        for hx in -33i16..=33 {
            for hy in [-7i16, 0, 1, 12] {
                let v = SubPelVector::from_half_units(hx, hy);
                assert_eq!(v.to_half_units(), (hx, hy));
            }
        }
        // Negative half-unit values decompose with floor semantics.
        let v = SubPelVector::from_half_units(-5, 3);
        assert_eq!(v.int, MotionVector::new(-3, 1));
        assert!(v.half_x && v.half_y);
    }

    #[test]
    fn subpel_zero_and_display() {
        assert!(SubPelVector::ZERO.is_zero());
        assert!(!SubPelVector::from_half_units(0, 1).is_zero());
        assert_eq!(
            SubPelVector::from_half_units(5, -3).to_string(),
            "(2.5,-1.5)"
        );
        assert_eq!(
            SubPelVector::integer(MotionVector::new(2, 2)).to_half_units(),
            (4, 4)
        );
    }

    #[test]
    fn subpel_chroma_halving() {
        // Luma (+2.5, -1.5) → chroma (+1.25, -0.75) floored to half-pel
        // grid: (+1.0, -1.0) in chroma pixels = (2, -2)... in half units
        // floor(5/2)=2, floor(-3/2)=-2.
        let v = SubPelVector::from_half_units(5, -3);
        assert_eq!(v.chroma_half_units(), (2, -2));
    }

    #[test]
    fn mode_prediction_dependence() {
        assert!(!MbMode::Intra.is_predicted());
        assert!(MbMode::Inter.is_predicted());
        assert!(MbMode::Skip.is_predicted());
    }

    #[test]
    fn frame_stats_aggregates() {
        let s = FrameStats {
            intra_mbs: 25,
            inter_mbs: 50,
            skip_mbs: 24,
            me_invocations: 74,
            bits: 1001,
            intra_bits: 600,
            inter_bits: 340,
            skip_bits: 24,
        };
        assert_eq!(s.total_mbs(), 99);
        assert_eq!(s.bytes(), 126);
        assert!((s.intra_ratio() - 25.0 / 99.0).abs() < 1e-12);
        assert_eq!(s.header_bits(), 1001 - 600 - 340 - 24);
    }
}
