//! Shared fixtures for the Criterion benchmark suites.
//!
//! The benches live in `benches/`:
//!
//! * `kernels` — codec primitives (DCT, SAD, search strategies, quantizer,
//!   VLC), the per-operation costs behind the energy model;
//! * `encode_schemes` — per-frame encode cost of every refresh scheme, the
//!   wall-clock analogue of Figure 5(d);
//! * `pipeline_figures` — one end-to-end pipeline cell per paper figure
//!   (Fig 5 cell, Fig 6 scripted-loss cell, §4.3/§4.4 sweep points);
//! * `ablations` — the DESIGN.md ablations: early vs late mode decision,
//!   σ-aware search on/off, similarity factor on/off, full vs three-step
//!   search.

use pbpair::{PbpairConfig, PbpairPolicy};
use pbpair_codec::{Encoder, EncoderConfig, RefreshPolicy};
use pbpair_media::synth::{MotionClass, SyntheticSequence};
use pbpair_media::{Frame, VideoFormat};

/// Number of frames used by the per-scheme encode benches — enough for
/// the refresh schedules to reach steady state, small enough for quick
/// iterations.
pub const BENCH_FRAMES: usize = 8;

/// Pre-renders `n` frames of a sequence class (deterministic seed).
pub fn frames(class: MotionClass, n: usize) -> Vec<Frame> {
    let mut seq = SyntheticSequence::for_class(class, 2005);
    (0..n).map(|_| seq.next_frame()).collect()
}

/// Encodes the given frames under a fresh encoder; returns total encoded
/// bytes so benches have a value to black-box.
pub fn encode_all(frames: &[Frame], cfg: EncoderConfig, policy: &mut dyn RefreshPolicy) -> usize {
    let mut enc = Encoder::new(cfg);
    frames
        .iter()
        .map(|f| enc.encode_frame(f, policy).data.len())
        .sum()
}

/// A PBPAIR policy at the evaluation's default operating point.
pub fn default_pbpair() -> PbpairPolicy {
    PbpairPolicy::new(
        VideoFormat::QCIF,
        PbpairConfig {
            intra_th: 0.93,
            plr: 0.10,
            ..PbpairConfig::default()
        },
    )
    .expect("valid default config")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        let fs = frames(MotionClass::LowAkiyo, 3);
        assert_eq!(fs.len(), 3);
        let mut policy = default_pbpair();
        let bytes = encode_all(&fs, EncoderConfig::default(), &mut policy);
        assert!(bytes > 0);
    }
}
