//! Codec-kernel microbenchmarks: the primitive operations whose relative
//! costs the energy model encodes. Running this suite is how the
//! `pbpair-energy` profile constants were sanity-checked (SAD ops must be
//! a few cycles; a DCT block ~3 orders of magnitude more).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pbpair_bench::frames;
use pbpair_codec::bitstream::{BitReader, BitWriter};
use pbpair_codec::me::{sad_mb, search, MeConfig, SearchStrategy};
use pbpair_codec::quant::{dequantize_block, quantize_block, Qp};
use pbpair_codec::vlc::{read_tcoef, write_tcoef, TcoefEvent};
use pbpair_codec::{dct, zigzag, MotionVector};
use pbpair_media::synth::MotionClass;
use pbpair_media::MbIndex;

fn bench_dct(c: &mut Criterion) {
    let block: [i32; 64] = std::array::from_fn(|i| ((i * 37) % 255) as i32 - 128);
    let mut freq = [0i32; 64];
    c.bench_function("dct/forward_8x8", |b| {
        b.iter(|| dct::forward(black_box(&block), &mut freq))
    });
    dct::forward(&block, &mut freq);
    let mut back = [0i32; 64];
    c.bench_function("dct/inverse_8x8", |b| {
        b.iter(|| dct::inverse(black_box(&freq), &mut back))
    });
}

fn bench_sad_and_search(c: &mut Criterion) {
    let fs = frames(MotionClass::MediumForeman, 2);
    let (cur, reference) = (fs[1].y(), fs[0].y());
    let mb = MbIndex::new(4, 5);
    c.bench_function("me/sad_16x16", |b| {
        b.iter(|| {
            sad_mb(
                black_box(cur),
                black_box(reference),
                mb,
                MotionVector::new(3, -2),
            )
        })
    });
    for (name, strategy) in [
        ("three_step", SearchStrategy::ThreeStep),
        ("full", SearchStrategy::Full),
    ] {
        let cfg = MeConfig {
            search_range: 15,
            strategy,
        };
        c.bench_function(format!("me/search_{name}_pm15"), |b| {
            b.iter(|| search(black_box(cur), black_box(reference), mb, cfg, &mut |_| 0))
        });
    }
}

fn bench_quant(c: &mut Criterion) {
    let coefs: [i32; 64] = std::array::from_fn(|i| (i as i32 - 32) * 13);
    let qp = Qp::new(8).unwrap();
    c.bench_function("quant/quantize_block", |b| {
        b.iter(|| quantize_block(black_box(&coefs), qp, false))
    });
    let levels = quantize_block(&coefs, qp, false);
    c.bench_function("quant/dequantize_block", |b| {
        b.iter(|| dequantize_block(black_box(&levels), qp, false))
    });
}

fn bench_vlc(c: &mut Criterion) {
    let events: Vec<TcoefEvent> = (0..32)
        .map(|i| TcoefEvent {
            last: i == 31,
            run: (i % 5) as u8,
            level: ((i % 7) as i16 + 1) * if i % 2 == 0 { 1 } else { -1 },
        })
        .collect();
    c.bench_function("vlc/write_32_tcoef_events", |b| {
        b.iter(|| {
            let mut w = BitWriter::new();
            for &ev in &events {
                write_tcoef(&mut w, ev);
            }
            w.finish()
        })
    });
    let mut w = BitWriter::new();
    for &ev in &events {
        write_tcoef(&mut w, ev);
    }
    let bytes = w.finish();
    c.bench_function("vlc/read_32_tcoef_events", |b| {
        b.iter(|| {
            let mut r = BitReader::new(black_box(&bytes));
            for _ in 0..events.len() {
                let _ = read_tcoef(&mut r).unwrap();
            }
        })
    });
}

fn bench_subpel_and_deblock(c: &mut Criterion) {
    use pbpair_codec::deblock;
    use pbpair_codec::mb::SubPelVector;
    use pbpair_codec::mc::predict_luma_subpel;

    let fs = frames(MotionClass::MediumForeman, 1);
    let reference = fs[0].y();
    let mb = MbIndex::new(4, 5);
    let mut out = [0u8; 256];
    c.bench_function("mc/predict_luma_integer", |b| {
        b.iter(|| {
            predict_luma_subpel(
                black_box(reference),
                mb,
                SubPelVector::integer(MotionVector::new(3, -2)),
                &mut out,
            )
        })
    });
    c.bench_function("mc/predict_luma_half_pel_diagonal", |b| {
        b.iter(|| {
            predict_luma_subpel(
                black_box(reference),
                mb,
                SubPelVector::from_half_units(7, -5),
                &mut out,
            )
        })
    });
    let mut plane = reference.clone();
    c.bench_function("deblock/filter_qcif_luma", |b| {
        b.iter(|| deblock::filter_plane(black_box(&mut plane), 4))
    });
}

fn bench_zigzag(c: &mut Criterion) {
    let natural: [i32; 64] = std::array::from_fn(|i| i as i32);
    c.bench_function("zigzag/scan_unscan", |b| {
        b.iter(|| zigzag::unscan(&zigzag::scan(black_box(&natural))))
    });
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(30);
    targets = bench_dct, bench_sad_and_search, bench_quant, bench_vlc, bench_subpel_and_deblock, bench_zigzag
}
criterion_main!(kernels);
