//! Telemetry and tracing overhead guard.
//!
//! The telemetry contract promises that *disabled* instrumentation is
//! free: a `Telemetry::disabled()` handle reduces every flush to a
//! branch on a `None`, and a `Tracer::disabled()` handle does the same
//! for causal-trace emission; a `TimeSeries::disabled()` ring reduces
//! its per-round `tick_due` check to the same. This bench prices five
//! encode configurations — nothing wired, disabled telemetry, a
//! disabled tracer, a disabled time-series tick path, and an enabled
//! registry — and **fails** (exit 1) if any disabled mode costs more
//! than the budgeted fraction of the plain encode hot loop.
//!
//! Run: `cargo bench -p pbpair-bench --bench telemetry`
//! The gate (percent) can be widened for noisy machines via
//! `PBPAIR_TELEMETRY_GATE_PCT` (default 2).

use pbpair_bench::{default_pbpair, frames, BENCH_FRAMES};
use pbpair_codec::{Encoder, EncoderConfig};
use pbpair_media::Frame;
use pbpair_telemetry::timeseries::TimeSeries;
use pbpair_telemetry::Telemetry;
use pbpair_trace::Tracer;
use std::hint::black_box;
use std::time::Instant;

/// One measured encode pass; telemetry and tracing wired per args.
fn encode_pass(frames: &[Frame], tel: Option<&Telemetry>, trace: Option<&Tracer>) -> usize {
    let mut enc = Encoder::new(EncoderConfig::default());
    if let Some(tel) = tel {
        enc.set_telemetry(tel);
    }
    if let Some(trace) = trace {
        enc.set_tracer(trace);
    }
    let mut policy = default_pbpair();
    frames
        .iter()
        .map(|f| enc.encode_frame(f, &mut policy).data.len())
        .sum()
}

/// The encode pass plus the observability plane's per-round check
/// against a disabled ring — the exact branch the serve manager takes
/// every round when no time-series is configured.
fn encode_pass_with_series(frames: &[Frame], series: &TimeSeries) -> usize {
    let mut enc = Encoder::new(EncoderConfig::default());
    let mut policy = default_pbpair();
    frames
        .iter()
        .enumerate()
        .map(|(round, f)| {
            let len = enc.encode_frame(f, &mut policy).data.len();
            if black_box(series.tick_due(round as u64)) {
                // Unreachable for a disabled ring; keeps the branch live.
                len + series.len()
            } else {
                len
            }
        })
        .sum()
}

/// One timed invocation, in seconds.
fn timed<F: FnMut() -> usize>(f: &mut F) -> f64 {
    let t = Instant::now();
    black_box(f());
    t.elapsed().as_secs_f64()
}

fn main() {
    // `cargo bench`/`cargo test` pass harness flags; a request to list
    // tests must not run the guard.
    if std::env::args().any(|a| a == "--list") {
        return;
    }
    let gate_pct: f64 = std::env::var("PBPAIR_TELEMETRY_GATE_PCT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2.0);

    let fs = frames(
        pbpair_media::synth::MotionClass::MediumForeman,
        6 * BENCH_FRAMES,
    );
    let disabled = Telemetry::disabled();
    let enabled = Telemetry::with_shards(1);
    let tracer_off = Tracer::disabled();
    let series_off = TimeSeries::disabled();

    // Warm-up: page in code, ramp the CPU governor.
    encode_pass(&fs, None, None);
    encode_pass(&fs, Some(&enabled), None);

    // Time the four modes back-to-back each round and compare *within*
    // the round: the per-round ratio cancels frequency drift between
    // rounds. Each pass is long enough (~tens of ms) that interference
    // averages out inside it; the median over rounds (with the order
    // alternated to cancel position effects) discards the rest.
    let reps = 9;
    let mut plain_s = f64::INFINITY;
    let mut disabled_ratios = Vec::with_capacity(reps);
    let mut tracer_ratios = Vec::with_capacity(reps);
    let mut series_ratios = Vec::with_capacity(reps);
    let mut enabled_ratios = Vec::with_capacity(reps);
    for rep in 0..reps {
        let (p, d, t, s, e);
        if rep % 2 == 0 {
            p = timed(&mut || encode_pass(&fs, None, None));
            d = timed(&mut || encode_pass(&fs, Some(&disabled), None));
            t = timed(&mut || encode_pass(&fs, None, Some(&tracer_off)));
            s = timed(&mut || encode_pass_with_series(&fs, &series_off));
            e = timed(&mut || encode_pass(&fs, Some(&enabled), None));
        } else {
            e = timed(&mut || encode_pass(&fs, Some(&enabled), None));
            s = timed(&mut || encode_pass_with_series(&fs, &series_off));
            t = timed(&mut || encode_pass(&fs, None, Some(&tracer_off)));
            d = timed(&mut || encode_pass(&fs, Some(&disabled), None));
            p = timed(&mut || encode_pass(&fs, None, None));
        }
        plain_s = plain_s.min(p);
        disabled_ratios.push(d / p);
        tracer_ratios.push(t / p);
        series_ratios.push(s / p);
        enabled_ratios.push(e / p);
    }
    let median = |v: &mut Vec<f64>| {
        v.sort_by(|a, b| a.total_cmp(b));
        v[v.len() / 2]
    };
    let disabled_s = plain_s * median(&mut disabled_ratios);
    let tracer_s = plain_s * median(&mut tracer_ratios);
    let series_s = plain_s * median(&mut series_ratios);
    let enabled_s = plain_s * median(&mut enabled_ratios);

    let pct = |t: f64| (t - plain_s) / plain_s * 100.0;
    println!(
        "telemetry overhead guard ({} frames, best of {reps}):",
        fs.len()
    );
    println!("  no telemetry       {:>9.3} ms", plain_s * 1e3);
    println!(
        "  disabled handle    {:>9.3} ms  ({:+.2}%)",
        disabled_s * 1e3,
        pct(disabled_s)
    );
    println!(
        "  disabled tracer    {:>9.3} ms  ({:+.2}%)",
        tracer_s * 1e3,
        pct(tracer_s)
    );
    println!(
        "  disabled series    {:>9.3} ms  ({:+.2}%)",
        series_s * 1e3,
        pct(series_s)
    );
    println!(
        "  enabled registry   {:>9.3} ms  ({:+.2}%)",
        enabled_s * 1e3,
        pct(enabled_s)
    );

    if pct(disabled_s) > gate_pct {
        eprintln!(
            "FAIL: disabled-mode telemetry costs {:.2}% (> {gate_pct}% budget)",
            pct(disabled_s)
        );
        std::process::exit(1);
    }
    if pct(tracer_s) > gate_pct {
        eprintln!(
            "FAIL: disabled-mode tracing costs {:.2}% (> {gate_pct}% budget)",
            pct(tracer_s)
        );
        std::process::exit(1);
    }
    if pct(series_s) > gate_pct {
        eprintln!(
            "FAIL: disabled-mode time-series tick path costs {:.2}% (> {gate_pct}% budget)",
            pct(series_s)
        );
        std::process::exit(1);
    }
    println!("disabled-mode overhead within {gate_pct}% budget");
}
