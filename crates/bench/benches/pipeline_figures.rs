//! End-to-end pipeline cells, one group per paper figure. These are the
//! benchmark-harness counterparts of the `pbpair-eval` binaries: the
//! binaries regenerate the figures' *numbers*; these measure the cost of
//! producing one cell of each, so regressions in any pipeline stage
//! (codec, schemes, netsim, metrics) surface here.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pbpair::{PbpairConfig, SchemeSpec};
use pbpair_codec::EncoderConfig;
use pbpair_eval::pipeline::{run, LossSpec, RunConfig, SequenceSpec};
use pbpair_media::synth::MotionClass;

const FRAMES: usize = 8;

fn cell(scheme: SchemeSpec, loss: LossSpec) -> RunConfig {
    RunConfig {
        scheme,
        sequence: SequenceSpec::Synthetic {
            class: MotionClass::MediumForeman,
            seed: 2005,
        },
        frames: FRAMES,
        encoder: EncoderConfig::default(),
        loss,
        mtu: 1400,
    }
}

/// Figure 5 cells: scheme × uniform 10% loss.
fn bench_fig5_cells(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_cell");
    for spec in [
        SchemeSpec::No,
        SchemeSpec::Pbpair(PbpairConfig::default()),
        SchemeSpec::Pgop(3),
        SchemeSpec::Gop(3),
        SchemeSpec::Air(24),
    ] {
        let cfg = cell(
            spec,
            LossSpec::Uniform {
                rate: 0.10,
                seed: 77,
            },
        );
        group.bench_function(spec.name(), |b| {
            b.iter(|| run(black_box(&cfg)).unwrap().total_bytes)
        });
    }
    group.finish();
}

/// Figure 6 cell: scripted loss events on a per-frame basis.
fn bench_fig6_cell(c: &mut Criterion) {
    let cfg = cell(
        SchemeSpec::Pbpair(PbpairConfig::default()),
        LossSpec::Scripted {
            lost_frames: vec![2, 5],
        },
    );
    c.bench_function("fig6_cell/pbpair_scripted_loss", |b| {
        b.iter(|| {
            let r = run(black_box(&cfg)).unwrap();
            r.quality.psnr_series().len()
        })
    });
}

/// §4.3/§4.4 sweep points: the boundary operating points.
fn bench_sweep_points(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep_point");
    for (name, th) in [("th_0", 0.0), ("th_0_9", 0.9), ("th_1", 1.0)] {
        let cfg = cell(
            SchemeSpec::Pbpair(PbpairConfig {
                intra_th: th,
                ..PbpairConfig::default()
            }),
            LossSpec::Uniform {
                rate: 0.10,
                seed: 77,
            },
        );
        group.bench_function(name, |b| {
            b.iter(|| run(black_box(&cfg)).unwrap().total_bytes)
        });
    }
    group.finish();
}

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(10);
    targets = bench_fig5_cells, bench_fig6_cell, bench_sweep_points
}
criterion_main!(figures);
