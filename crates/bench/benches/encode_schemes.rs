//! Per-scheme encode cost — the wall-clock analogue of Figure 5(d).
//!
//! Each bench encodes the same 8-frame foreman-class clip under one
//! refresh scheme. Because motion estimation dominates encode time just
//! as it dominates modeled energy, the *ordering* of these timings mirrors
//! the paper's energy bars: PBPAIR ≈ PGOP < GOP < AIR ≈ NO.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pbpair::{build_policy, PbpairConfig, SchemeSpec};
use pbpair_bench::{encode_all, frames, BENCH_FRAMES};
use pbpair_codec::EncoderConfig;
use pbpair_media::synth::MotionClass;
use pbpair_media::VideoFormat;

fn bench_schemes(c: &mut Criterion) {
    let fs = frames(MotionClass::MediumForeman, BENCH_FRAMES);
    let mut group = c.benchmark_group("encode_8_frames");
    for spec in [
        SchemeSpec::No,
        SchemeSpec::Pbpair(PbpairConfig {
            intra_th: 0.93,
            ..PbpairConfig::default()
        }),
        SchemeSpec::Pgop(3),
        SchemeSpec::Gop(3),
        SchemeSpec::Air(24),
    ] {
        group.bench_function(spec.name(), |b| {
            b.iter(|| {
                let mut policy = build_policy(spec, VideoFormat::QCIF).unwrap();
                encode_all(black_box(&fs), EncoderConfig::paper(), policy.as_mut())
            })
        });
    }
    group.finish();
}

fn bench_sequera_classes(c: &mut Criterion) {
    // PBPAIR cost across the three workload classes (content sensitivity).
    let mut group = c.benchmark_group("pbpair_by_class");
    for class in [
        MotionClass::LowAkiyo,
        MotionClass::MediumForeman,
        MotionClass::HighGarden,
    ] {
        let fs = frames(class, BENCH_FRAMES);
        group.bench_function(class.label(), |b| {
            b.iter(|| {
                let mut policy = pbpair_bench::default_pbpair();
                encode_all(black_box(&fs), EncoderConfig::default(), &mut policy)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = schemes;
    config = Criterion::default().sample_size(10);
    targets = bench_schemes, bench_sequera_classes
}
criterion_main!(schemes);
