//! Ablation benchmarks for the design choices DESIGN.md calls out.
//!
//! Each group prices one PBPAIR design decision by timing the encoder
//! with the decision enabled vs disabled (encode time tracks the modeled
//! energy because motion estimation dominates both):
//!
//! 1. `early_vs_late` — the pre-ME mode decision (the paper's energy
//!    contribution) vs deciding after the search (AIR's structure);
//! 2. `sigma_bias` — the σ-aware search cost (λ = 1) vs plain SAD (λ = 0);
//! 3. `similarity` — the content-aware similarity factor vs the Equation 3
//!    approximation;
//! 4. `search_strategy` — full search vs three-step under PBPAIR.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pbpair::schemes::LatePbpairPolicy;
use pbpair::{PbpairConfig, PbpairPolicy, SimilarityModel};
use pbpair_bench::{encode_all, frames, BENCH_FRAMES};
use pbpair_codec::{EncoderConfig, MeConfig, SearchStrategy};
use pbpair_media::synth::MotionClass;
use pbpair_media::VideoFormat;

fn base_cfg() -> PbpairConfig {
    PbpairConfig {
        intra_th: 0.93,
        plr: 0.10,
        ..PbpairConfig::default()
    }
}

fn bench_early_vs_late(c: &mut Criterion) {
    let fs = frames(MotionClass::MediumForeman, BENCH_FRAMES);
    let enc_cfg = EncoderConfig::paper();
    let mut group = c.benchmark_group("ablation_early_vs_late");
    group.bench_function("early_decision_pbpair", |b| {
        b.iter(|| {
            let mut p = PbpairPolicy::new(VideoFormat::QCIF, base_cfg()).unwrap();
            encode_all(black_box(&fs), enc_cfg, &mut p)
        })
    });
    group.bench_function("late_decision_ablation", |b| {
        b.iter(|| {
            let mut p = LatePbpairPolicy::new(VideoFormat::QCIF, base_cfg()).unwrap();
            encode_all(black_box(&fs), enc_cfg, &mut p)
        })
    });
    group.finish();
}

fn bench_sigma_bias(c: &mut Criterion) {
    let fs = frames(MotionClass::MediumForeman, BENCH_FRAMES);
    let enc_cfg = EncoderConfig::default();
    let mut group = c.benchmark_group("ablation_sigma_bias");
    for (name, lambda) in [("sigma_aware", 1.0), ("plain_sad", 0.0)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut p = PbpairPolicy::new(
                    VideoFormat::QCIF,
                    PbpairConfig {
                        lambda,
                        ..base_cfg()
                    },
                )
                .unwrap();
                encode_all(black_box(&fs), enc_cfg, &mut p)
            })
        });
    }
    group.finish();
}

fn bench_similarity(c: &mut Criterion) {
    let fs = frames(MotionClass::LowAkiyo, BENCH_FRAMES);
    let enc_cfg = EncoderConfig::default();
    let mut group = c.benchmark_group("ablation_similarity");
    for (name, model) in [
        (
            "copy_concealment",
            SimilarityModel::default_copy_concealment(),
        ),
        ("eq3_no_similarity", SimilarityModel::None),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut p = PbpairPolicy::new(
                    VideoFormat::QCIF,
                    PbpairConfig {
                        similarity: model,
                        ..base_cfg()
                    },
                )
                .unwrap();
                encode_all(black_box(&fs), enc_cfg, &mut p)
            })
        });
    }
    group.finish();
}

fn bench_search_strategy(c: &mut Criterion) {
    let fs = frames(MotionClass::HighGarden, BENCH_FRAMES);
    let mut group = c.benchmark_group("ablation_search_strategy");
    for (name, strategy) in [
        ("full_search", SearchStrategy::Full),
        ("three_step", SearchStrategy::ThreeStep),
    ] {
        let enc_cfg = EncoderConfig {
            me: MeConfig {
                search_range: 15,
                strategy,
            },
            ..EncoderConfig::default()
        };
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut p = PbpairPolicy::new(VideoFormat::QCIF, base_cfg()).unwrap();
                encode_all(black_box(&fs), enc_cfg, &mut p)
            })
        });
    }
    group.finish();
}

fn bench_half_pel(c: &mut Criterion) {
    let fs = frames(MotionClass::HighGarden, BENCH_FRAMES);
    let mut group = c.benchmark_group("ablation_half_pel");
    for (name, half_pel) in [("integer_pel", false), ("half_pel", true)] {
        let enc_cfg = EncoderConfig {
            half_pel,
            ..EncoderConfig::default()
        };
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut p = PbpairPolicy::new(VideoFormat::QCIF, base_cfg()).unwrap();
                encode_all(black_box(&fs), enc_cfg, &mut p)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = ablations;
    config = Criterion::default().sample_size(10);
    targets = bench_early_vs_late, bench_sigma_bias, bench_similarity, bench_search_strategy, bench_half_pel
}
criterion_main!(ablations);
