//! Serving-layer benchmarks: fleet throughput under the work-stealing
//! pool, single-worker vs multi-worker on the same session load, and
//! the cost of one full session frame step.
//!
//! Pacing is disabled here — a benchmark must measure compute, not
//! modeled transmission sleeps.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pbpair_serve::{run, ServeConfig, Session, SessionConfig};

fn fleet_cfg(sessions: usize, workers: usize) -> ServeConfig {
    ServeConfig {
        sessions,
        frames: 8,
        workers,
        seed: 1234,
        pacing_us: 0,
        ..ServeConfig::default()
    }
}

fn bench_fleet(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_fleet");
    group.sample_size(10);
    for (sessions, workers) in [(4, 1), (4, 4), (8, 4)] {
        group.bench_function(format!("{sessions}sess_{workers}w"), |b| {
            let cfg = fleet_cfg(sessions, workers);
            b.iter(|| run(black_box(&cfg)).expect("valid config"))
        });
    }
    group.finish();
}

fn bench_session_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_session");
    group.sample_size(20);
    group.bench_function("step_frame", |b| {
        let mut session = Session::new(SessionConfig::standard(0, 42)).expect("valid config");
        b.iter(|| black_box(session.step_frame()))
    });
    group.bench_function("step_frame_fec", |b| {
        let mut cfg = SessionConfig::standard(0, 42);
        cfg.mtu = 300;
        cfg.fec_group = Some(4);
        let mut session = Session::new(cfg).expect("valid config");
        b.iter(|| black_box(session.step_frame()))
    });
    group.finish();
}

criterion_group!(benches, bench_fleet, bench_session_step);
criterion_main!(benches);
