//! A work-stealing thread pool on `std` primitives only.
//!
//! The serving layer schedules one job per (session, frame); sessions
//! have wildly different per-frame costs (a high-motion garden session
//! encodes several times slower than a static akiyo one), so static
//! partitioning leaves workers idle. The classic fix is work stealing:
//!
//! * every worker owns a deque; jobs submitted with an affinity hint
//!   land there (sessions keep returning to the same worker while the
//!   fleet is balanced — warm caches),
//! * a global injector takes hint-less overflow work,
//! * an idle worker drains its own deque back-to-front (newest first),
//!   then the injector, then **steals from the front** of its siblings'
//!   deques — the oldest, coldest jobs, which is the end the owner is
//!   not touching.
//!
//! The pool is bounded: at most `queue_capacity` jobs may be in flight
//! (queued + running), and [`WorkStealingPool::submit`] **blocks** when
//! the bound is hit. That blocking is the backpressure signal the
//! session manager leans on — a producer that outruns the fleet is
//! stalled instead of ballooning the queues.
//!
//! The slice-parallel encoder borrows the same pool through
//! [`WorkStealingPool::run_scoped`], which accepts non-`'static` jobs
//! and blocks until every one of them has completed — a structured
//! fork/join on top of the streaming scheduler.
//!
//! Everything is `Mutex` + `Condvar`, in the same spirit as the
//! crossbeam-free batch runner in `pbpair-eval`; the workspace is
//! offline and carries no external scheduler crates.

use pbpair_telemetry::{Counter, Gauge, Telemetry};
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A unit of work: boxed closure, run exactly once on some worker.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

/// Shared pool state guarded by the central mutex.
struct Inner {
    /// Hint-less jobs any worker may take.
    injector: VecDeque<Job>,
    /// Jobs in flight: queued (injector + all locals) plus running.
    in_flight: usize,
    /// Lifetime totals, for observability.
    submitted: u64,
    /// Jobs executed by a worker other than the submit hint — how often
    /// stealing (or injector pickup) actually rebalanced load.
    migrated: u64,
    shutdown: bool,
}

struct Shared {
    inner: Mutex<Inner>,
    /// Signalled when work arrives or shutdown begins.
    work: Condvar,
    /// Signalled when `in_flight` drops below capacity.
    space: Condvar,
    /// Signalled when `in_flight` reaches zero.
    idle: Condvar,
    /// Per-worker deques. Owner pops from the back, thieves steal from
    /// the front. Separate locks so stealing never contends with the
    /// central mutex.
    locals: Vec<Mutex<VecDeque<(usize, Job)>>>,
    capacity: usize,
    /// Scheduler telemetry (timing scope: queue depth and steal counts
    /// are scheduling artifacts, never part of the deterministic report).
    tel: Option<PoolTelemetry>,
}

/// Timing-scope handles the pool updates as it schedules.
struct PoolTelemetry {
    /// Jobs in flight, sampled at each submit (gauge: last + max).
    queue_depth: Gauge,
    /// Jobs executed away from their submit hint.
    steals: Counter,
}

/// Fixed-size work-stealing pool. Dropping the pool shuts it down and
/// joins every worker (queued jobs still run first).
pub struct WorkStealingPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkStealingPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkStealingPool")
            .field("workers", &self.workers())
            .field("capacity", &self.shared.capacity)
            .finish()
    }
}

impl WorkStealingPool {
    /// Spawns `workers` threads with an in-flight bound of
    /// `queue_capacity` jobs.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0` or `queue_capacity == 0`.
    pub fn new(workers: usize, queue_capacity: usize) -> Self {
        WorkStealingPool::with_telemetry(workers, queue_capacity, &Telemetry::disabled())
    }

    /// Like [`WorkStealingPool::new`], but reporting queue depth
    /// (`serve.queue_depth` gauge) and steals (`serve.steals` timing
    /// counter) into the given telemetry context.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0` or `queue_capacity == 0`.
    pub fn with_telemetry(workers: usize, queue_capacity: usize, tel: &Telemetry) -> Self {
        assert!(workers > 0, "pool needs at least one worker");
        assert!(queue_capacity > 0, "queue capacity must be positive");
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                injector: VecDeque::new(),
                in_flight: 0,
                submitted: 0,
                migrated: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            space: Condvar::new(),
            idle: Condvar::new(),
            locals: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            capacity: queue_capacity,
            tel: tel.is_enabled().then(|| PoolTelemetry {
                queue_depth: tel.gauge("serve.queue_depth"),
                steals: tel.timing_counter("serve.steals"),
            }),
        });
        let handles = (0..workers)
            .map(|id| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{id}"))
                    .spawn(move || worker_loop(id, &shared))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkStealingPool { shared, handles }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.shared.locals.len()
    }

    /// Submits a job with a preferred worker; blocks while the pool is
    /// at its in-flight bound (backpressure). The hint is taken modulo
    /// the worker count; the job may still be stolen by an idle sibling.
    pub fn submit_to(&self, worker_hint: usize, job: Job) {
        let hint = worker_hint % self.shared.locals.len();
        let mut inner = self.shared.inner.lock().expect("pool lock");
        while inner.in_flight >= self.shared.capacity {
            inner = self.shared.space.wait(inner).expect("pool lock");
        }
        inner.in_flight += 1;
        inner.submitted += 1;
        if let Some(t) = &self.shared.tel {
            t.queue_depth.set(inner.in_flight as i64);
        }
        // Push and notify while holding the central lock: a worker about
        // to sleep holds it through its final empty-check, so the job is
        // either seen by that check or the notification lands in its
        // wait — no lost wakeup. (Lock order is always inner → local.)
        self.shared.locals[hint]
            .lock()
            .expect("local deque lock")
            .push_back((hint, job));
        self.shared.work.notify_all();
    }

    /// Submits a job with no affinity: it goes to the global injector
    /// and runs on whichever worker frees up first. Blocks at capacity.
    pub fn submit(&self, job: Job) {
        let mut inner = self.shared.inner.lock().expect("pool lock");
        while inner.in_flight >= self.shared.capacity {
            inner = self.shared.space.wait(inner).expect("pool lock");
        }
        inner.in_flight += 1;
        inner.submitted += 1;
        if let Some(t) = &self.shared.tel {
            t.queue_depth.set(inner.in_flight as i64);
        }
        inner.injector.push_back(job);
        self.shared.work.notify_all();
    }

    /// Runs a batch of borrowing jobs to completion — a structured
    /// fork/join. Each job is distributed round-robin across the
    /// workers' deques and this call blocks until **all** of them have
    /// finished, so the jobs may borrow from the caller's stack frame
    /// (they need only be `Send`, not `'static`).
    ///
    /// If a job panics, the panic is captured and re-raised here (on the
    /// caller's thread) after the remaining jobs finish; the pool stays
    /// usable.
    ///
    /// # Safety argument
    ///
    /// Internally the jobs are transmuted to `'static` so they can ride
    /// the ordinary [`Job`] queues. This is sound because the countdown
    /// latch below guarantees every job has returned (or panicked and
    /// been caught) before `run_scoped` returns, so no job outlives the
    /// borrows it captured.
    pub fn run_scoped<'scope>(&self, jobs: Vec<Box<dyn FnOnce() + Send + 'scope>>) {
        let total = jobs.len();
        if total == 0 {
            return;
        }
        // Countdown latch: (remaining, condvar) plus the first panic.
        let latch = Arc::new((Mutex::new(total), Condvar::new()));
        let panic_slot: Arc<Mutex<Option<Box<dyn std::any::Any + Send>>>> =
            Arc::new(Mutex::new(None));
        for (i, job) in jobs.into_iter().enumerate() {
            // SAFETY: this call blocks on the latch until every wrapped
            // job has completed, so the 'scope borrows captured by `job`
            // strictly outlive its execution.
            let job: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(job) };
            let latch = Arc::clone(&latch);
            let panic_slot = Arc::clone(&panic_slot);
            self.submit_to(
                i,
                Box::new(move || {
                    let result = catch_unwind(AssertUnwindSafe(job));
                    if let Err(payload) = result {
                        let mut slot = panic_slot.lock().expect("panic slot lock");
                        if slot.is_none() {
                            *slot = Some(payload);
                        }
                    }
                    let (remaining, done) = &*latch;
                    let mut n = remaining.lock().expect("latch lock");
                    *n -= 1;
                    if *n == 0 {
                        done.notify_all();
                    }
                }),
            );
        }
        let (remaining, done) = &*latch;
        let mut n = remaining.lock().expect("latch lock");
        while *n > 0 {
            n = done.wait(n).expect("latch lock");
        }
        drop(n);
        let payload = panic_slot.lock().expect("panic slot lock").take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }

    /// Blocks until every submitted job has finished.
    pub fn wait_idle(&self) {
        let mut inner = self.shared.inner.lock().expect("pool lock");
        while inner.in_flight > 0 {
            inner = self.shared.idle.wait(inner).expect("pool lock");
        }
    }

    /// Jobs executed on a worker other than their submit hint — the
    /// observable effect of stealing/injection. Hint-less submissions
    /// never count.
    pub fn migrations(&self) -> u64 {
        self.shared.inner.lock().expect("pool lock").migrated
    }

    /// Lifetime job count.
    pub fn jobs_submitted(&self) -> u64 {
        self.shared.inner.lock().expect("pool lock").submitted
    }
}

impl Drop for WorkStealingPool {
    fn drop(&mut self) {
        {
            let mut inner = self.shared.inner.lock().expect("pool lock");
            inner.shutdown = true;
        }
        self.shared.work.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// One worker's scheduling loop. Order of preference: own deque (back),
/// global injector, steal from siblings (front).
fn worker_loop(id: usize, shared: &Shared) {
    loop {
        let job = find_job(id, shared);
        match job {
            Some((hint, job)) => {
                job();
                let mut inner = shared.inner.lock().expect("pool lock");
                if hint != id {
                    inner.migrated += 1;
                    if let Some(t) = &shared.tel {
                        t.steals.inc(1);
                    }
                }
                inner.in_flight -= 1;
                let now_idle = inner.in_flight == 0;
                drop(inner);
                shared.space.notify_all();
                if now_idle {
                    shared.idle.notify_all();
                }
            }
            None => return, // shutdown with all queues drained
        }
    }
}

/// Finds the next job for worker `id`, sleeping on the work condvar when
/// every queue is empty. Returns `None` only at shutdown. The returned
/// hint is the submit-time affinity (== `id` for hint-less injector
/// jobs, so they never count as migrations).
fn find_job(id: usize, shared: &Shared) -> Option<(usize, Job)> {
    loop {
        // 1. Own deque, newest first — the owner end.
        if let Some(job) = shared.locals[id]
            .lock()
            .expect("local deque lock")
            .pop_back()
        {
            return Some(job);
        }
        // 2. Global injector, FIFO.
        {
            let mut inner = shared.inner.lock().expect("pool lock");
            if let Some(job) = inner.injector.pop_front() {
                return Some((id, job));
            }
        }
        // 3. Steal the oldest job from a sibling, scanning from the next
        //    worker around the ring so victims spread out.
        let n = shared.locals.len();
        for off in 1..n {
            let victim = (id + off) % n;
            if let Some(job) = shared.locals[victim]
                .lock()
                .expect("local deque lock")
                .pop_front()
            {
                return Some(job);
            }
        }
        // 4. Nothing visible: re-check every queue under the central
        //    lock (submissions push under it, so this check and a
        //    concurrent submit serialize), then sleep.
        let inner = shared.inner.lock().expect("pool lock");
        if !inner.injector.is_empty() {
            continue; // raced with a submit
        }
        let stranded = shared
            .locals
            .iter()
            .any(|l| !l.lock().expect("local deque lock").is_empty());
        if stranded {
            continue; // go steal it
        }
        if inner.shutdown {
            return None;
        }
        let _unused = shared.work.wait(inner).expect("pool lock");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn runs_every_job_exactly_once() {
        let pool = WorkStealingPool::new(4, 64);
        let counter = Arc::new(AtomicUsize::new(0));
        for i in 0..200 {
            let c = Arc::clone(&counter);
            pool.submit_to(
                i,
                Box::new(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                }),
            );
        }
        pool.wait_idle();
        assert_eq!(counter.load(Ordering::Relaxed), 200);
        assert_eq!(pool.jobs_submitted(), 200);
    }

    #[test]
    fn single_worker_pool_works() {
        let pool = WorkStealingPool::new(1, 4);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..20 {
            let c = Arc::clone(&counter);
            pool.submit(Box::new(move || {
                c.fetch_add(1, Ordering::Relaxed);
            }));
        }
        pool.wait_idle();
        assert_eq!(counter.load(Ordering::Relaxed), 20);
    }

    #[test]
    fn uneven_jobs_get_stolen() {
        // Pin every job to worker 0 of 4; the only way others can help
        // is by stealing. With slow jobs, stealing must happen.
        let pool = WorkStealingPool::new(4, 256);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..64 {
            let c = Arc::clone(&counter);
            pool.submit_to(
                0,
                Box::new(move || {
                    std::thread::sleep(Duration::from_millis(2));
                    c.fetch_add(1, Ordering::Relaxed);
                }),
            );
        }
        pool.wait_idle();
        assert_eq!(counter.load(Ordering::Relaxed), 64);
        assert!(
            pool.migrations() > 0,
            "3 idle workers must steal from the loaded one"
        );
    }

    #[test]
    fn bounded_queue_applies_backpressure() {
        // Capacity 2 with a job that holds the pool busy: the 3rd submit
        // must block until a slot frees. Observe via submit timing.
        let pool = WorkStealingPool::new(1, 2);
        let release = Arc::new((Mutex::new(false), Condvar::new()));
        for _ in 0..2 {
            let r = Arc::clone(&release);
            pool.submit(Box::new(move || {
                let (lock, cv) = &*r;
                let mut go = lock.lock().unwrap();
                while !*go {
                    go = cv.wait(go).unwrap();
                }
            }));
        }
        // Pool is now full (1 running + 1 queued). Submit from a helper
        // thread; it must not complete until we release the blockers.
        let submitted = Arc::new(AtomicUsize::new(0));
        let helper = {
            let pool_shared = Arc::clone(&pool.shared);
            let s = Arc::clone(&submitted);
            std::thread::spawn(move || {
                let fake_pool = WorkStealingPool {
                    shared: pool_shared,
                    handles: Vec::new(),
                };
                fake_pool.submit(Box::new(|| {}));
                s.store(1, Ordering::SeqCst);
                std::mem::forget(fake_pool); // shares state; must not shut down
            })
        };
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(
            submitted.load(Ordering::SeqCst),
            0,
            "submit past capacity must block"
        );
        {
            let (lock, cv) = &*release;
            *lock.lock().unwrap() = true;
            cv.notify_all();
        }
        helper.join().unwrap();
        assert_eq!(submitted.load(Ordering::SeqCst), 1);
        pool.wait_idle();
    }

    #[test]
    fn wait_idle_on_empty_pool_returns_immediately() {
        let pool = WorkStealingPool::new(2, 8);
        pool.wait_idle();
        assert_eq!(pool.migrations(), 0);
    }

    #[test]
    fn drop_finishes_queued_work() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = WorkStealingPool::new(2, 64);
            for i in 0..50 {
                let c = Arc::clone(&counter);
                pool.submit_to(
                    i,
                    Box::new(move || {
                        c.fetch_add(1, Ordering::Relaxed);
                    }),
                );
            }
            // No wait_idle: Drop must drain.
        }
        assert_eq!(counter.load(Ordering::Relaxed), 50);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = WorkStealingPool::new(0, 1);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = WorkStealingPool::new(1, 0);
    }

    #[test]
    fn run_scoped_borrows_from_caller_stack() {
        let pool = WorkStealingPool::new(3, 32);
        let mut rows = [0u64; 12];
        {
            let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = rows
                .iter_mut()
                .enumerate()
                .map(|(i, slot)| {
                    let job: Box<dyn FnOnce() + Send + '_> =
                        Box::new(move || *slot = (i as u64 + 1) * 10);
                    job
                })
                .collect();
            pool.run_scoped(jobs);
        }
        for (i, v) in rows.iter().enumerate() {
            assert_eq!(*v, (i as u64 + 1) * 10);
        }
    }

    #[test]
    fn run_scoped_empty_batch_is_a_noop() {
        let pool = WorkStealingPool::new(1, 2);
        pool.run_scoped(Vec::new());
        assert_eq!(pool.jobs_submitted(), 0);
    }

    #[test]
    fn run_scoped_propagates_panic_after_batch_completes() {
        let pool = WorkStealingPool::new(2, 16);
        let completed = Arc::new(AtomicUsize::new(0));
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let mut jobs: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::new();
            jobs.push(Box::new(|| panic!("slice job failed")));
            for _ in 0..4 {
                let c = Arc::clone(&completed);
                jobs.push(Box::new(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                }));
            }
            pool.run_scoped(jobs);
        }));
        assert!(result.is_err(), "panic must propagate to the caller");
        assert_eq!(
            completed.load(Ordering::Relaxed),
            4,
            "non-panicking jobs still ran"
        );
        // The pool survives a panicking batch.
        pool.run_scoped(vec![Box::new(|| {})]);
    }
}
