//! Per-session health: staleness watchdog and fleet health ledger.
//!
//! The degradation controller (`pbpair::adapt`) already *steers* around
//! feedback loss — it glides `Intra_Th` toward a conservative point
//! while the return channel is dark. What it does not do is *classify*:
//! operators of a serving fleet need to know which sessions are merely
//! weathering loss and which are effectively dead, and tests need a
//! crisp statement of the recovery path a chaos fault is supposed to
//! traverse. This module adds that classification:
//!
//! * [`StalenessWatchdog`] — a per-session state machine fed one
//!   observation per frame slot (feedback darkness + decoder liveness)
//!   that escalates strictly one step at a time through
//!   [`HealthState::Healthy`] → [`HealthState::Degraded`] →
//!   [`HealthState::Quarantined`], and de-escalates to
//!   [`HealthState::Recovered`] after a sustained fresh streak.
//!   Quarantine is not just a label: it imposes an `Intra_Th` floor
//!   (maximum resilience, minimum cost) on top of whatever the
//!   degradation controller chose, exactly like the fleet's admission
//!   floor.
//! * [`HealthLedger`] — the append-only transition log
//!   ([`HealthTransition`]: frame, from, to, reason), deterministic and
//!   reported alongside the digest, so a chaos test can assert the
//!   *full* watchdog → degradation → recovery path, not just the final
//!   state.
//!
//! Everything is a pure function of the deterministic per-frame inputs,
//! so health reports are byte-identical at any worker count.

use serde::{Deserialize, Serialize};

/// Where a session stands in the fleet's health state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HealthState {
    /// Feedback flowing, decoder live.
    Healthy,
    /// Feedback dark past the degrade threshold (or decoder stalling);
    /// the session is steering blind.
    Degraded,
    /// Dark past the quarantine threshold: the watchdog imposes a
    /// maximum-resilience `Intra_Th` floor until signs of life return.
    Quarantined,
    /// Was degraded or quarantined, then saw a sustained fresh streak.
    /// Operationally identical to [`HealthState::Healthy`]; the distinct
    /// state records that the session went down and came back.
    Recovered,
}

impl HealthState {
    /// Stable lowercase label for digests.
    pub fn label(&self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Degraded => "degraded",
            HealthState::Quarantined => "quarantined",
            HealthState::Recovered => "recovered",
        }
    }

    /// Whether the session is currently impaired.
    pub fn is_impaired(&self) -> bool {
        matches!(self, HealthState::Degraded | HealthState::Quarantined)
    }
}

/// Watchdog thresholds. All counts are in frame slots.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WatchdogConfig {
    /// Feedback darkness beyond which a healthy session degrades.
    pub degrade_after_dark: u64,
    /// Darkness beyond which a degraded session is quarantined.
    pub quarantine_after_dark: u64,
    /// Consecutive whole-frame losses before the display is declared
    /// starved (a session showing nothing is impaired even when the
    /// feedback path is perfectly fresh — the burst-kill and
    /// channel-swap failure signature).
    pub starve_after_lost: u64,
    /// Consecutive healthy observations an impaired session needs to be
    /// declared recovered.
    pub recover_after_fresh: u64,
    /// `Intra_Th` floor imposed while quarantined.
    pub quarantine_floor_th: f64,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        // The dark thresholds tolerate a couple of lost feedback
        // reports at the standard cadence (interval 5, delay 2): one
        // lost report leaves the encoder ~12 frames dark, which is
        // weather, not ill health.
        WatchdogConfig {
            degrade_after_dark: 18,
            quarantine_after_dark: 40,
            starve_after_lost: 6,
            recover_after_fresh: 6,
            quarantine_floor_th: 0.99,
        }
    }
}

impl WatchdogConfig {
    /// Validates threshold ordering and ranges.
    ///
    /// # Errors
    ///
    /// Returns a message naming the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.degrade_after_dark == 0 {
            return Err("degrade_after_dark must be at least 1 frame".into());
        }
        if self.quarantine_after_dark <= self.degrade_after_dark {
            return Err(format!(
                "quarantine_after_dark {} must exceed degrade_after_dark {}",
                self.quarantine_after_dark, self.degrade_after_dark
            ));
        }
        if self.starve_after_lost == 0 {
            return Err("starve_after_lost must be at least 1 frame".into());
        }
        if self.recover_after_fresh == 0 {
            return Err("recover_after_fresh must be at least 1 frame".into());
        }
        if !(0.0..=1.0).contains(&self.quarantine_floor_th) {
            return Err(format!(
                "quarantine_floor_th {} outside [0,1]",
                self.quarantine_floor_th
            ));
        }
        Ok(())
    }
}

/// One recorded state change.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HealthTransition {
    /// Frame slot at which the transition fired.
    pub frame: u64,
    /// State before.
    pub from: HealthState,
    /// State after.
    pub to: HealthState,
    /// Deterministic human-readable cause (`dark=14`, `stall`,
    /// `fresh=6`).
    pub reason: String,
}

/// Append-only per-session health log.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct HealthLedger {
    transitions: Vec<HealthTransition>,
}

impl HealthLedger {
    /// The recorded transitions, in frame order.
    pub fn transitions(&self) -> &[HealthTransition] {
        &self.transitions
    }

    /// Whether the session ever left [`HealthState::Healthy`].
    pub fn ever_impaired(&self) -> bool {
        !self.transitions.is_empty()
    }

    fn record(&mut self, frame: u64, from: HealthState, to: HealthState, reason: String) {
        self.transitions.push(HealthTransition {
            frame,
            from,
            to,
            reason,
        });
    }
}

/// The per-session watchdog. Feed it one [`StalenessWatchdog::observe`]
/// per frame slot; read the floor it returns into the session's
/// `Intra_Th` max.
#[derive(Debug, Clone)]
pub struct StalenessWatchdog {
    cfg: WatchdogConfig,
    state: HealthState,
    fresh_streak: u64,
    ledger: HealthLedger,
}

impl StalenessWatchdog {
    /// Creates a watchdog in the healthy state.
    ///
    /// # Errors
    ///
    /// Propagates [`WatchdogConfig::validate`].
    pub fn new(cfg: WatchdogConfig) -> Result<Self, String> {
        cfg.validate()?;
        Ok(StalenessWatchdog {
            cfg,
            state: HealthState::Healthy,
            fresh_streak: 0,
            ledger: HealthLedger::default(),
        })
    }

    /// The configuration in force.
    pub fn config(&self) -> &WatchdogConfig {
        &self.cfg
    }

    /// Current state.
    pub fn state(&self) -> HealthState {
        self.state
    }

    /// The transition log.
    pub fn ledger(&self) -> &HealthLedger {
        &self.ledger
    }

    /// Feeds one frame slot: `dark` is the session's feedback staleness
    /// (frames since the last applied report; `None` before the first
    /// report — startup silence is ignorance, not ill health), `stalled`
    /// whether the decoder failed to advance this slot, `lost_streak`
    /// the run of consecutive whole-frame losses ending at the previous
    /// slot (display starvation). Returns the `Intra_Th` floor now in
    /// force (`0.0` unless quarantined).
    ///
    /// Escalation is strictly one step per observation (healthy →
    /// degraded → quarantined), so the ledger always shows the full
    /// path; recovery requires `recover_after_fresh` consecutive calm
    /// observations.
    pub fn observe(
        &mut self,
        frame: u64,
        dark: Option<u64>,
        stalled: bool,
        lost_streak: u64,
    ) -> f64 {
        let dark_frames = dark.unwrap_or(0);
        let starved = lost_streak >= self.cfg.starve_after_lost;
        let degrade_signal = stalled || starved || dark_frames > self.cfg.degrade_after_dark;
        let quarantine_signal = dark_frames > self.cfg.quarantine_after_dark
            || ((stalled || starved) && self.state == HealthState::Degraded);

        if degrade_signal || quarantine_signal {
            self.fresh_streak = 0;
            let reason = if stalled {
                "stall".to_string()
            } else if starved {
                format!("starved={lost_streak}")
            } else {
                format!("dark={dark_frames}")
            };
            match self.state {
                HealthState::Healthy | HealthState::Recovered => {
                    self.transition(frame, HealthState::Degraded, reason);
                }
                HealthState::Degraded if quarantine_signal => {
                    self.transition(frame, HealthState::Quarantined, reason);
                }
                _ => {}
            }
        } else if self.state.is_impaired() {
            self.fresh_streak += 1;
            if self.fresh_streak >= self.cfg.recover_after_fresh {
                let streak = self.fresh_streak;
                self.transition(frame, HealthState::Recovered, format!("fresh={streak}"));
                self.fresh_streak = 0;
            }
        }

        if self.state == HealthState::Quarantined {
            self.cfg.quarantine_floor_th
        } else {
            0.0
        }
    }

    /// Records an externally detected SLO violation against this
    /// session — the observability plane's burn-rate alerts feed the
    /// ledger through here. Escalation follows the same strict one-step
    /// rule as [`StalenessWatchdog::observe`] (healthy/recovered →
    /// degraded → quarantined) with reason `slo:<name>`, and the fresh
    /// streak resets: an SLO breach is evidence of ill health even when
    /// the per-session signals look calm. Returns the `Intra_Th` floor
    /// now in force.
    pub fn alert(&mut self, frame: u64, slo: &str) -> f64 {
        self.fresh_streak = 0;
        match self.state {
            HealthState::Healthy | HealthState::Recovered => {
                self.transition(frame, HealthState::Degraded, format!("slo:{slo}"));
            }
            HealthState::Degraded => {
                self.transition(frame, HealthState::Quarantined, format!("slo:{slo}"));
            }
            HealthState::Quarantined => {}
        }
        if self.state == HealthState::Quarantined {
            self.cfg.quarantine_floor_th
        } else {
            0.0
        }
    }

    fn transition(&mut self, frame: u64, to: HealthState, reason: String) {
        let from = self.state;
        self.state = to;
        self.ledger.record(frame, from, to, reason);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> WatchdogConfig {
        WatchdogConfig {
            degrade_after_dark: 3,
            quarantine_after_dark: 8,
            starve_after_lost: 3,
            recover_after_fresh: 4,
            quarantine_floor_th: 0.95,
        }
    }

    #[test]
    fn quiet_session_stays_healthy() {
        let mut w = StalenessWatchdog::new(cfg()).unwrap();
        for f in 0..50 {
            assert_eq!(w.observe(f, Some(f.min(2)), false, 0), 0.0);
        }
        assert_eq!(w.state(), HealthState::Healthy);
        assert!(!w.ledger().ever_impaired());
    }

    #[test]
    fn startup_silence_is_not_ill_health() {
        let mut w = StalenessWatchdog::new(cfg()).unwrap();
        for f in 0..100 {
            w.observe(f, None, false, 0);
        }
        assert_eq!(w.state(), HealthState::Healthy);
    }

    #[test]
    fn sustained_darkness_walks_the_full_escalation_path() {
        let mut w = StalenessWatchdog::new(cfg()).unwrap();
        let mut floor = 0.0;
        for f in 0..20u64 {
            floor = w.observe(f, Some(f), false, 0);
        }
        assert_eq!(w.state(), HealthState::Quarantined);
        assert_eq!(floor, 0.95, "quarantine must impose the floor");
        let log = w.ledger().transitions();
        assert_eq!(log.len(), 2, "one step per level: {log:?}");
        assert_eq!(
            (log[0].from, log[0].to),
            (HealthState::Healthy, HealthState::Degraded)
        );
        assert_eq!(
            (log[1].from, log[1].to),
            (HealthState::Degraded, HealthState::Quarantined)
        );
        assert!(log[0].frame < log[1].frame);
    }

    #[test]
    fn recovery_needs_the_full_fresh_streak() {
        let mut w = StalenessWatchdog::new(cfg()).unwrap();
        for f in 0..12u64 {
            w.observe(f, Some(f), false, 0);
        }
        assert_eq!(w.state(), HealthState::Quarantined);
        // Three calm frames: not yet recovered.
        for f in 12..15u64 {
            assert_eq!(
                w.observe(f, Some(1), false, 0),
                0.95,
                "floor holds until recovered"
            );
        }
        assert_eq!(w.state(), HealthState::Quarantined);
        // Fourth calm frame completes the streak.
        assert_eq!(w.observe(15, Some(1), false, 0), 0.0);
        assert_eq!(w.state(), HealthState::Recovered);
        let last = w.ledger().transitions().last().unwrap();
        assert_eq!(last.to, HealthState::Recovered);
        assert_eq!(last.reason, "fresh=4");
    }

    #[test]
    fn relapse_interrupts_a_fresh_streak() {
        let mut w = StalenessWatchdog::new(cfg()).unwrap();
        for f in 0..6u64 {
            w.observe(f, Some(f), false, 0);
        }
        assert_eq!(w.state(), HealthState::Degraded);
        w.observe(6, Some(1), false, 0);
        w.observe(7, Some(1), false, 0);
        w.observe(8, Some(5), false, 0); // relapse resets the streak
        for f in 9..12u64 {
            w.observe(f, Some(1), false, 0);
        }
        assert_eq!(w.state(), HealthState::Degraded, "streak must restart");
        w.observe(12, Some(1), false, 0);
        assert_eq!(w.state(), HealthState::Recovered);
    }

    #[test]
    fn decoder_stall_escalates_even_with_fresh_feedback() {
        let mut w = StalenessWatchdog::new(cfg()).unwrap();
        w.observe(0, Some(0), true, 0);
        assert_eq!(w.state(), HealthState::Degraded);
        let floor = w.observe(1, Some(0), true, 0);
        assert_eq!(w.state(), HealthState::Quarantined);
        assert_eq!(floor, 0.95);
    }

    #[test]
    fn recovered_session_can_degrade_again() {
        let mut w = StalenessWatchdog::new(cfg()).unwrap();
        for f in 0..6u64 {
            w.observe(f, Some(f), false, 0);
        }
        for f in 6..10u64 {
            w.observe(f, Some(1), false, 0);
        }
        assert_eq!(w.state(), HealthState::Recovered);
        w.observe(10, Some(20), false, 0);
        assert_eq!(w.state(), HealthState::Degraded);
        assert_eq!(w.ledger().transitions().len(), 3);
    }

    #[test]
    fn display_starvation_escalates_with_fresh_feedback() {
        // Burst-kill / channel-swap signature: feedback is perfectly
        // fresh, but the display shows nothing frame after frame.
        let mut w = StalenessWatchdog::new(cfg()).unwrap();
        w.observe(0, Some(1), false, 2);
        assert_eq!(w.state(), HealthState::Healthy, "short runs are noise");
        w.observe(1, Some(1), false, 3);
        assert_eq!(w.state(), HealthState::Degraded);
        let floor = w.observe(2, Some(1), false, 4);
        assert_eq!(w.state(), HealthState::Quarantined);
        assert_eq!(floor, 0.95);
        assert!(w.ledger().transitions()[0].reason.starts_with("starved="));
        // Frames start arriving again: full fresh streak → recovered.
        for f in 3..7u64 {
            w.observe(f, Some(1), false, 0);
        }
        assert_eq!(w.state(), HealthState::Recovered);
    }

    #[test]
    fn bad_configs_rejected() {
        let mut bad = cfg();
        bad.degrade_after_dark = 0;
        assert!(StalenessWatchdog::new(bad).is_err());
        let mut bad = cfg();
        bad.starve_after_lost = 0;
        assert!(StalenessWatchdog::new(bad).is_err());
        let mut bad = cfg();
        bad.quarantine_after_dark = bad.degrade_after_dark;
        assert!(StalenessWatchdog::new(bad).is_err());
        let mut bad = cfg();
        bad.recover_after_fresh = 0;
        assert!(StalenessWatchdog::new(bad).is_err());
        let mut bad = cfg();
        bad.quarantine_floor_th = 1.5;
        assert!(StalenessWatchdog::new(bad).is_err());
    }
}
