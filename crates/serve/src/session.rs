//! One streaming session: the complete per-client loop.
//!
//! A [`Session`] owns every stage the single-clip eval pipeline runs —
//! synthetic source → PBPAIR encoder → RTP packetization (with optional
//! XOR FEC) → lossy + corrupting channel → resilient decoder → PLR
//! feedback over its own lossy return link — plus the two controllers
//! that steer `Intra_Th`:
//!
//! * a [`DegradationController`] tracking the session's *network*: PLR
//!   compensation while feedback reports flow, conservative backoff
//!   while the return channel is dark;
//! * a *load floor* imposed from outside by the fleet's admission
//!   controller: under overload the floor rises, forcing cheap
//!   high-intra encodes (PBPAIR's energy lever doubles as a CPU lever —
//!   intra decisions skip motion estimation entirely).
//!
//! The operating threshold is the max of the two — a session never
//! undercuts either its network's needs or the fleet's.
//!
//! Everything inside a session is seeded from (master seed, session id),
//! so a session's entire trajectory is deterministic no matter which
//! worker threads execute its frames, or in what interleaving with other
//! sessions.

use crate::chaos::{ChaosEvent, ChaosFault};
use crate::health::{HealthLedger, HealthState, StalenessWatchdog, WatchdogConfig};
use crate::redundancy::{RedundancyConfig, RedundancyController};
use pbpair::adapt::{DegradationConfig, DegradationController};
use pbpair::{AirPolicy, GopPolicy, PbpairConfig, PbpairPolicy, PgopPolicy};
use pbpair_codec::{
    DecodeReport, Decoder, Encoder, EncoderConfig, OpCounts, RdeConfig, RefreshPolicy,
};
use pbpair_energy::{DeviceProfile, EnergyModel, IPAQ_H5555, ZAURUS_SL5600};
use pbpair_media::metrics::QualityStats;
use pbpair_media::synth::{MotionClass, SyntheticSequence};
use pbpair_netsim::{
    reassemble_frame, reassemble_frame_damaged, BurstEstimator, ChannelSpec, CorruptingChannel,
    CorruptionProfile, FecOps, FecProtector, FecSpec, FeedbackLink, LossModel, Packetizer,
    RetryConfig, UniformLoss, WindowPlrEstimator,
};
use pbpair_telemetry::{Counter, Telemetry};
use pbpair_trace::{Event as TraceEvent, Tracer};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// The refresh scheme a session encodes with. PBPAIR is the adaptive
/// default; the fixed schemes are the paper's comparison points, run
/// through the same serving loop so scenario matrices can put them side
/// by side under identical channels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SessionScheme {
    /// Adaptive PBPAIR (feedback-steered `Intra_Th`).
    Pbpair,
    /// Fixed GOP with N P-frames per I-frame.
    Gop(u32),
    /// AIR refreshing N macroblocks per frame.
    Air(usize),
    /// PGOP refreshing N columns per frame.
    Pgop(usize),
}

impl SessionScheme {
    /// Short display name matching the paper's figure legends.
    pub fn label(&self) -> String {
        match self {
            SessionScheme::Pbpair => "PBPAIR".to_string(),
            SessionScheme::Gop(n) => format!("GOP-{n}"),
            SessionScheme::Air(n) => format!("AIR-{n}"),
            SessionScheme::Pgop(n) => format!("PGOP-{n}"),
        }
    }
}

/// The device whose energy model prices a session's encode work — the
/// paper's two handheld evaluation targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeviceKind {
    /// iPAQ h5555 (XScale 400 MHz).
    Ipaq,
    /// Zaurus SL-5600 (cheaper SAD ops, pricier radio).
    Zaurus,
}

impl DeviceKind {
    /// The energy profile constants for this device.
    pub fn profile(&self) -> DeviceProfile {
        match self {
            DeviceKind::Ipaq => IPAQ_H5555,
            DeviceKind::Zaurus => ZAURUS_SL5600,
        }
    }

    /// Stable lowercase label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            DeviceKind::Ipaq => "ipaq",
            DeviceKind::Zaurus => "zaurus",
        }
    }
}

/// Per-session knobs, normally filled in by the manager from a
/// fleet-level [`crate::ServeConfig`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionConfig {
    /// Session id (stable across the run; also the affinity hint).
    pub id: u32,
    /// Seed for every seeded component, already mixed per session.
    pub seed: u64,
    /// Source content class (sessions get diverse motion classes so
    /// per-frame cost is uneven — the load the scheduler must balance).
    pub class: MotionClass,
    /// Per-packet loss rate of the forward channel.
    pub plr: f64,
    /// Payload corruption intensity in `[0, 1]`.
    pub corruption: f64,
    /// XOR-FEC group size; `None` disables FEC for this session.
    /// Legacy spelling of `fec: Some(FecSpec::Xor { k: group })` — the
    /// two are mutually exclusive.
    pub fec_group: Option<usize>,
    /// FEC codec applied to the packet path; `None` (with `fec_group`
    /// also `None`) disables FEC.
    pub fec: Option<FecSpec>,
    /// Joint intra/FEC redundancy controller. Carries its own codec
    /// family, so `fec`/`fec_group` must be `None` when set.
    pub redundancy: Option<RedundancyConfig>,
    /// Payload MTU.
    pub mtu: usize,
    /// Receiver sends a PLR report every this many frames.
    pub feedback_interval: u64,
    /// Return-path transit delay in frame periods.
    pub feedback_delay: u64,
    /// Loss rate of the feedback return path.
    pub feedback_plr: f64,
    /// Anchor operating point for the degradation controller.
    pub base_intra_th: f64,
    /// Modeled transmission/pacing wait per frame, microseconds. This is
    /// the blocking network phase of a real streaming server: the worker
    /// sleeps, so waits from different sessions overlap when the pool has
    /// spare workers. Affects wall-clock timing only — never the
    /// deterministic outcome.
    pub pacing_us: u64,
    /// Forward-channel description from the scenario zoo; `None` keeps
    /// the classic uniform loss at [`SessionConfig::plr`]. Schedule
    /// channels also drive the feedback RTT per phase.
    pub channel: Option<ChannelSpec>,
    /// Refresh scheme the session encodes with.
    pub scheme: SessionScheme,
    /// Device whose energy model prices the encode work.
    pub device: DeviceKind,
    /// Maximum age (frames) of a feedback report the encoder will still
    /// apply; `None` disables expiry.
    pub feedback_staleness: Option<u64>,
    /// Bounded retry with backoff + jitter on the feedback path
    /// (`max_retries == 0` disables).
    pub retry: RetryConfig,
    /// Staleness-watchdog thresholds for the session's health ledger.
    pub watchdog: WatchdogConfig,
    /// Joint rate–distortion–energy controller for this session's
    /// encoder ([`pbpair_codec::rde`]). `None` — and `Some` with both λ
    /// weights zero — keep the refresh scheme's decisions bit-identical
    /// to a plain encoder, so every committed digest is unchanged.
    #[serde(default)]
    pub rde: Option<RdeConfig>,
}

impl SessionConfig {
    /// A session at the paper's standard operating point: 10% packet
    /// loss, light corruption, no FEC, RTCP-ish feedback cadence.
    pub fn standard(id: u32, seed: u64) -> Self {
        SessionConfig {
            id,
            seed,
            class: MotionClass::all()[id as usize % 3],
            plr: 0.10,
            corruption: 0.2,
            fec_group: None,
            fec: None,
            redundancy: None,
            mtu: pbpair_netsim::DEFAULT_MTU,
            feedback_interval: 5,
            feedback_delay: 2,
            feedback_plr: 0.10,
            base_intra_th: 0.9,
            pacing_us: 0,
            channel: None,
            scheme: SessionScheme::Pbpair,
            device: DeviceKind::Ipaq,
            feedback_staleness: None,
            retry: RetryConfig::default(),
            watchdog: WatchdogConfig::default(),
            rde: None,
        }
    }
}

/// What one frame step produced — the deterministic per-frame record the
/// admission controller and the report aggregate from.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FrameOutcome {
    /// Encoding energy of this frame under the session's device model.
    pub encode_joules: f64,
    /// FEC encode/decode processing energy of this frame (0 without FEC).
    pub fec_joules: f64,
    /// Encoded size in bytes (before FEC overhead).
    pub encoded_bytes: u64,
    /// Bytes actually offered to the channel (with FEC overhead).
    pub sent_bytes: u64,
    /// Whether nothing usable arrived (whole-frame concealment).
    pub lost: bool,
    /// Whether the frame arrived damaged and went through resilient
    /// decode (false for clean or lost frames).
    pub damaged: bool,
    /// Whether FEC reconstructed at least one erased fragment of this
    /// frame (a block was actually *repaired*, not merely complete).
    pub fec_recovered: bool,
    /// Whether the decoder was stalled (chaos) and the display held.
    pub stalled: bool,
    /// `Intra_Th` in force for this frame.
    pub intra_th: f64,
}

/// Lifetime counters of one session (deterministic).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SessionStats {
    /// Frames encoded and transmitted.
    pub frames_encoded: u64,
    /// Frames skipped by fleet-imposed frame-rate degradation.
    pub frames_rate_dropped: u64,
    /// Frames lost outright on the channel.
    pub frames_lost: u64,
    /// Frames delivered damaged.
    pub frames_damaged: u64,
    /// Frames where FEC reconstructed at least one erased fragment.
    pub fec_recoveries: u64,
    /// Lifetime FEC arithmetic ledger (all zero without FEC).
    pub fec: FecOps,
    /// FEC encode/decode processing energy total (Joules).
    pub fec_joules: f64,
    /// Encoded payload bytes.
    pub encoded_bytes: u64,
    /// Bytes offered to the channel (incl. FEC parity).
    pub sent_bytes: u64,
    /// Encoding energy total (Joules).
    pub encode_joules: f64,
    /// Frame slots the decoder spent stalled (chaos injection).
    pub frames_stalled: u64,
    /// Chaos faults applied to this session.
    pub chaos_injected: u64,
    /// Aggregate resilient-decode accounting.
    pub decode: DecodeReport,
}

/// The live policy behind a [`SessionScheme`]. PBPAIR keeps its concrete
/// type so the feedback loop can steer it (`set_plr`, `set_intra_th`,
/// `C^k` snapshots); fixed schemes ride behind the dyn trait.
enum SchemeDriver {
    Pbpair(PbpairPolicy),
    Fixed(Box<dyn RefreshPolicy + Send>),
}

impl SchemeDriver {
    fn as_dyn(&mut self) -> &mut dyn RefreshPolicy {
        match self {
            SchemeDriver::Pbpair(p) => p,
            SchemeDriver::Fixed(b) => b.as_mut(),
        }
    }
}

/// One live streaming session. See the module docs for the loop.
pub struct Session {
    cfg: SessionConfig,
    source: SyntheticSequence,
    driver: SchemeDriver,
    encoder: Encoder,
    decoder: Decoder,
    packetizer: Packetizer,
    fec: Option<FecProtector>,
    /// Joint intra/FEC controller; `None` leaves the codec (if any)
    /// fixed and `Intra_Th` to the degradation controller alone.
    redundancy: Option<RedundancyController>,
    channel: CorruptingChannel,
    feedback: FeedbackLink,
    plr_estimator: WindowPlrEstimator,
    /// Receiver-side *pre-repair packet*-loss estimator. The frame-level
    /// `plr_estimator` above sees post-FEC outcomes, so a redundancy
    /// controller steering on it would read its own repairs as a clean
    /// channel and oscillate; this one counts raw wire erasures.
    packet_plr_estimator: WindowPlrEstimator,
    /// Receiver-side erasure-burst-length estimator (PRNG-free; feeds
    /// the `burst` field of every feedback report).
    burst_estimator: BurstEstimator,
    degradation: DegradationController,
    watchdog: StalenessWatchdog,
    energy: EnergyModel,
    ops_snapshot: OpCounts,
    /// Fleet-imposed `Intra_Th` floor (admission control), 0 when idle.
    load_floor_th: f64,
    /// Watchdog-imposed floor (quarantine), 0 when healthy.
    watchdog_floor_th: f64,
    /// Pending chaos events, in firing order.
    chaos: VecDeque<ChaosEvent>,
    /// Receiver feedback suppressed until this frame (chaos blackout).
    blackout_until: u64,
    /// Decoder held until this frame (chaos stall).
    stall_until: u64,
    /// Every packet erased until this frame (chaos burst kill).
    kill_until: u64,
    /// Consecutive whole-frame losses ending at the previous slot (the
    /// watchdog's display-starvation signal).
    lost_streak: u64,
    /// Next frame index to encode.
    frame: u64,
    quality: QualityStats,
    stats: SessionStats,
    shed: bool,
    /// Session-level telemetry handles; `None` until
    /// [`Session::set_telemetry`]. The encoder, decoder, and channel
    /// carry their own handles wired by the same call.
    tel: Option<SessionTelemetry>,
    /// Causal tracer; disabled until [`Session::set_tracer`]. The
    /// encoder, decoder, and forward channel share clones of it.
    trace: Tracer,
}

/// Telemetry the session flushes per frame slot — all deterministic
/// quantities (frame outcomes are a pure function of the session seed).
#[derive(Debug)]
struct SessionTelemetry {
    frames_encoded: Counter,
    frames_rate_dropped: Counter,
    frames_lost: Counter,
    frames_damaged: Counter,
    fec_recovered: Counter,
    /// `fec.*` counters; created only for FEC-enabled sessions so
    /// FEC-off telemetry dumps (and their goldens) are unchanged.
    fec: Option<FecTelemetry>,
}

/// Per-frame FEC ledger flushes (`fec.*` namespace).
#[derive(Debug)]
struct FecTelemetry {
    blocks_repaired: Counter,
    blocks_failed: Counter,
    parity_bytes: Counter,
    xor_bytes: Counter,
    gf_mul_bytes: Counter,
}

impl SessionTelemetry {
    fn new(tel: &Telemetry, fec_enabled: bool) -> Self {
        SessionTelemetry {
            frames_encoded: tel.counter("serve.frames_encoded"),
            frames_rate_dropped: tel.counter("serve.frames_rate_dropped"),
            frames_lost: tel.counter("serve.frames_lost"),
            frames_damaged: tel.counter("serve.frames_damaged"),
            fec_recovered: tel.counter("serve.fec_recovered"),
            fec: fec_enabled.then(|| FecTelemetry {
                blocks_repaired: tel.counter("fec.blocks_repaired"),
                blocks_failed: tel.counter("fec.blocks_failed"),
                parity_bytes: tel.counter("fec.parity_bytes"),
                xor_bytes: tel.counter("fec.xor_bytes"),
                gf_mul_bytes: tel.counter("fec.gf_mul_bytes"),
            }),
        }
    }
}

impl Session {
    /// Builds a session; all components are seeded from `cfg.seed` with
    /// distinct stream constants so they do not correlate.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid PBPAIR or controller configuration.
    pub fn new(cfg: SessionConfig) -> Result<Self, String> {
        let sub = |stream: u64| splitmix(cfg.seed ^ stream.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let format = pbpair_media::VideoFormat::QCIF;
        let driver = match cfg.scheme {
            SessionScheme::Pbpair => SchemeDriver::Pbpair(PbpairPolicy::new(
                format,
                PbpairConfig {
                    intra_th: cfg.base_intra_th,
                    plr: cfg.plr,
                    ..PbpairConfig::default()
                },
            )?),
            SessionScheme::Gop(n) => SchemeDriver::Fixed(Box::new(GopPolicy::new(n))),
            SessionScheme::Air(n) => SchemeDriver::Fixed(Box::new(AirPolicy::new(format, n))),
            SessionScheme::Pgop(n) => SchemeDriver::Fixed(Box::new(PgopPolicy::new(format, n))),
        };
        let degradation = DegradationController::new(DegradationConfig {
            base_th: cfg.base_intra_th,
            base_plr: cfg.plr,
            ..DegradationConfig::default()
        })?;
        let watchdog = StalenessWatchdog::new(cfg.watchdog)?;
        // One FEC source of truth: the redundancy controller carries its
        // own family; otherwise an explicit spec; otherwise the legacy
        // XOR group size.
        if cfg.fec.is_some() && cfg.fec_group.is_some() {
            return Err("set fec or fec_group, not both".to_string());
        }
        if cfg.redundancy.is_some() && (cfg.fec.is_some() || cfg.fec_group.is_some()) {
            return Err("redundancy carries its own fec family; leave fec/fec_group unset".into());
        }
        if let Some(g) = cfg.fec_group {
            if g == 0 {
                return Err("fec group size must be positive".to_string());
            }
        }
        let redundancy = cfg
            .redundancy
            .map(|rc| RedundancyController::new(rc, cfg.plr, cfg.base_intra_th))
            .transpose()?;
        let fec_spec = match &redundancy {
            Some(ctl) => {
                let d = ctl.decision();
                (d.parity > 0).then(|| ctl.family().with_parity(d.parity))
            }
            None => cfg.fec.or(cfg.fec_group.map(|g| FecSpec::Xor { k: g })),
        };
        let fec = fec_spec.map(FecProtector::new).transpose()?;
        let forward: Box<dyn LossModel> = match &cfg.channel {
            Some(spec) => spec.build_loss(sub(2))?,
            None => Box::new(UniformLoss::new(cfg.plr, sub(2))),
        };
        let mut feedback = FeedbackLink::new(
            Box::new(UniformLoss::new(cfg.feedback_plr, sub(4))),
            cfg.feedback_delay,
        );
        feedback.set_staleness_window(cfg.feedback_staleness);
        Ok(Session {
            source: SyntheticSequence::for_class(cfg.class, sub(1)),
            driver,
            encoder: Encoder::new(EncoderConfig {
                rde: cfg.rde,
                ..EncoderConfig::default()
            }),
            decoder: Decoder::new(format),
            packetizer: Packetizer::new(cfg.mtu),
            fec,
            redundancy,
            channel: CorruptingChannel::new(
                forward,
                CorruptionProfile::with_intensity(cfg.corruption),
                sub(3),
            ),
            feedback,
            plr_estimator: WindowPlrEstimator::new(30),
            packet_plr_estimator: WindowPlrEstimator::new(240),
            burst_estimator: BurstEstimator::new(0.2),
            degradation,
            watchdog,
            energy: EnergyModel::new(cfg.device.profile()),
            ops_snapshot: OpCounts::default(),
            load_floor_th: 0.0,
            watchdog_floor_th: 0.0,
            chaos: VecDeque::new(),
            blackout_until: 0,
            stall_until: 0,
            kill_until: 0,
            lost_streak: 0,
            frame: 0,
            quality: QualityStats::new(),
            stats: SessionStats::default(),
            shed: false,
            tel: None,
            trace: Tracer::disabled(),
            cfg,
        })
    }

    /// Schedules chaos faults against this session (sorted by frame;
    /// events already past the session's frame clock never fire).
    pub fn set_chaos(&mut self, mut events: Vec<ChaosEvent>) {
        events.sort_by_key(|e| e.at_frame);
        self.chaos = events.into();
    }

    /// Attaches a telemetry context to the session and every pipeline
    /// stage it owns (encoder, decoder, forward channel). Pass a handle
    /// pre-bound to a shard (see `Telemetry::shard`) so concurrent
    /// sessions write to disjoint cache lines; totals are identical for
    /// any sharding. A disabled context detaches everything.
    pub fn set_telemetry(&mut self, tel: &Telemetry) {
        self.encoder.set_telemetry(tel);
        self.decoder.set_telemetry(tel);
        self.channel.set_telemetry(tel);
        let fec_enabled = self.fec.is_some() || self.redundancy.is_some();
        self.tel = tel
            .is_enabled()
            .then(|| SessionTelemetry::new(tel, fec_enabled));
    }

    /// Attaches a causal tracer to the session and every stage it owns.
    /// The encoder then records per-MB coding provenance, the channel
    /// per-packet loss/corruption events, the decoder
    /// concealment/resync events, and the session itself the `C^k`
    /// snapshots and per-MB pixel cost the replay joins against.
    pub fn set_tracer(&mut self, trace: &Tracer) {
        self.encoder.set_tracer(trace);
        self.decoder.set_tracer(trace);
        self.channel.set_tracer(trace);
        self.trace = trace.clone();
    }

    /// The session's configuration.
    pub fn config(&self) -> &SessionConfig {
        &self.cfg
    }

    /// Lifetime counters.
    pub fn stats(&self) -> &SessionStats {
        &self.stats
    }

    /// Decoder-side quality accounting.
    pub fn quality(&self) -> &QualityStats {
        &self.quality
    }

    /// The receiver's current PLR estimate.
    pub fn plr_estimate(&self) -> f64 {
        self.plr_estimator.estimate()
    }

    /// The receiver's current erasure-burst-length estimate (packets).
    pub fn burst_estimate(&self) -> f64 {
        self.burst_estimator.estimate()
    }

    /// The receiver's current pre-repair packet-loss estimate.
    pub fn packet_plr_estimate(&self) -> f64 {
        self.packet_plr_estimator.estimate()
    }

    /// Whether any FEC (fixed or adaptive) protects this session.
    pub fn fec_enabled(&self) -> bool {
        self.fec.is_some() || self.redundancy.is_some()
    }

    /// The codec currently on the packet path (`None` when FEC is off —
    /// including adaptive GOPs where the controller chose zero parity).
    pub fn fec_spec(&self) -> Option<FecSpec> {
        self.fec.as_ref().map(|p| p.spec())
    }

    /// Stable codec label for reports: the active codec, or for an
    /// adaptive session currently at zero parity, the family at rate 0.
    pub fn fec_label(&self) -> Option<String> {
        self.fec_spec().map(|s| s.label()).or_else(|| {
            self.redundancy
                .as_ref()
                .map(|c| c.family().with_parity(c.decision().parity).label())
        })
    }

    /// The joint redundancy decision in force, if the controller runs.
    pub fn redundancy_decision(&self) -> Option<crate::redundancy::RedundancyDecision> {
        self.redundancy.as_ref().map(|c| c.decision())
    }

    /// The `Intra_Th` the next frame would use.
    pub fn current_intra_th(&self) -> f64 {
        self.degradation
            .intra_th()
            .max(self.load_floor_th)
            .max(self.watchdog_floor_th)
    }

    /// The session's current health classification.
    pub fn health(&self) -> HealthState {
        self.watchdog.state()
    }

    /// The session's health transition log.
    pub fn health_ledger(&self) -> &HealthLedger {
        self.watchdog.ledger()
    }

    /// Consecutive whole-frame losses ending at the last processed slot
    /// (resets to zero the moment a frame lands).
    pub fn lost_streak(&self) -> u64 {
        self.lost_streak
    }

    /// Feedback staleness (frames since the last applied report) as of
    /// the last processed frame slot; `None` before any report arrives.
    pub fn feedback_dark(&self) -> Option<u64> {
        self.degradation.frames_dark(self.frame.saturating_sub(1))
    }

    /// The encoder's `C^k` expected-damage forecast in `[0, 1]`: the
    /// probability-weighted fraction of the picture a loss *now* would
    /// visibly damage. PBPAIR sessions read it off the committed
    /// correctness matrix (`1 − mean σ`); fixed refresh schemes carry no
    /// per-MB forecast and report the uninformative prior 0.5. This is
    /// the same forecast the joint redundancy controller re-rates FEC
    /// with, and the quality discount the admission controller's
    /// Joules-per-quality-point ranking applies.
    pub fn expected_damage(&self) -> f64 {
        match &self.driver {
            SchemeDriver::Pbpair(policy) => 1.0 - policy.matrix().mean_sigma(),
            SchemeDriver::Fixed(_) => 0.5,
        }
    }

    /// Most recent displayed-frame PSNR in milli-dB, clamped to 120 dB
    /// because identical frames report infinite PSNR. Zero before the
    /// first frame.
    pub fn last_psnr_mdb(&self) -> u64 {
        self.quality
            .psnr_series()
            .last()
            .map(|p| (p.clamp(0.0, 120.0) * 1000.0).round() as u64)
            .unwrap_or(0)
    }

    /// Applies a fleet-level SLO alert to this session's watchdog. The
    /// returned quarantine floor (if any) folds into the same threshold
    /// floor the staleness path uses, so an alerting session encodes
    /// conservatively until the ledger clears it.
    pub fn on_slo_alert(&mut self, frame: u64, slo: &str) {
        let floor = self.watchdog.alert(frame, slo);
        self.watchdog_floor_th = self.watchdog_floor_th.max(floor);
    }

    /// Sets the fleet-imposed threshold floor (admission control).
    pub fn set_load_floor(&mut self, th: f64) {
        self.load_floor_th = th.clamp(0.0, 1.0);
    }

    /// Marks the session shed; it will not be stepped again.
    pub fn shed(&mut self) {
        self.shed = true;
    }

    /// Whether the session has been shed.
    pub fn is_shed(&self) -> bool {
        self.shed
    }

    /// Frames encoded so far.
    pub fn frames_encoded(&self) -> u64 {
        self.stats.frames_encoded
    }

    /// Skips one source frame (fleet-imposed frame-rate degradation).
    /// The viewer keeps watching the last displayed picture while the
    /// scene moves on, so the quality ledger charges the drop honestly.
    pub fn drop_frame(&mut self) {
        let original = self.source.next_frame();
        let held = self.decoder.last_frame().clone();
        self.quality.record(&original, &held);
        self.stats.frames_rate_dropped += 1;
        if let Some(t) = &self.tel {
            t.frames_rate_dropped.inc(1);
        }
    }

    /// Runs one frame through the whole loop. Returns the deterministic
    /// outcome record.
    pub fn step_frame(&mut self) -> FrameOutcome {
        let now = self.frame;
        self.frame += 1;

        // Chaos activation: fire every fault scheduled at or before now.
        while self.chaos.front().is_some_and(|e| e.at_frame <= now) {
            let event = self.chaos.pop_front().expect("front checked");
            self.stats.chaos_injected += 1;
            match event.fault {
                ChaosFault::FeedbackBlackout { frames } => self.blackout_until = now + frames,
                ChaosFault::DecoderStall { frames } => self.stall_until = now + frames,
                ChaosFault::BurstKill { frames } => self.kill_until = now + frames,
                ChaosFault::ChannelSwap { spec } => {
                    let seed =
                        splitmix(self.cfg.seed ^ 0xC4A0_5EED ^ now.wrapping_mul(0x9e37_79b9));
                    let model = spec
                        .build_loss(seed)
                        .expect("chaos specs are validated at plan construction");
                    let _ = self.channel.swap_model(model);
                }
            }
        }

        // Advance the channel's frame clock (phase switches for mobility
        // schedules) and apply the phase's feedback RTT, if the channel
        // constrains it.
        self.channel.on_frame(now);
        if let Some(rtt) = self.cfg.channel.as_ref().and_then(|c| c.rtt_at(now)) {
            self.feedback.set_delay(rtt);
        }

        // Encoder side: feedback in, threshold out.
        if let Some(report) = self.feedback.poll(now) {
            self.degradation.on_feedback(now, report.plr);
            if let SchemeDriver::Pbpair(policy) = &mut self.driver {
                policy.set_plr(report.plr.clamp(0.0, 0.999));
            }
            if let Some(ctl) = &mut self.redundancy {
                ctl.on_feedback(report.packet_plr, report.burst);
            }
        }
        let stalled = now < self.stall_until;
        self.watchdog_floor_th = self.watchdog.observe(
            now,
            self.degradation.frames_dark(now),
            stalled,
            self.lost_streak,
        );
        let degradation_th = self.degradation.tick(now);
        // Joint controller: re-decide at GOP boundaries, re-rate the
        // protector when parity moves, and take over the `Intra_Th`
        // lever (the fleet and watchdog floors still outrank it).
        if let Some(gop) = self.redundancy.as_ref().map(|c| c.gop()) {
            if now.is_multiple_of(gop) {
                let expected_damage = self.expected_damage();
                let ctl = self.redundancy.as_mut().expect("presence checked above");
                let d = ctl.decide(expected_damage);
                let want = (d.parity > 0).then(|| ctl.family().with_parity(d.parity));
                if want != self.fec.as_ref().map(|p| p.spec()) {
                    self.fec = want.map(|spec| {
                        FecProtector::new(spec)
                            .expect("a validated family re-rated within max_parity stays valid")
                    });
                }
            }
        }
        let th = match &self.redundancy {
            Some(ctl) => ctl.intra_th(),
            None => degradation_th,
        }
        .max(self.load_floor_th)
        .max(self.watchdog_floor_th);
        if let SchemeDriver::Pbpair(policy) = &mut self.driver {
            policy.set_intra_th(th);
        }

        // Encode.
        let original = self.source.next_frame();
        let encoded = self.encoder.encode_frame(&original, self.driver.as_dyn());
        let frame_ops = *self.encoder.ops() - self.ops_snapshot;
        self.ops_snapshot = *self.encoder.ops();
        let encode_joules = self.energy.encoding_energy(&frame_ops).get();
        // Publish the frame index for stages that can't know it (the
        // decoder), and snapshot the committed C^k predictions the
        // calibration scorer tests against ground truth.
        self.trace.set_frame(encoded.index);
        if let SchemeDriver::Pbpair(policy) = &self.driver {
            self.trace
                .record_sigma(encoded.index, policy.matrix().sigma_values());
        }

        // Packetize (+ FEC) and transmit at packet granularity.
        let packets = self.packetizer.packetize(encoded.index, &encoded.data);
        let mut frame_fec = FecOps::default();
        let sent = match &self.fec {
            Some(fec) => fec.protect(&packets, &mut frame_fec),
            None => packets,
        };
        let sent_bytes: u64 = sent.iter().map(|p| p.len() as u64).sum();
        if self.cfg.pacing_us > 0 {
            // The blocking transmission phase. Wall-clock only: the
            // channel outcome below is drawn from seeded state.
            std::thread::sleep(std::time::Duration::from_micros(self.cfg.pacing_us));
        }
        let mut survivors = self.channel.transmit_packets(&sent);
        if now < self.kill_until {
            // Burst-aligned kill: the whole frame dies at its picture
            // header, first fragment included.
            survivors.clear();
        }

        // Receiver-side burst bookkeeping: per-packet loss flags derived
        // from what was offered vs what materialized (seq identifies
        // each packet; parity packets count — they ride the same
        // channel). PRNG-free, so it is always on.
        let survivor_seqs: Vec<u32> = survivors.iter().map(|p| p.seq).collect();
        for p in &sent {
            let erased = !survivor_seqs.contains(&p.seq);
            self.burst_estimator.record(erased);
            self.packet_plr_estimator.record(erased);
        }

        // Receiver: FEC repair of every recoverable block, best-effort
        // reassembly of the rest, resilient decode of whatever
        // materialized. A partial repair still shrinks the damage.
        let mut fec_recovered = false;
        let bytes = match &self.fec {
            Some(fec) => match fec.recover(&survivors, &mut frame_fec) {
                Some(rec) => {
                    fec_recovered = frame_fec.blocks_repaired > 0;
                    if rec.complete {
                        reassemble_frame(&rec.data)
                    } else {
                        reassemble_frame_damaged(&rec.data)
                    }
                }
                None => reassemble_frame_damaged(&survivors),
            },
            None => reassemble_frame_damaged(&survivors),
        };
        let lost = bytes.is_none();
        let mut damaged = false;
        let displayed = if stalled {
            // The decoder is wedged: arriving data is discarded and the
            // viewer keeps watching the last picture.
            self.stats.frames_stalled += 1;
            self.decoder.last_frame().clone()
        } else {
            match &bytes {
                Some(data) => {
                    let (frame, report) = self.decoder.decode_frame_resilient(data);
                    damaged = report.any_damage();
                    self.stats.decode.absorb(&report);
                    frame
                }
                None => self.decoder.conceal_lost_frame(),
            }
        };
        self.quality.record(&original, &displayed);
        if self.trace.is_enabled() {
            if fec_recovered {
                self.trace.emit(TraceEvent::FecRecovered {
                    frame: encoded.index as u32,
                });
            }
            // Per-MB pixel cost ground truth: receiver picture vs the
            // encoder's own reconstruction (what a loss-free receiver
            // would display), so blast radii price only channel damage.
            let grid = pbpair_media::MbGrid::new(pbpair_media::VideoFormat::QCIF);
            let enc_y = self.encoder.reconstructed().y();
            let dec_y = displayed.y();
            let sad: Vec<u64> = grid
                .iter()
                .map(|mb| {
                    let (x, y) = mb.luma_origin();
                    dec_y.sad_colocated(enc_y, x, y, 16, 16)
                })
                .collect();
            self.trace.record_mb_sad(encoded.index, sad);
        }

        // Receiver-side PLR estimation and feedback (suppressed during a
        // chaos blackout — the receiver cannot reach back at all).
        self.plr_estimator.record(lost);
        if self.cfg.feedback_interval > 0
            && now.is_multiple_of(self.cfg.feedback_interval)
            && now >= self.blackout_until
        {
            self.feedback.send_with_retry(
                now,
                self.plr_estimator.estimate(),
                self.packet_plr_estimator.estimate(),
                self.burst_estimator.estimate(),
                &self.cfg.retry,
            );
        }

        // Ledger.
        let fec_joules = self.energy.fec_energy(&frame_fec).get();
        self.lost_streak = if lost { self.lost_streak + 1 } else { 0 };
        self.stats.frames_encoded += 1;
        self.stats.frames_lost += lost as u64;
        self.stats.frames_damaged += damaged as u64;
        self.stats.fec_recoveries += fec_recovered as u64;
        self.stats.fec += frame_fec;
        self.stats.fec_joules += fec_joules;
        self.stats.encoded_bytes += encoded.data.len() as u64;
        self.stats.sent_bytes += sent_bytes;
        self.stats.encode_joules += encode_joules;

        if let Some(t) = &self.tel {
            t.frames_encoded.inc(1);
            t.frames_lost.inc(lost as u64);
            t.frames_damaged.inc(damaged as u64);
            t.fec_recovered.inc(fec_recovered as u64);
            if let Some(f) = &t.fec {
                f.blocks_repaired.inc(frame_fec.blocks_repaired);
                f.blocks_failed.inc(frame_fec.blocks_failed);
                f.parity_bytes.inc(frame_fec.parity_bytes);
                f.xor_bytes.inc(frame_fec.xor_bytes);
                f.gf_mul_bytes.inc(frame_fec.gf_mul_bytes);
            }
        }

        FrameOutcome {
            encode_joules,
            fec_joules,
            encoded_bytes: encoded.data.len() as u64,
            sent_bytes,
            lost,
            damaged,
            fec_recovered,
            stalled,
            intra_th: th,
        }
    }
}

/// SplitMix64 finalizer — decorrelates per-stream seeds derived from one
/// master seed.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(cfg: SessionConfig, frames: u64) -> (SessionStats, Vec<f64>) {
        let mut s = Session::new(cfg).unwrap();
        for _ in 0..frames {
            s.step_frame();
        }
        (s.stats().clone(), s.quality().psnr_series().to_vec())
    }

    #[test]
    fn session_is_deterministic() {
        let cfg = SessionConfig::standard(3, 99);
        let (a_stats, a_psnr) = run(cfg.clone(), 24);
        let (b_stats, b_psnr) = run(cfg, 24);
        assert_eq!(a_psnr, b_psnr);
        assert_eq!(a_stats.frames_lost, b_stats.frames_lost);
        assert_eq!(a_stats.encoded_bytes, b_stats.encoded_bytes);
        assert_eq!(a_stats.encode_joules, b_stats.encode_joules);
    }

    #[test]
    fn different_sessions_diverge() {
        let (a, _) = run(SessionConfig::standard(0, 7), 12);
        let (b, _) = run(SessionConfig::standard(1, 7), 12);
        // Different ids → different classes and seeds → different bytes.
        assert_ne!(a.encoded_bytes, b.encoded_bytes);
    }

    #[test]
    fn lossy_session_records_losses_and_survives() {
        let mut cfg = SessionConfig::standard(0, 5);
        cfg.plr = 0.35;
        cfg.corruption = 0.5;
        let (stats, psnr) = run(cfg, 40);
        assert_eq!(stats.frames_encoded, 40);
        assert_eq!(psnr.len(), 40);
        assert!(stats.frames_lost + stats.frames_damaged > 0);
        assert!(stats.encode_joules > 0.0);
    }

    #[test]
    fn fec_session_recovers_fragments() {
        let mut cfg = SessionConfig::standard(0, 11);
        cfg.plr = 0.10;
        cfg.corruption = 0.0;
        cfg.mtu = 200; // force multi-fragment frames so FEC has groups
        cfg.fec_group = Some(3);
        let mut s = Session::new(cfg).unwrap();
        for _ in 0..60 {
            s.step_frame();
        }
        assert!(
            s.stats().fec_recoveries > 0,
            "10% packet loss over 60 multi-fragment frames must exercise FEC"
        );
        // Parity overhead must show up on the wire.
        assert!(s.stats().sent_bytes > s.stats().encoded_bytes);
    }

    #[test]
    fn fec_beats_no_fec_on_fragment_loss() {
        let base = {
            let mut c = SessionConfig::standard(0, 21);
            c.plr = 0.08;
            c.corruption = 0.0;
            c.mtu = 250;
            c
        };
        let mut with = base.clone();
        with.fec_group = Some(3);
        let (no_fec, _) = run(base, 80);
        let (fec, _) = run(with, 80);
        assert!(
            fec.frames_lost < no_fec.frames_lost,
            "fec {} vs plain {}",
            fec.frames_lost,
            no_fec.frames_lost
        );
    }

    #[test]
    fn load_floor_raises_intra_th_and_cuts_energy() {
        let cfg = SessionConfig::standard(1, 13);
        let mut free = Session::new(cfg.clone()).unwrap();
        let mut capped = Session::new(cfg).unwrap();
        capped.set_load_floor(0.999);
        let mut free_j = 0.0;
        let mut capped_j = 0.0;
        for _ in 0..12 {
            free_j += free.step_frame().encode_joules;
            let out = capped.step_frame();
            assert!(out.intra_th >= 0.999);
            capped_j += out.encode_joules;
        }
        assert!(
            capped_j < free_j,
            "high-intra floor must cut encode energy: {capped_j} vs {free_j}"
        );
    }

    #[test]
    fn drop_frame_charges_quality_but_no_energy() {
        let mut s = Session::new(SessionConfig::standard(2, 17)).unwrap();
        s.step_frame();
        let j = s.stats().encode_joules;
        s.drop_frame();
        assert_eq!(s.stats().frames_rate_dropped, 1);
        assert_eq!(
            s.stats().encode_joules,
            j,
            "a dropped frame encodes nothing"
        );
        assert_eq!(s.quality().frames(), 2, "the viewer still saw a frame slot");
    }

    #[test]
    fn zero_fec_group_rejected() {
        let mut cfg = SessionConfig::standard(0, 1);
        cfg.fec_group = Some(0);
        assert!(Session::new(cfg).is_err());
    }

    #[test]
    fn conflicting_fec_sources_rejected() {
        let mut cfg = SessionConfig::standard(0, 1);
        cfg.fec_group = Some(3);
        cfg.fec = Some(FecSpec::Rs { k: 4, r: 2 });
        assert!(Session::new(cfg).is_err());
        let mut cfg = SessionConfig::standard(0, 1);
        cfg.fec = Some(FecSpec::Rs { k: 4, r: 2 });
        cfg.redundancy = Some(RedundancyConfig::new(FecSpec::Rs { k: 4, r: 1 }));
        assert!(Session::new(cfg).is_err());
        let mut cfg = SessionConfig::standard(0, 1);
        cfg.fec = Some(FecSpec::Rs { k: 200, r: 60 });
        assert!(Session::new(cfg).is_err(), "invalid spec must not build");
    }

    #[test]
    fn rs_session_charges_fec_ops_and_energy() {
        let mut cfg = SessionConfig::standard(0, 31);
        cfg.plr = 0.10;
        cfg.corruption = 0.0;
        cfg.mtu = 200;
        cfg.fec = Some(FecSpec::Rs { k: 4, r: 2 });
        let mut s = Session::new(cfg).unwrap();
        for _ in 0..60 {
            s.step_frame();
        }
        let stats = s.stats();
        assert!(stats.fec.blocks_encoded > 0);
        assert!(stats.fec.parity_bytes > 0);
        assert!(stats.fec.gf_mul_bytes > 0, "RS parity is GF(256) work");
        assert!(stats.fec_joules > 0.0);
        assert!(
            stats.fec_recoveries > 0,
            "10% loss over 60 multi-fragment frames must repair something"
        );
        assert!(stats.sent_bytes > stats.encoded_bytes);
    }

    #[test]
    fn parity_bytes_hit_the_wire_exactly_once() {
        // Same seed with and without FEC: frame 0 is encoded before any
        // feedback diverges the trajectories, so the wire-byte delta of
        // that frame must be exactly the parity bytes the ops ledger
        // charged — parity is neither double-counted nor free.
        let base = {
            let mut c = SessionConfig::standard(0, 77);
            c.corruption = 0.0;
            c.mtu = 200;
            c
        };
        let mut with = base.clone();
        with.fec = Some(FecSpec::Rs { k: 4, r: 2 });
        let mut plain = Session::new(base).unwrap();
        let mut protected = Session::new(with).unwrap();
        let a = plain.step_frame();
        let b = protected.step_frame();
        assert_eq!(a.encoded_bytes, b.encoded_bytes, "same seed, same encode");
        let parity = protected.stats().fec.parity_bytes;
        assert!(parity > 0);
        assert_eq!(
            b.sent_bytes,
            a.sent_bytes + parity,
            "wire delta must equal charged parity bytes exactly"
        );
    }

    #[test]
    fn adaptive_session_decides_and_replays() {
        let mut cfg = SessionConfig::standard(0, 41);
        cfg.plr = 0.15;
        cfg.corruption = 0.0;
        cfg.mtu = 200;
        cfg.redundancy = Some(RedundancyConfig {
            budget_ratio: 1.5,
            gop: 5,
            ..RedundancyConfig::new(FecSpec::Rs { k: 4, r: 1 })
        });
        let run_once = || {
            let mut s = Session::new(cfg.clone()).unwrap();
            for _ in 0..40 {
                s.step_frame();
            }
            assert!(s.fec_enabled());
            let d = s.redundancy_decision().expect("controller runs");
            (s.stats().clone(), s.quality().psnr_series().to_vec(), d)
        };
        let (a_stats, a_psnr, a_d) = run_once();
        let (b_stats, b_psnr, b_d) = run_once();
        assert_eq!(a_psnr, b_psnr, "adaptive FEC must replay");
        assert_eq!(a_d, b_d);
        assert_eq!(a_stats.fec, b_stats.fec);
        assert!(
            a_d.parity >= 1,
            "15% loss must keep the controller protecting"
        );
        assert!(a_stats.fec.blocks_encoded > 0);
    }

    #[test]
    fn burst_estimate_reaches_the_controller() {
        let mut cfg = SessionConfig::standard(0, 51);
        cfg.plr = 0.20;
        cfg.corruption = 0.0;
        cfg.mtu = 200;
        let mut s = Session::new(cfg).unwrap();
        for _ in 0..40 {
            s.step_frame();
        }
        assert!(
            s.burst_estimate() >= 1.0,
            "estimator must have a run-length estimate"
        );
    }
}
