//! One streaming session: the complete per-client loop.
//!
//! A [`Session`] owns every stage the single-clip eval pipeline runs —
//! synthetic source → PBPAIR encoder → RTP packetization (with optional
//! XOR FEC) → lossy + corrupting channel → resilient decoder → PLR
//! feedback over its own lossy return link — plus the two controllers
//! that steer `Intra_Th`:
//!
//! * a [`DegradationController`] tracking the session's *network*: PLR
//!   compensation while feedback reports flow, conservative backoff
//!   while the return channel is dark;
//! * a *load floor* imposed from outside by the fleet's admission
//!   controller: under overload the floor rises, forcing cheap
//!   high-intra encodes (PBPAIR's energy lever doubles as a CPU lever —
//!   intra decisions skip motion estimation entirely).
//!
//! The operating threshold is the max of the two — a session never
//! undercuts either its network's needs or the fleet's.
//!
//! Everything inside a session is seeded from (master seed, session id),
//! so a session's entire trajectory is deterministic no matter which
//! worker threads execute its frames, or in what interleaving with other
//! sessions.

use pbpair::adapt::{DegradationConfig, DegradationController};
use pbpair::{PbpairConfig, PbpairPolicy};
use pbpair_codec::{DecodeReport, Decoder, Encoder, EncoderConfig, OpCounts};
use pbpair_energy::{EnergyModel, IPAQ_H5555};
use pbpair_media::metrics::QualityStats;
use pbpair_media::synth::{MotionClass, SyntheticSequence};
use pbpair_netsim::{
    reassemble_frame, reassemble_frame_damaged, CorruptingChannel, CorruptionProfile, FeedbackLink,
    Packetizer, UniformLoss, WindowPlrEstimator, XorFec,
};
use pbpair_telemetry::{Counter, Telemetry};
use pbpair_trace::{Event as TraceEvent, Tracer};
use serde::{Deserialize, Serialize};

/// Per-session knobs, normally filled in by the manager from a
/// fleet-level [`crate::ServeConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SessionConfig {
    /// Session id (stable across the run; also the affinity hint).
    pub id: u32,
    /// Seed for every seeded component, already mixed per session.
    pub seed: u64,
    /// Source content class (sessions get diverse motion classes so
    /// per-frame cost is uneven — the load the scheduler must balance).
    pub class: MotionClass,
    /// Per-packet loss rate of the forward channel.
    pub plr: f64,
    /// Payload corruption intensity in `[0, 1]`.
    pub corruption: f64,
    /// XOR-FEC group size; `None` disables FEC for this session.
    pub fec_group: Option<usize>,
    /// Payload MTU.
    pub mtu: usize,
    /// Receiver sends a PLR report every this many frames.
    pub feedback_interval: u64,
    /// Return-path transit delay in frame periods.
    pub feedback_delay: u64,
    /// Loss rate of the feedback return path.
    pub feedback_plr: f64,
    /// Anchor operating point for the degradation controller.
    pub base_intra_th: f64,
    /// Modeled transmission/pacing wait per frame, microseconds. This is
    /// the blocking network phase of a real streaming server: the worker
    /// sleeps, so waits from different sessions overlap when the pool has
    /// spare workers. Affects wall-clock timing only — never the
    /// deterministic outcome.
    pub pacing_us: u64,
}

impl SessionConfig {
    /// A session at the paper's standard operating point: 10% packet
    /// loss, light corruption, no FEC, RTCP-ish feedback cadence.
    pub fn standard(id: u32, seed: u64) -> Self {
        SessionConfig {
            id,
            seed,
            class: MotionClass::all()[id as usize % 3],
            plr: 0.10,
            corruption: 0.2,
            fec_group: None,
            mtu: pbpair_netsim::DEFAULT_MTU,
            feedback_interval: 5,
            feedback_delay: 2,
            feedback_plr: 0.10,
            base_intra_th: 0.9,
            pacing_us: 0,
        }
    }
}

/// What one frame step produced — the deterministic per-frame record the
/// admission controller and the report aggregate from.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FrameOutcome {
    /// Encoding energy of this frame under the session's device model.
    pub encode_joules: f64,
    /// Encoded size in bytes (before FEC overhead).
    pub encoded_bytes: u64,
    /// Bytes actually offered to the channel (with FEC overhead).
    pub sent_bytes: u64,
    /// Whether nothing usable arrived (whole-frame concealment).
    pub lost: bool,
    /// Whether the frame arrived damaged and went through resilient
    /// decode (false for clean or lost frames).
    pub damaged: bool,
    /// Whether XOR FEC repaired the fragment set of this frame.
    pub fec_recovered: bool,
    /// `Intra_Th` in force for this frame.
    pub intra_th: f64,
}

/// Lifetime counters of one session (deterministic).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SessionStats {
    /// Frames encoded and transmitted.
    pub frames_encoded: u64,
    /// Frames skipped by fleet-imposed frame-rate degradation.
    pub frames_rate_dropped: u64,
    /// Frames lost outright on the channel.
    pub frames_lost: u64,
    /// Frames delivered damaged.
    pub frames_damaged: u64,
    /// Frames whose fragment set XOR FEC repaired.
    pub fec_recoveries: u64,
    /// Encoded payload bytes.
    pub encoded_bytes: u64,
    /// Bytes offered to the channel (incl. FEC parity).
    pub sent_bytes: u64,
    /// Encoding energy total (Joules).
    pub encode_joules: f64,
    /// Aggregate resilient-decode accounting.
    pub decode: DecodeReport,
}

/// One live streaming session. See the module docs for the loop.
pub struct Session {
    cfg: SessionConfig,
    source: SyntheticSequence,
    policy: PbpairPolicy,
    encoder: Encoder,
    decoder: Decoder,
    packetizer: Packetizer,
    fec: Option<XorFec>,
    channel: CorruptingChannel,
    feedback: FeedbackLink,
    plr_estimator: WindowPlrEstimator,
    degradation: DegradationController,
    energy: EnergyModel,
    ops_snapshot: OpCounts,
    /// Fleet-imposed `Intra_Th` floor (admission control), 0 when idle.
    load_floor_th: f64,
    /// Next frame index to encode.
    frame: u64,
    quality: QualityStats,
    stats: SessionStats,
    shed: bool,
    /// Session-level telemetry handles; `None` until
    /// [`Session::set_telemetry`]. The encoder, decoder, and channel
    /// carry their own handles wired by the same call.
    tel: Option<SessionTelemetry>,
    /// Causal tracer; disabled until [`Session::set_tracer`]. The
    /// encoder, decoder, and forward channel share clones of it.
    trace: Tracer,
}

/// Telemetry the session flushes per frame slot — all deterministic
/// quantities (frame outcomes are a pure function of the session seed).
#[derive(Debug)]
struct SessionTelemetry {
    frames_encoded: Counter,
    frames_rate_dropped: Counter,
    frames_lost: Counter,
    frames_damaged: Counter,
    fec_recovered: Counter,
}

impl SessionTelemetry {
    fn new(tel: &Telemetry) -> Self {
        SessionTelemetry {
            frames_encoded: tel.counter("serve.frames_encoded"),
            frames_rate_dropped: tel.counter("serve.frames_rate_dropped"),
            frames_lost: tel.counter("serve.frames_lost"),
            frames_damaged: tel.counter("serve.frames_damaged"),
            fec_recovered: tel.counter("serve.fec_recovered"),
        }
    }
}

impl Session {
    /// Builds a session; all components are seeded from `cfg.seed` with
    /// distinct stream constants so they do not correlate.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid PBPAIR or controller configuration.
    pub fn new(cfg: SessionConfig) -> Result<Self, String> {
        let sub = |stream: u64| splitmix(cfg.seed ^ stream.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let format = pbpair_media::VideoFormat::QCIF;
        let policy = PbpairPolicy::new(
            format,
            PbpairConfig {
                intra_th: cfg.base_intra_th,
                plr: cfg.plr,
                ..PbpairConfig::default()
            },
        )?;
        let degradation = DegradationController::new(DegradationConfig {
            base_th: cfg.base_intra_th,
            base_plr: cfg.plr,
            ..DegradationConfig::default()
        })?;
        if let Some(g) = cfg.fec_group {
            if g == 0 {
                return Err("fec group size must be positive".to_string());
            }
        }
        Ok(Session {
            source: SyntheticSequence::for_class(cfg.class, sub(1)),
            policy,
            encoder: Encoder::new(EncoderConfig::default()),
            decoder: Decoder::new(format),
            packetizer: Packetizer::new(cfg.mtu),
            fec: cfg.fec_group.map(XorFec::new),
            channel: CorruptingChannel::new(
                Box::new(UniformLoss::new(cfg.plr, sub(2))),
                CorruptionProfile::with_intensity(cfg.corruption),
                sub(3),
            ),
            feedback: FeedbackLink::new(
                Box::new(UniformLoss::new(cfg.feedback_plr, sub(4))),
                cfg.feedback_delay,
            ),
            plr_estimator: WindowPlrEstimator::new(30),
            degradation,
            energy: EnergyModel::new(IPAQ_H5555),
            ops_snapshot: OpCounts::default(),
            load_floor_th: 0.0,
            frame: 0,
            quality: QualityStats::new(),
            stats: SessionStats::default(),
            shed: false,
            tel: None,
            trace: Tracer::disabled(),
            cfg,
        })
    }

    /// Attaches a telemetry context to the session and every pipeline
    /// stage it owns (encoder, decoder, forward channel). Pass a handle
    /// pre-bound to a shard (see `Telemetry::shard`) so concurrent
    /// sessions write to disjoint cache lines; totals are identical for
    /// any sharding. A disabled context detaches everything.
    pub fn set_telemetry(&mut self, tel: &Telemetry) {
        self.encoder.set_telemetry(tel);
        self.decoder.set_telemetry(tel);
        self.channel.set_telemetry(tel);
        self.tel = tel.is_enabled().then(|| SessionTelemetry::new(tel));
    }

    /// Attaches a causal tracer to the session and every stage it owns.
    /// The encoder then records per-MB coding provenance, the channel
    /// per-packet loss/corruption events, the decoder
    /// concealment/resync events, and the session itself the `C^k`
    /// snapshots and per-MB pixel cost the replay joins against.
    pub fn set_tracer(&mut self, trace: &Tracer) {
        self.encoder.set_tracer(trace);
        self.decoder.set_tracer(trace);
        self.channel.set_tracer(trace);
        self.trace = trace.clone();
    }

    /// The session's configuration.
    pub fn config(&self) -> &SessionConfig {
        &self.cfg
    }

    /// Lifetime counters.
    pub fn stats(&self) -> &SessionStats {
        &self.stats
    }

    /// Decoder-side quality accounting.
    pub fn quality(&self) -> &QualityStats {
        &self.quality
    }

    /// The receiver's current PLR estimate.
    pub fn plr_estimate(&self) -> f64 {
        self.plr_estimator.estimate()
    }

    /// The `Intra_Th` the next frame would use.
    pub fn current_intra_th(&self) -> f64 {
        self.degradation.intra_th().max(self.load_floor_th)
    }

    /// Sets the fleet-imposed threshold floor (admission control).
    pub fn set_load_floor(&mut self, th: f64) {
        self.load_floor_th = th.clamp(0.0, 1.0);
    }

    /// Marks the session shed; it will not be stepped again.
    pub fn shed(&mut self) {
        self.shed = true;
    }

    /// Whether the session has been shed.
    pub fn is_shed(&self) -> bool {
        self.shed
    }

    /// Frames encoded so far.
    pub fn frames_encoded(&self) -> u64 {
        self.stats.frames_encoded
    }

    /// Skips one source frame (fleet-imposed frame-rate degradation).
    /// The viewer keeps watching the last displayed picture while the
    /// scene moves on, so the quality ledger charges the drop honestly.
    pub fn drop_frame(&mut self) {
        let original = self.source.next_frame();
        let held = self.decoder.last_frame().clone();
        self.quality.record(&original, &held);
        self.stats.frames_rate_dropped += 1;
        if let Some(t) = &self.tel {
            t.frames_rate_dropped.inc(1);
        }
    }

    /// Runs one frame through the whole loop. Returns the deterministic
    /// outcome record.
    pub fn step_frame(&mut self) -> FrameOutcome {
        let now = self.frame;
        self.frame += 1;

        // Encoder side: feedback in, threshold out.
        if let Some(report) = self.feedback.poll(now) {
            self.degradation.on_feedback(now, report.plr);
            self.policy.set_plr(report.plr.clamp(0.0, 0.999));
        }
        let th = self.degradation.tick(now).max(self.load_floor_th);
        self.policy.set_intra_th(th);

        // Encode.
        let original = self.source.next_frame();
        let encoded = self.encoder.encode_frame(&original, &mut self.policy);
        let frame_ops = *self.encoder.ops() - self.ops_snapshot;
        self.ops_snapshot = *self.encoder.ops();
        let encode_joules = self.energy.encoding_energy(&frame_ops).get();
        // Publish the frame index for stages that can't know it (the
        // decoder), and snapshot the committed C^k predictions the
        // calibration scorer tests against ground truth.
        self.trace.set_frame(encoded.index);
        self.trace
            .record_sigma(encoded.index, self.policy.matrix().sigma_values());

        // Packetize (+ FEC) and transmit at packet granularity.
        let packets = self.packetizer.packetize(encoded.index, &encoded.data);
        let sent = match &self.fec {
            Some(fec) => fec.protect(&packets),
            None => packets,
        };
        let sent_bytes: u64 = sent.iter().map(|p| p.len() as u64).sum();
        if self.cfg.pacing_us > 0 {
            // The blocking transmission phase. Wall-clock only: the
            // channel outcome below is drawn from seeded state.
            std::thread::sleep(std::time::Duration::from_micros(self.cfg.pacing_us));
        }
        let survivors = self.channel.transmit_packets(&sent);

        // Receiver: FEC repair if possible, best-effort reassembly
        // otherwise, resilient decode of whatever materialized.
        let mut fec_recovered = false;
        let bytes = match &self.fec {
            Some(fec) => match fec.recover(&survivors) {
                Some(repaired) => {
                    fec_recovered = true;
                    reassemble_frame(&repaired)
                }
                None => reassemble_frame_damaged(&survivors),
            },
            None => reassemble_frame_damaged(&survivors),
        };
        let lost = bytes.is_none();
        let mut damaged = false;
        let displayed = match &bytes {
            Some(data) => {
                let (frame, report) = self.decoder.decode_frame_resilient(data);
                damaged = report.any_damage();
                self.stats.decode.absorb(&report);
                frame
            }
            None => self.decoder.conceal_lost_frame(),
        };
        self.quality.record(&original, &displayed);
        if self.trace.is_enabled() {
            if fec_recovered {
                self.trace.emit(TraceEvent::FecRecovered {
                    frame: encoded.index as u32,
                });
            }
            // Per-MB pixel cost ground truth: receiver picture vs the
            // encoder's own reconstruction (what a loss-free receiver
            // would display), so blast radii price only channel damage.
            let grid = pbpair_media::MbGrid::new(pbpair_media::VideoFormat::QCIF);
            let enc_y = self.encoder.reconstructed().y();
            let dec_y = displayed.y();
            let sad: Vec<u64> = grid
                .iter()
                .map(|mb| {
                    let (x, y) = mb.luma_origin();
                    dec_y.sad_colocated(enc_y, x, y, 16, 16)
                })
                .collect();
            self.trace.record_mb_sad(encoded.index, sad);
        }

        // Receiver-side PLR estimation and feedback.
        self.plr_estimator.record(lost);
        if self.cfg.feedback_interval > 0 && now.is_multiple_of(self.cfg.feedback_interval) {
            self.feedback.send(now, self.plr_estimator.estimate());
        }

        // Ledger.
        self.stats.frames_encoded += 1;
        self.stats.frames_lost += lost as u64;
        self.stats.frames_damaged += damaged as u64;
        self.stats.fec_recoveries += fec_recovered as u64;
        self.stats.encoded_bytes += encoded.data.len() as u64;
        self.stats.sent_bytes += sent_bytes;
        self.stats.encode_joules += encode_joules;

        if let Some(t) = &self.tel {
            t.frames_encoded.inc(1);
            t.frames_lost.inc(lost as u64);
            t.frames_damaged.inc(damaged as u64);
            t.fec_recovered.inc(fec_recovered as u64);
        }

        FrameOutcome {
            encode_joules,
            encoded_bytes: encoded.data.len() as u64,
            sent_bytes,
            lost,
            damaged,
            fec_recovered,
            intra_th: th,
        }
    }
}

/// SplitMix64 finalizer — decorrelates per-stream seeds derived from one
/// master seed.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(cfg: SessionConfig, frames: u64) -> (SessionStats, Vec<f64>) {
        let mut s = Session::new(cfg).unwrap();
        for _ in 0..frames {
            s.step_frame();
        }
        (s.stats().clone(), s.quality().psnr_series().to_vec())
    }

    #[test]
    fn session_is_deterministic() {
        let cfg = SessionConfig::standard(3, 99);
        let (a_stats, a_psnr) = run(cfg, 24);
        let (b_stats, b_psnr) = run(cfg, 24);
        assert_eq!(a_psnr, b_psnr);
        assert_eq!(a_stats.frames_lost, b_stats.frames_lost);
        assert_eq!(a_stats.encoded_bytes, b_stats.encoded_bytes);
        assert_eq!(a_stats.encode_joules, b_stats.encode_joules);
    }

    #[test]
    fn different_sessions_diverge() {
        let (a, _) = run(SessionConfig::standard(0, 7), 12);
        let (b, _) = run(SessionConfig::standard(1, 7), 12);
        // Different ids → different classes and seeds → different bytes.
        assert_ne!(a.encoded_bytes, b.encoded_bytes);
    }

    #[test]
    fn lossy_session_records_losses_and_survives() {
        let mut cfg = SessionConfig::standard(0, 5);
        cfg.plr = 0.35;
        cfg.corruption = 0.5;
        let (stats, psnr) = run(cfg, 40);
        assert_eq!(stats.frames_encoded, 40);
        assert_eq!(psnr.len(), 40);
        assert!(stats.frames_lost + stats.frames_damaged > 0);
        assert!(stats.encode_joules > 0.0);
    }

    #[test]
    fn fec_session_recovers_fragments() {
        let mut cfg = SessionConfig::standard(0, 11);
        cfg.plr = 0.10;
        cfg.corruption = 0.0;
        cfg.mtu = 200; // force multi-fragment frames so FEC has groups
        cfg.fec_group = Some(3);
        let mut s = Session::new(cfg).unwrap();
        for _ in 0..60 {
            s.step_frame();
        }
        assert!(
            s.stats().fec_recoveries > 0,
            "10% packet loss over 60 multi-fragment frames must exercise FEC"
        );
        // Parity overhead must show up on the wire.
        assert!(s.stats().sent_bytes > s.stats().encoded_bytes);
    }

    #[test]
    fn fec_beats_no_fec_on_fragment_loss() {
        let base = {
            let mut c = SessionConfig::standard(0, 21);
            c.plr = 0.08;
            c.corruption = 0.0;
            c.mtu = 250;
            c
        };
        let mut with = base;
        with.fec_group = Some(3);
        let (no_fec, _) = run(base, 80);
        let (fec, _) = run(with, 80);
        assert!(
            fec.frames_lost < no_fec.frames_lost,
            "fec {} vs plain {}",
            fec.frames_lost,
            no_fec.frames_lost
        );
    }

    #[test]
    fn load_floor_raises_intra_th_and_cuts_energy() {
        let cfg = SessionConfig::standard(1, 13);
        let mut free = Session::new(cfg).unwrap();
        let mut capped = Session::new(cfg).unwrap();
        capped.set_load_floor(0.999);
        let mut free_j = 0.0;
        let mut capped_j = 0.0;
        for _ in 0..12 {
            free_j += free.step_frame().encode_joules;
            let out = capped.step_frame();
            assert!(out.intra_th >= 0.999);
            capped_j += out.encode_joules;
        }
        assert!(
            capped_j < free_j,
            "high-intra floor must cut encode energy: {capped_j} vs {free_j}"
        );
    }

    #[test]
    fn drop_frame_charges_quality_but_no_energy() {
        let mut s = Session::new(SessionConfig::standard(2, 17)).unwrap();
        s.step_frame();
        let j = s.stats().encode_joules;
        s.drop_frame();
        assert_eq!(s.stats().frames_rate_dropped, 1);
        assert_eq!(
            s.stats().encode_joules,
            j,
            "a dropped frame encodes nothing"
        );
        assert_eq!(s.quality().frames(), 2, "the viewer still saw a frame slot");
    }

    #[test]
    fn zero_fec_group_rejected() {
        let mut cfg = SessionConfig::standard(0, 1);
        cfg.fec_group = Some(0);
        assert!(Session::new(cfg).is_err());
    }
}
