//! Aggregate serving results.
//!
//! A [`ServeReport`] is split along the determinism boundary:
//!
//! * everything in [`SessionReport`] and the fleet-level counters is a
//!   pure function of the [`crate::ServeConfig`] — identical no matter
//!   how many workers executed the run or how the scheduler interleaved
//!   them ([`ServeReport::deterministic_digest`] serializes exactly this
//!   part, and the replay test asserts byte-identity across worker
//!   counts);
//! * [`FleetTiming`] carries the wall-clock measurements (throughput,
//!   latency percentiles) that are the *point* of running with more
//!   workers and are naturally machine- and schedule-dependent.

use crate::health::{HealthState, HealthTransition};
use pbpair_codec::DecodeReport;
use pbpair_netsim::FecOps;
use pbpair_telemetry::slo::AlertEvent;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Per-session outcome (deterministic).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionReport {
    /// Session id.
    pub id: u32,
    /// Content class label.
    pub class: String,
    /// Refresh-scheme label (`PBPAIR`, `GOP-n`, ...).
    pub scheme: String,
    /// Device profile label (`ipaq` / `zaurus`).
    pub device: String,
    /// Frames encoded and transmitted.
    pub frames_encoded: u64,
    /// Frames skipped under fleet-imposed rate degradation.
    pub frames_rate_dropped: u64,
    /// Frames lost whole on the channel.
    pub frames_lost: u64,
    /// Frames delivered damaged (resilient decode engaged).
    pub frames_damaged: u64,
    /// Frames the display held because the decoder was stalled.
    pub frames_stalled: u64,
    /// Chaos faults injected into this session.
    pub chaos_injected: u64,
    /// Frames where FEC reconstructed at least one erased fragment.
    pub fec_recoveries: u64,
    /// Lifetime FEC arithmetic ledger (all zero when FEC is off).
    pub fec: FecOps,
    /// Modeled FEC processing energy (Joules).
    pub fec_joules: f64,
    /// Codec label (`"rs-8.2"`, ...); empty when FEC is off.
    pub fec_codec: String,
    /// Mean decoder-side PSNR over every displayed frame slot.
    pub avg_psnr_db: f64,
    /// Encoded payload bytes.
    pub encoded_bytes: u64,
    /// Bytes on the wire (incl. FEC parity).
    pub sent_bytes: u64,
    /// Modeled encoding energy (Joules).
    pub encode_joules: f64,
    /// The receiver's final PLR estimate.
    pub plr_estimate: f64,
    /// `Intra_Th` in force after the last frame.
    pub final_intra_th: f64,
    /// Whether admission control shed this session before the end.
    pub shed: bool,
    /// Final health state of the session's staleness watchdog.
    pub health: HealthState,
    /// Every health transition the watchdog recorded, in frame order.
    pub health_log: Vec<HealthTransition>,
    /// Resilient-decode accounting.
    pub decode: DecodeReport,
}

/// Fleet-wide tally of final session health states (deterministic).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FleetHealth {
    /// Sessions that never left [`HealthState::Healthy`].
    pub healthy: u32,
    /// Sessions ending in [`HealthState::Degraded`].
    pub degraded: u32,
    /// Sessions ending in [`HealthState::Quarantined`].
    pub quarantined: u32,
    /// Sessions that were impaired and ended [`HealthState::Recovered`].
    pub recovered: u32,
}

impl FleetHealth {
    /// Tallies one session's final state.
    pub fn count(&mut self, state: HealthState) {
        match state {
            HealthState::Healthy => self.healthy += 1,
            HealthState::Degraded => self.degraded += 1,
            HealthState::Quarantined => self.quarantined += 1,
            HealthState::Recovered => self.recovered += 1,
        }
    }

    /// Sessions that ended the run impaired (degraded or quarantined).
    pub fn impaired(&self) -> u32 {
        self.degraded + self.quarantined
    }
}

/// Wall-clock fleet measurements (machine- and schedule-dependent).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetTiming {
    /// Wall-clock seconds for the whole run.
    pub wall_s: f64,
    /// Frames fully processed per wall-clock second.
    pub throughput_fps: f64,
    /// Median per-frame service latency (submit → done), milliseconds.
    pub p50_frame_ms: f64,
    /// 99th-percentile per-frame service latency, milliseconds.
    pub p99_frame_ms: f64,
    /// Jobs that ran on a worker other than their affinity hint.
    pub migrations: u64,
}

/// The full result of one serving run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeReport {
    /// Worker threads used (recorded for context; does not affect the
    /// deterministic portion).
    pub workers: usize,
    /// Rounds executed (one frame slot per live session per round).
    pub rounds: usize,
    /// Per-session outcomes, ordered by id.
    pub sessions: Vec<SessionReport>,
    /// Sessions shed by admission control.
    pub shed_count: u32,
    /// Rounds spent below normal service level.
    pub degraded_rounds: u64,
    /// Final lag in round-budget units.
    pub final_lag: f64,
    /// Total frames fully processed (encoded + delivered/concealed).
    pub total_frames: u64,
    /// Total bytes offered to the channels.
    pub total_sent_bytes: u64,
    /// Mean of the per-session average PSNRs (unshed sessions).
    pub mean_psnr_db: f64,
    /// Total modeled encode energy (Joules).
    pub total_encode_joules: f64,
    /// Total modeled FEC processing energy (Joules; 0 without FEC).
    pub total_fec_joules: f64,
    /// Final health tally across the fleet.
    pub health: FleetHealth,
    /// SLO burn-rate alert transitions, in firing order (empty unless
    /// the observability plane ran with SLOs configured). Deterministic:
    /// the engine only sees deterministic counters.
    pub alerts: Vec<AlertEvent>,
    /// Wall-clock measurements.
    pub timing: FleetTiming,
}

impl ServeReport {
    /// Serializes every schedule-independent field with fixed formatting.
    /// Two runs of the same [`crate::ServeConfig`] must produce
    /// byte-identical digests at *any* worker count — this is the
    /// contract the determinism test enforces.
    pub fn deterministic_digest(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "rounds={} shed={} degraded_rounds={} lag={:.9} frames={} sent_bytes={} \
             mean_psnr={:.6} energy_j={:.9}",
            self.rounds,
            self.shed_count,
            self.degraded_rounds,
            self.final_lag,
            self.total_frames,
            self.total_sent_bytes,
            self.mean_psnr_db,
            self.total_encode_joules,
        );
        let _ = writeln!(
            out,
            "health healthy={} degraded={} quarantined={} recovered={}",
            self.health.healthy,
            self.health.degraded,
            self.health.quarantined,
            self.health.recovered,
        );
        // Alert lines only when the observability plane produced any, so
        // observability-off digests (including the committed scenario
        // goldens) keep the pre-observability format.
        for a in &self.alerts {
            let _ = writeln!(
                out,
                "alert round={} slo={} state={} burn_fast_milli={} burn_slow_milli={}",
                a.round,
                a.slo,
                a.state.label(),
                a.burn_fast_milli,
                a.burn_slow_milli,
            );
        }
        for s in &self.sessions {
            let _ = writeln!(
                out,
                "session id={} class={} scheme={} device={} enc={} dropped={} lost={} \
                 damaged={} stalled={} chaos={} fec={} \
                 psnr={:.6} bytes={}/{} j={:.9} plr={:.6} th={:.9} shed={} health={} \
                 dec_frames={} dec_recovered={} dec_mbs={} dec_resyncs={}",
                s.id,
                s.class,
                s.scheme,
                s.device,
                s.frames_encoded,
                s.frames_rate_dropped,
                s.frames_lost,
                s.frames_damaged,
                s.frames_stalled,
                s.chaos_injected,
                s.fec_recoveries,
                s.avg_psnr_db,
                s.encoded_bytes,
                s.sent_bytes,
                s.encode_joules,
                s.plr_estimate,
                s.final_intra_th,
                s.shed,
                s.health.label(),
                s.decode.frames_decoded,
                s.decode.frames_recovered,
                s.decode.mbs_concealed,
                s.decode.resyncs,
            );
            // FEC sub-line only for FEC-enabled sessions, so FEC-off
            // digests (including the committed scenario goldens) are
            // byte-identical to the pre-FEC format.
            if !s.fec_codec.is_empty() {
                let _ = writeln!(
                    out,
                    "  fec session={} codec={} blocks_enc={} blocks_rep={} blocks_fail={} \
                     parity_bytes={} xor_b={} gf_b={} inv={} fec_j={:.9}",
                    s.id,
                    s.fec_codec,
                    s.fec.blocks_encoded,
                    s.fec.blocks_repaired,
                    s.fec.blocks_failed,
                    s.fec.parity_bytes,
                    s.fec.xor_bytes,
                    s.fec.gf_mul_bytes,
                    s.fec.matrix_inversions,
                    s.fec_joules,
                );
            }
            for t in &s.health_log {
                let _ = writeln!(
                    out,
                    "  health_transition session={} frame={} {}->{} reason={}",
                    s.id,
                    t.frame,
                    t.from.label(),
                    t.to.label(),
                    t.reason,
                );
            }
        }
        out
    }
}

/// Computes the `q`-quantile (0 ≤ q ≤ 1) of unsorted samples by the
/// nearest-rank method. Returns 0 for an empty slice.
pub fn quantile_ms(samples: &[f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("latency is never NaN"));
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_use_nearest_rank() {
        let samples = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(quantile_ms(&samples, 0.5), 3.0);
        assert_eq!(quantile_ms(&samples, 0.99), 5.0);
        assert_eq!(quantile_ms(&samples, 0.0), 1.0);
        assert_eq!(quantile_ms(&[], 0.5), 0.0);
        assert_eq!(quantile_ms(&[7.0], 0.5), 7.0);
    }
}
