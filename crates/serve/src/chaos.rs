//! Fault injection for the serving fleet.
//!
//! A [`ChaosPlan`] is a declarative list of session-level faults fired
//! at exact frame slots — the serving counterpart of the netsim scenario
//! zoo. Faults model the failure classes a mobile streaming fleet
//! actually sees:
//!
//! * [`ChaosFault::FeedbackBlackout`] — the receiver's return path goes
//!   silent (NAT rebind, RTCP starvation); the encoder steers blind and
//!   the staleness watchdog must notice.
//! * [`ChaosFault::ChannelSwap`] — the forward channel's loss regime
//!   changes mid-GOP (cell handoff to a worse link), invalidating every
//!   PLR estimate in flight.
//! * [`ChaosFault::DecoderStall`] — the client stops consuming frames
//!   (CPU starvation, app backgrounded); the display holds and the
//!   watchdog escalates on liveness rather than loss.
//! * [`ChaosFault::BurstKill`] — a hard erasure burst aligned to
//!   picture-header boundaries: whole frames vanish, first fragment
//!   included, the worst case for resynchronization.
//!
//! Plans are data (serializable, cloneable) and fire deterministically:
//! the same plan against the same seeds produces the same trajectory at
//! any worker count.

use pbpair_netsim::ChannelSpec;
use serde::{Deserialize, Serialize};

/// One injectable session-level fault.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ChaosFault {
    /// Suppress the receiver's feedback sends for `frames` slots.
    FeedbackBlackout {
        /// Blackout duration in frame slots.
        frames: u64,
    },
    /// Replace the forward channel's loss model with the one `spec`
    /// describes (loss statistics carry over — same link, new weather).
    ChannelSwap {
        /// The new channel.
        spec: ChannelSpec,
    },
    /// Hold the decoder: the display repeats the last picture for
    /// `frames` slots and arriving data is discarded.
    DecoderStall {
        /// Stall duration in frame slots.
        frames: u64,
    },
    /// Erase every packet of `frames` consecutive frames, starting at a
    /// frame boundary (fragment 0 — the picture header — dies too).
    BurstKill {
        /// Kill-window length in frames.
        frames: u64,
    },
}

impl ChaosFault {
    /// Stable lowercase label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            ChaosFault::FeedbackBlackout { .. } => "feedback_blackout",
            ChaosFault::ChannelSwap { .. } => "channel_swap",
            ChaosFault::DecoderStall { .. } => "decoder_stall",
            ChaosFault::BurstKill { .. } => "burst_kill",
        }
    }

    fn validate(&self) -> Result<(), String> {
        match self {
            ChaosFault::FeedbackBlackout { frames }
            | ChaosFault::DecoderStall { frames }
            | ChaosFault::BurstKill { frames } => {
                if *frames == 0 {
                    return Err(format!(
                        "{} duration must be at least 1 frame",
                        self.label()
                    ));
                }
                Ok(())
            }
            ChaosFault::ChannelSwap { spec } => spec.validate(),
        }
    }
}

/// A fault scheduled against one session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosEvent {
    /// Target session id.
    pub session: u32,
    /// Frame slot at which the fault fires.
    pub at_frame: u64,
    /// The fault.
    pub fault: ChaosFault,
}

/// A deterministic fault schedule for the whole fleet.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ChaosPlan {
    events: Vec<ChaosEvent>,
}

impl ChaosPlan {
    /// A plan that injects nothing.
    pub fn none() -> Self {
        ChaosPlan::default()
    }

    /// Builds a plan from events (any order; they are sorted by frame).
    ///
    /// # Errors
    ///
    /// Returns an error if any fault is invalid.
    pub fn new(mut events: Vec<ChaosEvent>) -> Result<Self, String> {
        for e in &events {
            e.fault.validate()?;
        }
        events.sort_by_key(|e| (e.session, e.at_frame));
        Ok(ChaosPlan { events })
    }

    /// Whether the plan injects anything at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// All events, sorted by (session, frame).
    pub fn events(&self) -> &[ChaosEvent] {
        &self.events
    }

    /// The events targeting one session, in firing order.
    pub fn for_session(&self, id: u32) -> Vec<ChaosEvent> {
        self.events
            .iter()
            .filter(|e| e.session == id)
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_sorts_and_filters_per_session() {
        let plan = ChaosPlan::new(vec![
            ChaosEvent {
                session: 1,
                at_frame: 9,
                fault: ChaosFault::BurstKill { frames: 2 },
            },
            ChaosEvent {
                session: 0,
                at_frame: 4,
                fault: ChaosFault::FeedbackBlackout { frames: 10 },
            },
            ChaosEvent {
                session: 1,
                at_frame: 2,
                fault: ChaosFault::DecoderStall { frames: 3 },
            },
        ])
        .unwrap();
        assert_eq!(plan.len(), 3);
        assert!(!plan.is_empty());
        let s1 = plan.for_session(1);
        assert_eq!(s1.len(), 2);
        assert_eq!(s1[0].at_frame, 2, "events fire in frame order");
        assert_eq!(s1[1].at_frame, 9);
        assert!(plan.for_session(7).is_empty());
    }

    #[test]
    fn invalid_faults_rejected() {
        assert!(ChaosPlan::new(vec![ChaosEvent {
            session: 0,
            at_frame: 0,
            fault: ChaosFault::BurstKill { frames: 0 },
        }])
        .is_err());
        assert!(ChaosPlan::new(vec![ChaosEvent {
            session: 0,
            at_frame: 0,
            fault: ChaosFault::ChannelSwap {
                spec: ChannelSpec::Uniform { plr: 2.0 },
            },
        }])
        .is_err());
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(
            ChaosFault::FeedbackBlackout { frames: 1 }.label(),
            "feedback_blackout"
        );
        assert_eq!(
            ChaosFault::ChannelSwap {
                spec: ChannelSpec::Uniform { plr: 0.5 }
            }
            .label(),
            "channel_swap"
        );
        assert_eq!(
            ChaosFault::DecoderStall { frames: 1 }.label(),
            "decoder_stall"
        );
        assert_eq!(ChaosFault::BurstKill { frames: 1 }.label(), "burst_kill");
    }
}
