//! The fleet's live observability plane: frame-indexed time-series,
//! SLO burn-rate alerting, and the optional scrape endpoint, all wired
//! into the session manager's round barrier.
//!
//! The plane is strictly layered so the determinism contract survives
//! each hop:
//!
//! 1. **Ingest** — after every round barrier the manager folds each
//!    live session's outcome into integer `slo.*` counters, in
//!    session-id order. Pure virtual-unit arithmetic.
//! 2. **Series** — every `tick_every` rounds the registry is
//!    snapshotted into a [`TimeSeries`] delta frame keyed by round
//!    index. The deterministic half is byte-identical across worker
//!    counts; wall-clock material stays in the timing scope.
//! 3. **Alerting** — the [`SloEngine`] evaluates declarative burn-rate
//!    specs over the deterministic counters only, so the alert stream
//!    `(round, slo, state)` is itself deterministic.
//! 4. **Reaction** — a firing alert escalates every live session's
//!    [`StalenessWatchdog`](crate::health::StalenessWatchdog) one step
//!    (reason `slo:<name>`) and triggers a flight-recorder dump with
//!    reason `"slo"`.
//! 5. **Exposure** — when a scrape port is configured, `/metrics`,
//!    `/health` and `/timeseries` serve the live registry. Exposure is
//!    read-only: scraping cannot perturb the run.
//!
//! Everything here is off by default; a default [`ServeConfig`]
//! produces bit-identical reports with or without this module compiled
//! in the loop.
//!
//! [`ServeConfig`]: crate::manager::ServeConfig

use crate::session::FrameOutcome;
use pbpair_telemetry::expose::ExposeServer;
use pbpair_telemetry::slo::{AlertEvent, AlertState, BurnWindow, SloEngine, SloSpec};
use pbpair_telemetry::timeseries::{SeriesConfig, TimeSeries};
use pbpair_telemetry::{Counter, Telemetry};

/// Observability knobs on [`ServeConfig`](crate::manager::ServeConfig).
/// The default is fully off — no counters, no ticks, no socket — so
/// existing runs and goldens are unaffected.
#[derive(Clone, Debug, PartialEq)]
pub struct ObservabilityConfig {
    /// Snapshot the registry into a time-series delta frame every this
    /// many rounds. `0` disables the time-series and SLO engine.
    pub tick_every: u64,
    /// Bounded ring of retained delta frames; older frames are dropped
    /// (and counted) once full.
    pub ring_capacity: usize,
    /// Serve Prometheus text exposition on `127.0.0.1:<port>` for the
    /// run's duration (`0` picks an ephemeral port). Requires an
    /// enabled telemetry context.
    pub expose_port: Option<u16>,
    /// Burn-rate SLOs evaluated on every tick. Requires `tick_every`.
    pub slos: Vec<SloSpec>,
}

impl Default for ObservabilityConfig {
    fn default() -> ObservabilityConfig {
        ObservabilityConfig {
            tick_every: 0,
            ring_capacity: 256,
            expose_port: None,
            slos: Vec::new(),
        }
    }
}

impl ObservabilityConfig {
    /// Whether any part of the plane is switched on.
    pub fn enabled(&self) -> bool {
        self.tick_every > 0 || self.expose_port.is_some()
    }

    /// Validates the knobs; `Err` carries a human-readable reason.
    pub fn validate(&self) -> Result<(), String> {
        if !self.slos.is_empty() && self.tick_every == 0 {
            return Err("observability: slos require tick_every > 0".into());
        }
        if self.tick_every > 0 && self.ring_capacity == 0 {
            return Err("observability: ring_capacity must be nonzero".into());
        }
        for slo in &self.slos {
            slo.validate().map_err(|e| format!("observability: {e}"))?;
        }
        Ok(())
    }
}

/// The standard fleet SLO set, expressed over the `slo.*` counters the
/// manager maintains (all integer virtual units, so the alert stream is
/// deterministic):
///
/// * `residual_loss` — whole frames lost after repair per frame slot.
///   Objective 12% (the resilience bar the scenario matrix holds);
///   pages at 2× fast burn, keeps a 1× slow window.
/// * `heal_backlog` — outstanding loss-streak frames per slot; a proxy
///   for frames-to-heal. Objective 0.5 streak-frames/slot.
/// * `energy_per_psnr` — encode+FEC microjoules per delivered
///   milli-dB of PSNR. Objective 0.5 µJ/mdB: catches energy burn that
///   buys no quality.
/// * `feedback_staleness` — dark frames (no NACK feedback applied) per
///   slot. Objective 12 dark-frames/slot tolerates the feedback delay;
///   a blackout blows through it.
pub fn standard_slos() -> Vec<SloSpec> {
    vec![
        SloSpec {
            name: "residual_loss".into(),
            numerator: "slo.frames_lost".into(),
            denominator: "slo.frame_slots".into(),
            objective_ppm: 120_000,
            fast: BurnWindow {
                ticks: 4,
                factor_milli: 2000,
            },
            slow: BurnWindow {
                ticks: 12,
                factor_milli: 1000,
            },
        },
        SloSpec {
            name: "heal_backlog".into(),
            numerator: "slo.heal_frames".into(),
            denominator: "slo.frame_slots".into(),
            objective_ppm: 500_000,
            fast: BurnWindow {
                ticks: 6,
                factor_milli: 2000,
            },
            slow: BurnWindow {
                ticks: 18,
                factor_milli: 1000,
            },
        },
        SloSpec {
            name: "energy_per_psnr".into(),
            numerator: "slo.energy_uj".into(),
            denominator: "slo.psnr_mdb".into(),
            objective_ppm: 500_000,
            fast: BurnWindow {
                ticks: 6,
                factor_milli: 2000,
            },
            slow: BurnWindow {
                ticks: 18,
                factor_milli: 1000,
            },
        },
        SloSpec {
            name: "feedback_staleness".into(),
            numerator: "slo.dark_frames".into(),
            denominator: "slo.frame_slots".into(),
            objective_ppm: 12_000_000,
            fast: BurnWindow {
                ticks: 4,
                factor_milli: 2000,
            },
            slow: BurnWindow {
                ticks: 12,
                factor_milli: 1000,
            },
        },
    ]
}

/// What an observed run hands back to the caller: the retained
/// time-series ring and, if a scrape port was configured, the live
/// server (kept alive as long as the caller holds it).
pub struct Observability {
    /// The delta-frame ring accumulated over the run.
    pub series: TimeSeries,
    /// Every alert transition, in firing order.
    pub alerts: Vec<AlertEvent>,
    /// The scrape endpoint, still serving the final registry state.
    pub expose: Option<ExposeServer>,
}

/// Per-round SLO input counters. Incremented only at the round barrier
/// in session-id order, so they are deterministic like every other
/// `slo.*`-free counter in the registry.
struct SloCounters {
    frame_slots: Counter,
    frames_lost: Counter,
    frames_damaged: Counter,
    heal_frames: Counter,
    dark_frames: Counter,
    energy_uj: Counter,
    psnr_mdb: Counter,
}

impl SloCounters {
    fn register(tel: &Telemetry) -> SloCounters {
        SloCounters {
            frame_slots: tel.counter("slo.frame_slots"),
            frames_lost: tel.counter("slo.frames_lost"),
            frames_damaged: tel.counter("slo.frames_damaged"),
            heal_frames: tel.counter("slo.heal_frames"),
            dark_frames: tel.counter("slo.dark_frames"),
            energy_uj: tel.counter("slo.energy_uj"),
            psnr_mdb: tel.counter("slo.psnr_mdb"),
        }
    }
}

/// Run-time observability state the manager threads through its round
/// loop, mirroring [`TraceState`](crate::trace::TraceState).
pub(crate) struct ObserveState {
    series: TimeSeries,
    engine: SloEngine,
    counters: Option<SloCounters>,
    expose: Option<ExposeServer>,
    alerts: Vec<AlertEvent>,
}

impl ObserveState {
    /// Builds the state, or `None` when the config is fully off.
    /// Observability reads the registry, so it refuses a disabled
    /// telemetry context rather than silently exporting zeros.
    pub fn build(
        cfg: &ObservabilityConfig,
        tel: &Telemetry,
    ) -> Result<Option<ObserveState>, String> {
        cfg.validate()?;
        if !cfg.enabled() {
            return Ok(None);
        }
        if !tel.is_enabled() {
            return Err("observability requires an enabled telemetry context".into());
        }
        let series = if cfg.tick_every > 0 {
            TimeSeries::new(SeriesConfig {
                every: cfg.tick_every,
                capacity: cfg.ring_capacity,
            })
            .map_err(|e| format!("observability: {e}"))?
        } else {
            TimeSeries::disabled()
        };
        let engine = SloEngine::new(cfg.slos.clone()).map_err(|e| format!("observability: {e}"))?;
        let counters = (cfg.tick_every > 0).then(|| SloCounters::register(tel));
        let expose = match cfg.expose_port {
            Some(port) => Some(
                ExposeServer::start(port, tel.clone())
                    .map_err(|e| format!("observability: expose bind failed: {e}"))?,
            ),
            None => None,
        };
        Ok(Some(ObserveState {
            series,
            engine,
            counters,
            expose,
            alerts: Vec::new(),
        }))
    }

    /// Folds one live session's round outcome into the SLO counters.
    /// `outcome` is `None` when admission rate-dropped the slot (the
    /// slot still counts; it just carried no transmission).
    pub fn note_session(
        &self,
        outcome: Option<&FrameOutcome>,
        lost_streak: u64,
        dark: u64,
        psnr_mdb: u64,
    ) {
        let Some(c) = &self.counters else { return };
        c.frame_slots.inc(1);
        if let Some(o) = outcome {
            c.frames_lost.inc(o.lost as u64);
            c.frames_damaged.inc(o.damaged as u64);
            c.energy_uj
                .inc(((o.encode_joules + o.fec_joules) * 1e6).round() as u64);
        }
        c.heal_frames.inc(lost_streak);
        c.dark_frames.inc(dark);
        c.psnr_mdb.inc(psnr_mdb);
    }

    /// Whether this round closes a sampling interval.
    pub fn tick_due(&self, round: u64) -> bool {
        self.series.tick_due(round)
    }

    /// Snapshots the registry into a delta frame and evaluates the
    /// SLOs. Returns the alert transitions this tick produced.
    pub fn tick(&mut self, round: u64, tel: &Telemetry) -> Vec<AlertEvent> {
        let report = tel.report();
        let Some(frame) = self.series.tick(round, &report) else {
            return Vec::new();
        };
        let events = self.engine.observe(frame);
        self.alerts.extend(events.iter().cloned());
        events
    }

    /// Whether a scrape endpoint is live (guards per-round publishing).
    pub fn has_expose(&self) -> bool {
        self.expose.is_some()
    }

    /// Pushes fresh `/health` and `/timeseries` bodies to the endpoint.
    pub fn publish(&self, health_json: String) {
        if let Some(srv) = &self.expose {
            srv.publish_health(health_json);
            srv.publish_timeseries(self.series.to_json());
        }
    }

    /// Alert transitions so far (manager copies these into the report).
    pub fn alerts(&self) -> &[AlertEvent] {
        &self.alerts
    }

    /// Names of SLOs currently firing, for the health body.
    pub fn firing(&self) -> Vec<&str> {
        self.engine.firing()
    }

    /// Finishes the run, handing series/alerts/endpoint to the caller.
    pub fn finish(self) -> Observability {
        Observability {
            series: self.series,
            alerts: self.alerts,
            expose: self.expose,
        }
    }
}

/// Splits a tick's events into the firing subset (these drive health
/// escalation and trace dumps; clears are bookkeeping only).
pub(crate) fn firing_events(events: &[AlertEvent]) -> Vec<&AlertEvent> {
    events
        .iter()
        .filter(|e| e.state == AlertState::Firing)
        .collect()
}

/// Renders the `/health` body: fleet tally plus per-session state and
/// the currently-firing SLO set. Integer/string JSON only.
pub(crate) fn fleet_health_json(
    rounds_done: u64,
    sessions: &[(u32, &'static str, usize, bool)],
    firing: &[&str],
) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = write!(out, "{{\"rounds\":{rounds_done},\"sessions\":[");
    for (i, (id, health, transitions, shed)) in sessions.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"id\":{id},\"health\":\"{health}\",\"transitions\":{transitions},\"shed\":{shed}}}"
        );
    }
    out.push_str("],\"alerts_firing\":[");
    for (i, name) in firing.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{name}\"");
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_fully_off_and_valid() {
        let cfg = ObservabilityConfig::default();
        assert!(!cfg.enabled());
        assert!(cfg.validate().is_ok());
        let tel = Telemetry::disabled();
        assert!(ObserveState::build(&cfg, &tel).unwrap().is_none());
    }

    #[test]
    fn slos_without_ticks_are_rejected() {
        let cfg = ObservabilityConfig {
            slos: standard_slos(),
            ..ObservabilityConfig::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn enabled_observability_requires_enabled_telemetry() {
        let cfg = ObservabilityConfig {
            tick_every: 1,
            ..ObservabilityConfig::default()
        };
        let tel = Telemetry::disabled();
        assert!(ObserveState::build(&cfg, &tel).is_err());
    }

    #[test]
    fn standard_slos_validate_and_are_unique() {
        let slos = standard_slos();
        assert_eq!(slos.len(), 4);
        SloEngine::new(slos).expect("standard set must construct");
    }

    #[test]
    fn health_json_shape() {
        let body = fleet_health_json(
            3,
            &[(0, "healthy", 0, false), (1, "degraded", 2, true)],
            &["residual_loss"],
        );
        assert_eq!(
            body,
            "{\"rounds\":3,\"sessions\":[\
             {\"id\":0,\"health\":\"healthy\",\"transitions\":0,\"shed\":false},\
             {\"id\":1,\"health\":\"degraded\",\"transitions\":2,\"shed\":true}],\
             \"alerts_firing\":[\"residual_loss\"]}"
        );
    }
}
