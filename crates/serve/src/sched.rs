//! Work-stealing scheduler — re-exported from [`pbpair_sched`].
//!
//! The pool started life here as a serve-internal detail; the
//! slice-parallel encoder in `pbpair-codec` now shares it, so the
//! implementation lives in the `pbpair-sched` crate and this module
//! re-exports it to keep the historical `pbpair_serve::sched` paths
//! (and the `serve.queue_depth` / `serve.steals` telemetry names)
//! working unchanged.

pub use pbpair_sched::*;
