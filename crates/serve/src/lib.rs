//! # pbpair-serve — multi-session PBPAIR streaming service
//!
//! PBPAIR (ICDCS 2005) treats the intra threshold `Intra_Th` as a joint
//! energy/resilience lever for *one* encoder on *one* lossy channel. This
//! crate scales that loop out to a serving fleet: N concurrent sessions,
//! each a complete source → PBPAIR encoder → RTP/FEC → lossy channel →
//! resilient decoder → PLR-feedback pipeline built from the existing
//! workspace crates, executed on a work-stealing thread pool with bounded
//! queues, and governed by an admission controller that uses the *same
//! lever* — raising `Intra_Th`, then dropping frames, then shedding
//! sessions — when aggregate encode cost exceeds the fleet's budget.
//!
//! The design splits cleanly along a determinism boundary:
//!
//! * [`session`] — a self-contained, seeded per-client loop; no shared
//!   mutable state, so a session computes the same trajectory wherever
//!   the scheduler runs it.
//! * [`sched`] — the work-stealing pool: per-worker deques, a global
//!   injector, backpressure via a bounded in-flight count.
//! * [`admission`] — the lag-integrating controller driven by *modeled*
//!   encode Joules (deterministic), never wall clock.
//! * [`manager`] — rounds + barrier: ties the three together and splits
//!   the output into a deterministic digest and wall-clock
//!   [`FleetTiming`].
//!
//! ```no_run
//! use pbpair_serve::{run, ServeConfig};
//!
//! let report = run(&ServeConfig {
//!     sessions: 8,
//!     frames: 32,
//!     workers: 4,
//!     ..ServeConfig::default()
//! })
//! .expect("valid config");
//! println!(
//!     "{:.1} fps, mean PSNR {:.1} dB, {} shed",
//!     report.timing.throughput_fps, report.mean_psnr_db, report.shed_count
//! );
//! ```

pub mod admission;
pub mod chaos;
pub mod health;
pub mod manager;
pub mod observe;
pub mod redundancy;
pub mod report;
pub mod sched;
pub mod session;
pub mod trace;

pub use admission::{
    AdmissionConfig, AdmissionController, RoundDecision, ServiceLevel, SessionRoundCost,
};
pub use chaos::{ChaosEvent, ChaosFault, ChaosPlan};
pub use health::{HealthLedger, HealthState, HealthTransition, StalenessWatchdog, WatchdogConfig};
pub use manager::{
    run, run_instrumented, run_observed, run_traced, run_traced_observed, DeviceMix, ServeConfig,
};
pub use observe::{standard_slos, Observability, ObservabilityConfig};
pub use redundancy::{RedundancyConfig, RedundancyController, RedundancyDecision};
pub use report::{FleetHealth, FleetTiming, ServeReport, SessionReport};
pub use sched::WorkStealingPool;
pub use session::{DeviceKind, FrameOutcome, Session, SessionConfig, SessionScheme, SessionStats};
pub use trace::{FleetTrace, SessionTrace, TraceDump, TRACE_RING_CAPACITY};
