//! Fleet admission control: shed or degrade before drowning.
//!
//! The manager runs the fleet in rounds (one frame per live session per
//! round) and tells the controller, after each round, how much *work*
//! the round cost — measured in modeled encode Joules, which are a
//! deterministic function of the sessions' streams, not of wall clock
//! or worker count. The controller compares that against a configured
//! service capacity and integrates the excess into a **lag** value:
//! how far the fleet has fallen behind a real-time schedule, in units
//! of round-budgets.
//!
//! Responses escalate, with hysteresis:
//!
//! 1. **Degrade** (`lag > degrade_lag`): every session gets a high
//!    `Intra_Th` floor. Intra decisions skip motion estimation — the
//!    dominant cost — so degraded frames are several times cheaper; the
//!    stream also becomes more loss-resilient, which matters because a
//!    congested serving fleet usually coincides with a congested
//!    network. On deeper lag (`rate_drop_lag`), degraded sessions also
//!    drop every `rate_drop_stride`-th frame.
//! 2. **Shed** (`lag > shed_lag`): the most expensive session (by last
//!    round's energy; ties to the lowest id) is terminated outright.
//!    At most one session is shed per round, so a transient spike
//!    cannot wipe the fleet.
//! 3. **Recover** (`lag < recover_lag`): the floor is lifted and
//!    sessions resume full rate. Shed sessions stay shed — admission
//!    is cheaper than re-buffering a client that was already dropped.
//!
//! Everything here is pure integer/float state machinery on
//! deterministic inputs, so fleet behaviour replays bit-identically at
//! any worker count — the property the replay test pins down.

use serde::{Deserialize, Serialize};

/// Capacity model and escalation thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdmissionConfig {
    /// Modeled Joules of encode work the fleet may spend per round while
    /// staying "real time". Round cost beyond this accrues as lag.
    pub capacity_j_per_round: f64,
    /// Lag (in rounds of budget, i.e. `lag_j / capacity_j_per_round`)
    /// beyond which sessions are degraded.
    pub degrade_lag: f64,
    /// Lag beyond which degraded sessions also drop frames.
    pub rate_drop_lag: f64,
    /// Lag beyond which one session per round is shed.
    pub shed_lag: f64,
    /// Lag below which degradation is lifted.
    pub recover_lag: f64,
    /// The `Intra_Th` floor imposed while degraded.
    pub degrade_floor_th: f64,
    /// While rate-dropping, every `rate_drop_stride`-th frame of each
    /// degraded session is skipped (must be ≥ 2).
    pub rate_drop_stride: u64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            capacity_j_per_round: 1.0,
            degrade_lag: 2.0,
            rate_drop_lag: 6.0,
            shed_lag: 12.0,
            recover_lag: 0.5,
            degrade_floor_th: 0.995,
            rate_drop_stride: 3,
        }
    }
}

impl AdmissionConfig {
    /// Validates threshold ordering and ranges.
    ///
    /// # Errors
    ///
    /// Returns a message naming the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.capacity_j_per_round <= 0.0 {
            return Err("capacity_j_per_round must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.degrade_floor_th) {
            return Err(format!(
                "degrade_floor_th {} outside [0,1]",
                self.degrade_floor_th
            ));
        }
        if !(self.recover_lag <= self.degrade_lag
            && self.degrade_lag <= self.rate_drop_lag
            && self.rate_drop_lag <= self.shed_lag)
        {
            return Err(format!(
                "lag thresholds must be ordered recover ≤ degrade ≤ rate_drop ≤ shed: \
                 {} / {} / {} / {}",
                self.recover_lag, self.degrade_lag, self.rate_drop_lag, self.shed_lag
            ));
        }
        if self.rate_drop_stride < 2 {
            return Err("rate_drop_stride must be at least 2".into());
        }
        Ok(())
    }
}

/// The fleet-level service state the controller is in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ServiceLevel {
    /// Full quality, full rate.
    Normal,
    /// `Intra_Th` floor in force.
    Degraded,
    /// Floor in force and degraded sessions dropping frames.
    RateDropping,
}

/// What the manager must do after a round.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoundDecision {
    /// Service level for the next round.
    pub level: ServiceLevel,
    /// `Intra_Th` floor to apply to every live session (0 when normal).
    pub floor_th: f64,
    /// Whether the stride-`rate_drop_stride` frame drop applies.
    pub drop_frames: bool,
    /// Session to shed this round, if any.
    pub shed: Option<u32>,
    /// Lag after this round, in round-budget units.
    pub lag: f64,
}

/// The integrating admission controller. See the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdmissionController {
    cfg: AdmissionConfig,
    lag_j: f64,
    level: ServiceLevel,
    shed_count: u32,
    degraded_rounds: u64,
}

impl AdmissionController {
    /// Creates a controller.
    ///
    /// # Errors
    ///
    /// Propagates [`AdmissionConfig::validate`].
    pub fn new(cfg: AdmissionConfig) -> Result<Self, String> {
        cfg.validate()?;
        Ok(AdmissionController {
            cfg,
            lag_j: 0.0,
            level: ServiceLevel::Normal,
            shed_count: 0,
            degraded_rounds: 0,
        })
    }

    /// The configuration in force.
    pub fn config(&self) -> &AdmissionConfig {
        &self.cfg
    }

    /// Sessions shed so far.
    pub fn shed_count(&self) -> u32 {
        self.shed_count
    }

    /// Rounds spent at a level below [`ServiceLevel::Normal`].
    pub fn degraded_rounds(&self) -> u64 {
        self.degraded_rounds
    }

    /// Current lag in round-budget units.
    pub fn lag(&self) -> f64 {
        self.lag_j / self.cfg.capacity_j_per_round
    }

    /// Feeds one finished round: `(session id, encode Joules)` for every
    /// session that stepped. Returns the decision for the next round.
    pub fn observe_round(&mut self, round_cost: &[(u32, f64)]) -> RoundDecision {
        let spent: f64 = round_cost.iter().map(|&(_, j)| j).sum();
        self.lag_j = (self.lag_j + spent - self.cfg.capacity_j_per_round).max(0.0);
        let lag = self.lag();

        self.level = if lag > self.cfg.rate_drop_lag {
            ServiceLevel::RateDropping
        } else if lag > self.cfg.degrade_lag {
            ServiceLevel::Degraded
        } else if lag < self.cfg.recover_lag {
            ServiceLevel::Normal
        } else {
            // Hysteresis band: hold the current level (but entering the
            // band from Normal is not an escalation).
            self.level
        };
        if self.level != ServiceLevel::Normal {
            self.degraded_rounds += 1;
        }

        let shed = if lag > self.cfg.shed_lag {
            // Shed the costliest session; ties break to the lowest id so
            // the choice is independent of observation order.
            round_cost
                .iter()
                .copied()
                .max_by(|a, b| {
                    a.1.partial_cmp(&b.1)
                        .expect("energy is never NaN")
                        .then(b.0.cmp(&a.0))
                })
                .map(|(id, _)| id)
        } else {
            None
        };
        if shed.is_some() {
            self.shed_count += 1;
        }

        RoundDecision {
            level: self.level,
            floor_th: if self.level == ServiceLevel::Normal {
                0.0
            } else {
                self.cfg.degrade_floor_th
            },
            drop_frames: self.level == ServiceLevel::RateDropping,
            shed,
            lag,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> AdmissionConfig {
        AdmissionConfig {
            capacity_j_per_round: 10.0,
            degrade_lag: 2.0,
            rate_drop_lag: 4.0,
            shed_lag: 8.0,
            recover_lag: 0.5,
            degrade_floor_th: 0.99,
            rate_drop_stride: 3,
        }
    }

    #[test]
    fn under_capacity_stays_normal() {
        let mut c = AdmissionController::new(cfg()).unwrap();
        for _ in 0..50 {
            let d = c.observe_round(&[(0, 3.0), (1, 4.0)]);
            assert_eq!(d.level, ServiceLevel::Normal);
            assert_eq!(d.floor_th, 0.0);
            assert_eq!(d.shed, None);
            assert_eq!(d.lag, 0.0);
        }
        assert_eq!(c.degraded_rounds(), 0);
    }

    #[test]
    fn sustained_overload_escalates_then_sheds_costliest() {
        let mut c = AdmissionController::new(cfg()).unwrap();
        let mut saw_degrade = false;
        let mut saw_rate_drop = false;
        let mut shed = None;
        for _ in 0..40 {
            // 15 J per round against a 10 J budget: lag grows 0.5/round.
            let d = c.observe_round(&[(0, 4.0), (1, 6.0), (2, 5.0)]);
            saw_degrade |= d.level == ServiceLevel::Degraded;
            saw_rate_drop |= d.drop_frames;
            if let Some(id) = d.shed {
                shed = Some(id);
                break;
            }
        }
        assert!(saw_degrade, "must pass through Degraded");
        assert!(saw_rate_drop, "must escalate to rate dropping");
        assert_eq!(shed, Some(1), "costliest session is shed first");
        assert_eq!(c.shed_count(), 1);
    }

    #[test]
    fn recovery_needs_lag_to_drain_below_recover() {
        let mut c = AdmissionController::new(cfg()).unwrap();
        // Build lag to ~3 budgets → Degraded.
        for _ in 0..6 {
            c.observe_round(&[(0, 15.0)]);
        }
        assert_eq!(c.observe_round(&[(0, 15.0)]).level, ServiceLevel::Degraded);
        // Run exactly at capacity: lag holds, level must not bounce back
        // to normal inside the hysteresis band.
        let d = c.observe_round(&[(0, 10.0)]);
        assert_eq!(d.level, ServiceLevel::Degraded);
        // Idle rounds drain the lag; eventually normal.
        let mut level = d.level;
        for _ in 0..10 {
            level = c.observe_round(&[]).level;
        }
        assert_eq!(level, ServiceLevel::Normal);
    }

    #[test]
    fn tie_breaks_to_lowest_id() {
        let mut c = AdmissionController::new(cfg()).unwrap();
        for _ in 0..100 {
            c.observe_round(&[(7, 30.0), (3, 30.0)]);
        }
        let d = c.observe_round(&[(7, 30.0), (3, 30.0)]);
        assert_eq!(d.shed, Some(3));
    }

    #[test]
    fn bad_configs_rejected() {
        let mut bad = cfg();
        bad.capacity_j_per_round = 0.0;
        assert!(AdmissionController::new(bad).is_err());
        let mut bad = cfg();
        bad.shed_lag = 1.0; // below rate_drop_lag
        assert!(AdmissionController::new(bad).is_err());
        let mut bad = cfg();
        bad.rate_drop_stride = 1;
        assert!(AdmissionController::new(bad).is_err());
        let mut bad = cfg();
        bad.degrade_floor_th = 1.5;
        assert!(AdmissionController::new(bad).is_err());
    }
}
