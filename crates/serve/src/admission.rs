//! Fleet admission control: shed or degrade before drowning.
//!
//! The manager runs the fleet in rounds (one frame per live session per
//! round) and tells the controller, after each round, how much *work*
//! the round cost — measured in modeled encode Joules, which are a
//! deterministic function of the sessions' streams, not of wall clock
//! or worker count. The controller compares that against a configured
//! service capacity and integrates the excess into a **lag** value:
//! how far the fleet has fallen behind a real-time schedule, in units
//! of round-budgets.
//!
//! Responses escalate, with hysteresis:
//!
//! 1. **Degrade** (`lag > degrade_lag`): every session gets a high
//!    `Intra_Th` floor. Intra decisions skip motion estimation — the
//!    dominant cost — so degraded frames are several times cheaper; the
//!    stream also becomes more loss-resilient, which matters because a
//!    congested serving fleet usually coincides with a congested
//!    network. On deeper lag (`rate_drop_lag`), degraded sessions also
//!    drop every `rate_drop_stride`-th frame.
//! 2. **Shed** (`lag > shed_lag`): the most expensive session (by last
//!    round's energy; ties to the lowest id) is terminated outright.
//!    At most one session is shed per round, so a transient spike
//!    cannot wipe the fleet.
//! 3. **Recover** (`lag < recover_lag`): the floor is lifted and
//!    sessions resume full rate. Shed sessions stay shed — admission
//!    is cheaper than re-buffering a client that was already dropped.
//!
//! Everything here is pure integer/float state machinery on
//! deterministic inputs, so fleet behaviour replays bit-identically at
//! any worker count — the property the replay test pins down.

use serde::{Deserialize, Serialize};

/// Capacity model and escalation thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdmissionConfig {
    /// Modeled Joules of encode work the fleet may spend per round while
    /// staying "real time". Round cost beyond this accrues as lag.
    pub capacity_j_per_round: f64,
    /// Lag (in rounds of budget, i.e. `lag_j / capacity_j_per_round`)
    /// beyond which sessions are degraded.
    pub degrade_lag: f64,
    /// Lag beyond which degraded sessions also drop frames.
    pub rate_drop_lag: f64,
    /// Lag beyond which one session per round is shed.
    pub shed_lag: f64,
    /// Lag below which degradation is lifted.
    pub recover_lag: f64,
    /// The `Intra_Th` floor imposed while degraded.
    pub degrade_floor_th: f64,
    /// While rate-dropping, every `rate_drop_stride`-th frame of each
    /// degraded session is skipped (must be ≥ 2).
    pub rate_drop_stride: u64,
    /// Shed ranking metric. `false` (the default, and the behaviour of
    /// every committed scenario digest) sheds the session with the
    /// highest raw round energy. `true` ranks by **Joules per quality
    /// point** — round energy divided by the session's delivered
    /// quality, where the manager supplies quality as the last
    /// displayed PSNR discounted by the encoder's `C^k` expected-damage
    /// forecast — so the controller sheds the session spending the most
    /// energy per unit of quality it actually delivers to a viewer.
    #[serde(default)]
    pub rank_energy_per_quality: bool,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            capacity_j_per_round: 1.0,
            degrade_lag: 2.0,
            rate_drop_lag: 6.0,
            shed_lag: 12.0,
            recover_lag: 0.5,
            degrade_floor_th: 0.995,
            rate_drop_stride: 3,
            rank_energy_per_quality: false,
        }
    }
}

impl AdmissionConfig {
    /// Validates threshold ordering and ranges.
    ///
    /// # Errors
    ///
    /// Returns a message naming the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.capacity_j_per_round <= 0.0 {
            return Err("capacity_j_per_round must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.degrade_floor_th) {
            return Err(format!(
                "degrade_floor_th {} outside [0,1]",
                self.degrade_floor_th
            ));
        }
        if !(self.recover_lag <= self.degrade_lag
            && self.degrade_lag <= self.rate_drop_lag
            && self.rate_drop_lag <= self.shed_lag)
        {
            return Err(format!(
                "lag thresholds must be ordered recover ≤ degrade ≤ rate_drop ≤ shed: \
                 {} / {} / {} / {}",
                self.recover_lag, self.degrade_lag, self.rate_drop_lag, self.shed_lag
            ));
        }
        if self.rate_drop_stride < 2 {
            return Err("rate_drop_stride must be at least 2".into());
        }
        Ok(())
    }
}

/// One live session's contribution to a finished round, as the manager
/// reports it to the controller.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SessionRoundCost {
    /// Session id.
    pub id: u32,
    /// Modeled compute Joules the session spent this round (encode plus
    /// FEC processing).
    pub joules: f64,
    /// Delivered quality in points — the manager supplies the last
    /// displayed PSNR in dB, discounted by the encoder's `C^k`
    /// expected-damage forecast. Only consulted when
    /// [`AdmissionConfig::rank_energy_per_quality`] is set.
    pub quality: f64,
}

/// Quality floor used when ranking by Joules per quality point: a
/// session that has delivered no measurable quality yet (or reports
/// zero) ranks as maximally expensive rather than dividing by zero.
const MIN_QUALITY_POINTS: f64 = 1e-3;

/// The fleet-level service state the controller is in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ServiceLevel {
    /// Full quality, full rate.
    Normal,
    /// `Intra_Th` floor in force.
    Degraded,
    /// Floor in force and degraded sessions dropping frames.
    RateDropping,
}

/// What the manager must do after a round.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoundDecision {
    /// Service level for the next round.
    pub level: ServiceLevel,
    /// `Intra_Th` floor to apply to every live session (0 when normal).
    pub floor_th: f64,
    /// Whether the stride-`rate_drop_stride` frame drop applies.
    pub drop_frames: bool,
    /// Session to shed this round, if any.
    pub shed: Option<u32>,
    /// Lag after this round, in round-budget units.
    pub lag: f64,
}

/// The integrating admission controller. See the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdmissionController {
    cfg: AdmissionConfig,
    lag_j: f64,
    level: ServiceLevel,
    shed_count: u32,
    degraded_rounds: u64,
}

impl AdmissionController {
    /// Creates a controller.
    ///
    /// # Errors
    ///
    /// Propagates [`AdmissionConfig::validate`].
    pub fn new(cfg: AdmissionConfig) -> Result<Self, String> {
        cfg.validate()?;
        Ok(AdmissionController {
            cfg,
            lag_j: 0.0,
            level: ServiceLevel::Normal,
            shed_count: 0,
            degraded_rounds: 0,
        })
    }

    /// The configuration in force.
    pub fn config(&self) -> &AdmissionConfig {
        &self.cfg
    }

    /// Sessions shed so far.
    pub fn shed_count(&self) -> u32 {
        self.shed_count
    }

    /// Rounds spent at a level below [`ServiceLevel::Normal`].
    pub fn degraded_rounds(&self) -> u64 {
        self.degraded_rounds
    }

    /// Current lag in round-budget units.
    pub fn lag(&self) -> f64 {
        self.lag_j / self.cfg.capacity_j_per_round
    }

    /// Feeds one finished round: `(session id, encode Joules)` for every
    /// session that stepped. Returns the decision for the next round.
    ///
    /// Legacy entry point: every session's quality is taken as one
    /// point, so shedding ranks by raw Joules regardless of
    /// [`AdmissionConfig::rank_energy_per_quality`].
    pub fn observe_round(&mut self, round_cost: &[(u32, f64)]) -> RoundDecision {
        let costs: Vec<SessionRoundCost> = round_cost
            .iter()
            .map(|&(id, joules)| SessionRoundCost {
                id,
                joules,
                quality: 1.0,
            })
            .collect();
        self.observe_round_ranked(&costs)
    }

    /// Feeds one finished round with per-session delivered quality.
    /// Identical to [`AdmissionController::observe_round`] except that,
    /// with [`AdmissionConfig::rank_energy_per_quality`] set, the shed
    /// ranking key becomes `joules / quality` (Joules per quality
    /// point) instead of raw Joules. Lag accounting is unchanged —
    /// quality never buys capacity, it only chooses the victim.
    pub fn observe_round_ranked(&mut self, round_cost: &[SessionRoundCost]) -> RoundDecision {
        let spent: f64 = round_cost.iter().map(|c| c.joules).sum();
        self.lag_j = (self.lag_j + spent - self.cfg.capacity_j_per_round).max(0.0);
        let lag = self.lag();

        self.level = if lag > self.cfg.rate_drop_lag {
            ServiceLevel::RateDropping
        } else if lag > self.cfg.degrade_lag {
            ServiceLevel::Degraded
        } else if lag < self.cfg.recover_lag {
            ServiceLevel::Normal
        } else {
            // Hysteresis band: hold the current level (but entering the
            // band from Normal is not an escalation).
            self.level
        };
        if self.level != ServiceLevel::Normal {
            self.degraded_rounds += 1;
        }

        let shed = if lag > self.cfg.shed_lag {
            // Shed the costliest session by the configured metric; ties
            // break to the lowest id so the choice is independent of
            // observation order.
            let key = |c: &SessionRoundCost| {
                if self.cfg.rank_energy_per_quality {
                    c.joules / c.quality.max(MIN_QUALITY_POINTS)
                } else {
                    c.joules
                }
            };
            round_cost
                .iter()
                .copied()
                .max_by(|a, b| {
                    key(a)
                        .partial_cmp(&key(b))
                        .expect("energy and quality are never NaN")
                        .then(b.id.cmp(&a.id))
                })
                .map(|c| c.id)
        } else {
            None
        };
        if shed.is_some() {
            self.shed_count += 1;
        }

        RoundDecision {
            level: self.level,
            floor_th: if self.level == ServiceLevel::Normal {
                0.0
            } else {
                self.cfg.degrade_floor_th
            },
            drop_frames: self.level == ServiceLevel::RateDropping,
            shed,
            lag,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> AdmissionConfig {
        AdmissionConfig {
            capacity_j_per_round: 10.0,
            degrade_lag: 2.0,
            rate_drop_lag: 4.0,
            shed_lag: 8.0,
            recover_lag: 0.5,
            degrade_floor_th: 0.99,
            rate_drop_stride: 3,
            rank_energy_per_quality: false,
        }
    }

    #[test]
    fn under_capacity_stays_normal() {
        let mut c = AdmissionController::new(cfg()).unwrap();
        for _ in 0..50 {
            let d = c.observe_round(&[(0, 3.0), (1, 4.0)]);
            assert_eq!(d.level, ServiceLevel::Normal);
            assert_eq!(d.floor_th, 0.0);
            assert_eq!(d.shed, None);
            assert_eq!(d.lag, 0.0);
        }
        assert_eq!(c.degraded_rounds(), 0);
    }

    #[test]
    fn sustained_overload_escalates_then_sheds_costliest() {
        let mut c = AdmissionController::new(cfg()).unwrap();
        let mut saw_degrade = false;
        let mut saw_rate_drop = false;
        let mut shed = None;
        for _ in 0..40 {
            // 15 J per round against a 10 J budget: lag grows 0.5/round.
            let d = c.observe_round(&[(0, 4.0), (1, 6.0), (2, 5.0)]);
            saw_degrade |= d.level == ServiceLevel::Degraded;
            saw_rate_drop |= d.drop_frames;
            if let Some(id) = d.shed {
                shed = Some(id);
                break;
            }
        }
        assert!(saw_degrade, "must pass through Degraded");
        assert!(saw_rate_drop, "must escalate to rate dropping");
        assert_eq!(shed, Some(1), "costliest session is shed first");
        assert_eq!(c.shed_count(), 1);
    }

    #[test]
    fn recovery_needs_lag_to_drain_below_recover() {
        let mut c = AdmissionController::new(cfg()).unwrap();
        // Build lag to ~3 budgets → Degraded.
        for _ in 0..6 {
            c.observe_round(&[(0, 15.0)]);
        }
        assert_eq!(c.observe_round(&[(0, 15.0)]).level, ServiceLevel::Degraded);
        // Run exactly at capacity: lag holds, level must not bounce back
        // to normal inside the hysteresis band.
        let d = c.observe_round(&[(0, 10.0)]);
        assert_eq!(d.level, ServiceLevel::Degraded);
        // Idle rounds drain the lag; eventually normal.
        let mut level = d.level;
        for _ in 0..10 {
            level = c.observe_round(&[]).level;
        }
        assert_eq!(level, ServiceLevel::Normal);
    }

    #[test]
    fn tie_breaks_to_lowest_id() {
        let mut c = AdmissionController::new(cfg()).unwrap();
        for _ in 0..100 {
            c.observe_round(&[(7, 30.0), (3, 30.0)]);
        }
        let d = c.observe_round(&[(7, 30.0), (3, 30.0)]);
        assert_eq!(d.shed, Some(3));
    }

    #[test]
    fn quality_ranking_sheds_the_least_efficient_session_not_the_costliest() {
        // Session 0: 30 J for 40 quality points → 0.75 J/point.
        // Session 1: 20 J for 10 quality points → 2.0 J/point.
        // Raw-energy ranking sheds 0; per-quality ranking sheds 1.
        let round = [
            SessionRoundCost {
                id: 0,
                joules: 30.0,
                quality: 40.0,
            },
            SessionRoundCost {
                id: 1,
                joules: 20.0,
                quality: 10.0,
            },
        ];
        let mut raw = AdmissionController::new(cfg()).unwrap();
        let mut ranked = AdmissionController::new(AdmissionConfig {
            rank_energy_per_quality: true,
            ..cfg()
        })
        .unwrap();
        let mut shed_raw = None;
        let mut shed_ranked = None;
        for _ in 0..100 {
            shed_raw = shed_raw.or(raw.observe_round_ranked(&round).shed);
            shed_ranked = shed_ranked.or(ranked.observe_round_ranked(&round).shed);
        }
        assert_eq!(shed_raw, Some(0), "raw metric sheds the costliest");
        assert_eq!(
            shed_ranked,
            Some(1),
            "per-quality metric sheds the worst Joules-per-point"
        );
    }

    #[test]
    fn zero_quality_session_ranks_as_maximally_expensive() {
        let round = [
            SessionRoundCost {
                id: 0,
                joules: 50.0,
                quality: 30.0,
            },
            // Delivered nothing yet: must be the shed candidate even
            // with far less raw energy, and must not divide by zero.
            SessionRoundCost {
                id: 1,
                joules: 1.0,
                quality: 0.0,
            },
        ];
        let mut c = AdmissionController::new(AdmissionConfig {
            rank_energy_per_quality: true,
            ..cfg()
        })
        .unwrap();
        let mut shed = None;
        for _ in 0..100 {
            shed = shed.or(c.observe_round_ranked(&round).shed);
        }
        assert_eq!(shed, Some(1));
    }

    #[test]
    fn legacy_observe_round_is_unchanged_by_the_ranking_flag() {
        // Through the tuple entry point every quality is one point, so
        // the flag must not alter which session is shed.
        let round = [(0u32, 30.0f64), (1, 20.0)];
        let mut raw = AdmissionController::new(cfg()).unwrap();
        let mut flagged = AdmissionController::new(AdmissionConfig {
            rank_energy_per_quality: true,
            ..cfg()
        })
        .unwrap();
        for _ in 0..100 {
            let a = raw.observe_round(&round);
            let b = flagged.observe_round(&round);
            assert_eq!(a.shed, b.shed);
            assert_eq!(a.level, b.level);
        }
    }

    #[test]
    fn bad_configs_rejected() {
        let mut bad = cfg();
        bad.capacity_j_per_round = 0.0;
        assert!(AdmissionController::new(bad).is_err());
        let mut bad = cfg();
        bad.shed_lag = 1.0; // below rate_drop_lag
        assert!(AdmissionController::new(bad).is_err());
        let mut bad = cfg();
        bad.rate_drop_stride = 1;
        assert!(AdmissionController::new(bad).is_err());
        let mut bad = cfg();
        bad.degrade_floor_th = 1.5;
        assert!(AdmissionController::new(bad).is_err());
    }
}
