//! Fleet-level causal tracing: one [`Tracer`] per session, flight
//! recorder dumps on control transitions, and the joined deterministic
//! report (blast radii + `C^k` calibration).
//!
//! The split mirrors the telemetry crate's: everything in
//! [`FleetTrace::deterministic_json`] is a pure function of the
//! [`ServeConfig`] — byte-identical for any worker
//! count — while wall-clock timestamps live only in the flight-recorder
//! rings and surface through [`FleetTrace::chrome_trace_json`], which
//! loads directly into `chrome://tracing` / Perfetto.

use crate::manager::ServeConfig;
use pbpair_media::VideoFormat;
use pbpair_trace::json::{push_field, push_string_field};
use pbpair_trace::{analyze, Analysis, AnalyzeParams, Calibration, RecordedEvent, Tracer};

/// Flight-recorder slots per session. Big enough to hold several
/// frames' worth of transport/decode events around a control incident;
/// small enough that the recorder stays resident and overwrite-cheap.
pub const TRACE_RING_CAPACITY: usize = 512;

/// A snapshot of one session's flight-recorder ring, taken when the
/// admission controller changed service level or a decoder resync
/// fired — the "what just happened" record for that incident.
#[derive(Clone, Debug)]
pub struct TraceDump {
    /// Session whose ring was dumped.
    pub session: u32,
    /// Round (frame slot) the incident landed in.
    pub round: u32,
    /// `"degraded"` (service-level transition), `"resync"` (the decoder
    /// scanned forward past damage this round), or `"slo"` (a burn-rate
    /// alert started firing this round).
    pub reason: &'static str,
    /// Ring contents at dump time, oldest first.
    pub events: Vec<RecordedEvent>,
}

/// One session's replayed trace.
#[derive(Clone, Debug)]
pub struct SessionTrace {
    /// Session id.
    pub id: u32,
    /// Causal replay: DAG, per-event blast radii, calibration.
    pub analysis: Analysis,
    /// Final flight-recorder contents.
    pub ring: Vec<RecordedEvent>,
    /// Total events pushed through the ring over the session.
    pub ring_pushed: u64,
}

/// Everything tracing captured across one fleet run.
#[derive(Clone, Debug)]
pub struct FleetTrace {
    /// Per-session replays, in session-id order.
    pub sessions: Vec<SessionTrace>,
    /// Fleet-wide `C^k` calibration (per-session scores merged in id
    /// order; the merge is commutative integer addition, so this is
    /// identical for any worker count).
    pub calibration: Calibration,
    /// Incident dumps in the order they were taken (round-major,
    /// session-id order within a round — deterministic).
    pub dumps: Vec<TraceDump>,
}

impl FleetTrace {
    /// The deterministic report: calibration, every blast radius, and
    /// incident-dump summaries. Integer-only JSON, byte-identical
    /// across worker counts; wall-clock timestamps are deliberately
    /// excluded (see [`FleetTrace::chrome_trace_json`]).
    pub fn deterministic_json(&self) -> String {
        let mut out = String::new();
        out.push('{');
        let mut first = true;
        push_field(&mut out, &mut first, "sessions", self.sessions.len());
        out.push_str(",\"calibration\":");
        out.push_str(&self.calibration.deterministic_json());
        out.push_str(",\"blasts\":[");
        let mut first_blast = true;
        for s in &self.sessions {
            for b in &s.analysis.blasts {
                if !first_blast {
                    out.push(',');
                }
                first_blast = false;
                b.push_json(&mut out, s.id as u64);
            }
        }
        out.push_str("],\"per_session\":[");
        for (i, s) in self.sessions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            let mut f = true;
            push_field(&mut out, &mut f, "id", s.id);
            push_field(&mut out, &mut f, "blasts", s.analysis.blasts.len());
            push_field(
                &mut out,
                &mut f,
                "dirty_mbs",
                s.analysis
                    .dirty
                    .values()
                    .map(|m| m.iter().filter(|&&d| d).count() as u64)
                    .sum::<u64>(),
            );
            push_field(
                &mut out,
                &mut f,
                "brier_e9",
                s.analysis.calibration.brier_e9(),
            );
            push_field(&mut out, &mut f, "ring_pushed", s.ring_pushed);
            out.push('}');
        }
        out.push_str("],\"dumps\":[");
        for (i, d) in self.dumps.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            let mut f = true;
            push_field(&mut out, &mut f, "session", d.session);
            push_field(&mut out, &mut f, "round", d.round);
            push_string_field(&mut out, &mut f, "reason", d.reason);
            out.push_str(",\"events\":[");
            for (j, e) in d.events.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push('{');
                let mut g = true;
                push_field(&mut out, &mut g, "ticket", e.ticket);
                push_string_field(&mut out, &mut g, "name", e.event.name());
                push_field(&mut out, &mut g, "frame", e.event.frame());
                out.push('}');
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }

    /// The timing-side export: every session's final ring as
    /// `chrome://tracing` instant events (`ph: "i"`), one pid per
    /// session. Timestamps are microseconds since the tracer's epoch.
    pub fn chrome_trace_json(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        let mut first = true;
        for s in &self.sessions {
            for e in &s.ring {
                if !first {
                    out.push(',');
                }
                first = false;
                out.push('{');
                let mut f = true;
                push_string_field(&mut out, &mut f, "name", e.event.name());
                push_string_field(&mut out, &mut f, "ph", "i");
                push_string_field(&mut out, &mut f, "s", "t");
                push_field(&mut out, &mut f, "ts", e.ts_us);
                push_field(&mut out, &mut f, "pid", s.id);
                push_field(&mut out, &mut f, "tid", 0);
                out.push_str(",\"args\":{");
                let mut g = true;
                push_field(&mut out, &mut g, "frame", e.event.frame());
                push_field(&mut out, &mut g, "ticket", e.ticket);
                out.push_str("}}");
            }
        }
        out.push_str("]}");
        out
    }
}

/// Run-time tracing state the manager threads through its round loop.
pub(crate) struct TraceState {
    tracers: Vec<Tracer>,
    dumps: Vec<TraceDump>,
    /// Last seen `decode.resyncs` per session, for per-round deltas.
    resync_seen: Vec<u64>,
    /// Current fleet service-degradation level (0 none … 3 shed).
    degrade_level: u8,
}

impl TraceState {
    pub fn new(sessions: usize) -> TraceState {
        TraceState {
            tracers: (0..sessions)
                .map(|_| Tracer::new(TRACE_RING_CAPACITY))
                .collect(),
            dumps: Vec::new(),
            resync_seen: vec![0; sessions],
            degrade_level: 0,
        }
    }

    pub fn tracer(&self, id: usize) -> &Tracer {
        &self.tracers[id]
    }

    /// Records the fleet's service level after a round's admission
    /// decision. On a level *increase* every affected session gets a
    /// `degraded` marker event and a ring dump — the flight recorder's
    /// reason to exist.
    pub fn note_degrade(&mut self, round: u32, level: u8, affected: &[bool]) {
        if level > self.degrade_level {
            for (id, tracer) in self.tracers.iter().enumerate() {
                if !affected[id] {
                    continue;
                }
                tracer.emit(pbpair_trace::Event::Degraded { round, level });
                self.dumps.push(TraceDump {
                    session: id as u32,
                    round,
                    reason: "degraded",
                    events: tracer.ring_snapshot(),
                });
            }
        }
        self.degrade_level = level;
    }

    /// Checks one session's post-round resync total; a delta dumps its
    /// ring.
    pub fn note_resyncs(&mut self, round: u32, id: usize, resyncs_total: u64) {
        if resyncs_total > self.resync_seen[id] {
            self.resync_seen[id] = resyncs_total;
            self.dumps.push(TraceDump {
                session: id as u32,
                round,
                reason: "resync",
                events: self.tracers[id].ring_snapshot(),
            });
        }
    }

    /// Dumps every affected session's ring when an SLO burn-rate alert
    /// starts firing — the metric → alert → causal-trace hop of the
    /// observability plane. One dump per session per alerting round.
    pub fn note_slo(&mut self, round: u32, affected: &[bool]) {
        for (id, tracer) in self.tracers.iter().enumerate() {
            if !affected[id] {
                continue;
            }
            self.dumps.push(TraceDump {
                session: id as u32,
                round,
                reason: "slo",
                events: tracer.ring_snapshot(),
            });
        }
    }

    /// Replays every session's log and assembles the fleet report.
    /// Sessions are analyzed and calibration merged in id order, so the
    /// result is independent of scheduling.
    pub fn finish(self, cfg: &ServeConfig) -> FleetTrace {
        let format = VideoFormat::QCIF;
        let params = AnalyzeParams {
            cols: format.mb_cols(),
            rows: format.mb_rows(),
            mtu: cfg.mtu,
            frames: cfg.frames as u32,
        };
        let mut calibration = Calibration::default();
        let sessions: Vec<SessionTrace> = self
            .tracers
            .iter()
            .enumerate()
            .map(|(id, tracer)| {
                let analysis = analyze(&tracer.log_snapshot(), params);
                calibration.merge(&analysis.calibration);
                SessionTrace {
                    id: id as u32,
                    analysis,
                    ring: tracer.ring_snapshot(),
                    ring_pushed: tracer.ring_pushed(),
                }
            })
            .collect();
        FleetTrace {
            sessions,
            calibration,
            dumps: self.dumps,
        }
    }
}
