//! Joint intra/FEC redundancy control.
//!
//! PBPAIR's `Intra_Th` and a block erasure code spend the *same* bit and
//! energy budget on the *same* goal — bounding the visual damage a lossy
//! channel can do. The paper adapts only the intra side; this module
//! closes the loop on both: at every GOP boundary the controller reads
//!
//! * the receiver's feedback PLR,
//! * its erasure-burst-length estimate ([`pbpair_netsim::BurstEstimator`]
//!   riding the same feedback report), and
//! * the encoder's own `C^k` damage forecast (`1 − mean σ^{k−1}`: how
//!   much a lost packet is *expected* to hurt given current refresh
//!   state),
//!
//! and picks the (`Intra_Th`, parity shards) pair minimizing predicted
//! residual damage plus a small energy term, subject to a total-bytes
//! budget. Channel-aware: residual block loss is evaluated under a
//! two-state Markov erasure chain fitted to (PLR, burst length), so a
//! bursty channel buys deeper parity than a uniform one at the same PLR.
//!
//! Everything is pure `f64` arithmetic on the session's deterministic
//! state — decisions replay identically at any worker count.

use pbpair_netsim::FecSpec;
use serde::{Deserialize, Serialize};

/// The `Intra_Th` operating points the controller may select. Spans the
/// paper's useful range; coarse on purpose — the degradation controller
/// works in fine steps, the joint controller in regimes.
const TH_GRID: [f64; 7] = [0.70, 0.75, 0.80, 0.85, 0.90, 0.95, 0.99];

/// Weight of the normalized energy term against predicted damage.
const ENERGY_LAMBDA: f64 = 0.01;

/// Floor on the `C^k` damage forecast inside the score. A freshly
/// refreshed picture forecasts near-zero damage, but acting on that
/// forecast by dropping protection *re-creates* the exposure the refresh
/// just paid for — the classic self-defeating feedback loop. The floor
/// keeps the loss term live (and the forecast still scales it above the
/// floor) so protection follows the channel, not the controller's own
/// success.
const DAMAGE_FLOOR: f64 = 0.25;

/// Slope of the propagation discount `1 − SLOPE·th`: how much raising
/// `Intra_Th` shrinks what one lost block corrupts. Deliberately gentle —
/// within the grid's range the measured PSNR spread between operating
/// points is small next to the spread between repaired and unrepaired
/// blocks, and an aggressive slope makes the controller buy `Intra_Th`
/// with bytes that repair more damage as parity.
const PROPAGATION_SLOPE: f64 = 0.35;

/// Configuration of the joint redundancy controller.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RedundancyConfig {
    /// Codec family to re-rate. Its `r` is only the starting point; the
    /// controller moves parity within `0..=max_parity` (0 = FEC off for
    /// that GOP). XOR is structurally capped at one parity shard.
    pub family: FecSpec,
    /// Upper bound on parity shards per block.
    pub max_parity: usize,
    /// Wire-bytes budget as a multiple of the unprotected stream at the
    /// session's base `Intra_Th`. Both levers draw on it: raising
    /// `Intra_Th` grows the encoded frame (intra MBs cost more bits) and
    /// parity multiplies whatever the encoder emits by `1 + r/k`, so the
    /// controller genuinely *splits* the frame bit budget between intra
    /// refresh and FEC rate. 1.0 means "no headroom": protection can
    /// only be bought by lowering `Intra_Th` below base — usually
    /// impossible within the grid — so FEC stays off.
    pub budget_ratio: f64,
    /// Decision cadence in frames (a "GOP" of the joint loop).
    pub gop: u64,
}

impl RedundancyConfig {
    /// A controller around `family` at the evaluation defaults:
    /// 25% byte overhead ceiling, re-decision every 8 frames.
    pub fn new(family: FecSpec) -> Self {
        RedundancyConfig {
            family,
            max_parity: 4,
            budget_ratio: 1.25,
            gop: 8,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a message naming the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        self.family.validate()?;
        if self.gop == 0 {
            return Err("redundancy: gop must be positive".into());
        }
        if self.budget_ratio < 1.0 {
            return Err(format!(
                "redundancy: budget_ratio {} cannot be below 1.0 (parity-free)",
                self.budget_ratio
            ));
        }
        if self.family.k() + self.max_parity > 255 {
            return Err(format!(
                "redundancy: k + max_parity = {} exceeds GF(256) block bound",
                self.family.k() + self.max_parity
            ));
        }
        Ok(())
    }
}

/// One joint operating point: what the session applies until the next
/// GOP boundary.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RedundancyDecision {
    /// `Intra_Th` for the coming GOP.
    pub intra_th: f64,
    /// Parity shards per block (0 = no FEC this GOP).
    pub parity: usize,
}

/// The controller. Feed it feedback ([`RedundancyController::on_feedback`])
/// as reports arrive and call [`RedundancyController::decide`] at GOP
/// boundaries; between boundaries the last decision stays in force.
#[derive(Debug, Clone)]
pub struct RedundancyController {
    cfg: RedundancyConfig,
    /// The session's anchor `Intra_Th` — the bit budget is quoted
    /// relative to the unprotected stream at this operating point.
    base_th: f64,
    /// Last feedback PLR (starts at the configured channel PLR).
    plr: f64,
    /// Last feedback mean erasure-burst length (packets).
    burst: f64,
    decision: RedundancyDecision,
}

impl RedundancyController {
    /// Builds a controller; `initial_plr` seeds the loop until the first
    /// feedback report, `base_th` is in force until the first decision.
    ///
    /// # Errors
    ///
    /// Propagates [`RedundancyConfig::validate`] failures.
    pub fn new(cfg: RedundancyConfig, initial_plr: f64, base_th: f64) -> Result<Self, String> {
        cfg.validate()?;
        Ok(RedundancyController {
            decision: RedundancyDecision {
                intra_th: base_th.clamp(0.0, 1.0),
                parity: cfg.family.r().min(cfg.max_parity),
            },
            base_th: base_th.clamp(0.0, 1.0),
            plr: initial_plr.clamp(0.0, 0.999),
            burst: 1.0,
            cfg,
        })
    }

    /// Decision cadence in frames.
    pub fn gop(&self) -> u64 {
        self.cfg.gop
    }

    /// The codec family being re-rated.
    pub fn family(&self) -> FecSpec {
        self.cfg.family
    }

    /// The decision currently in force.
    pub fn decision(&self) -> RedundancyDecision {
        self.decision
    }

    /// `Intra_Th` currently in force.
    pub fn intra_th(&self) -> f64 {
        self.decision.intra_th
    }

    /// Updates the channel estimate from a receiver feedback report.
    pub fn on_feedback(&mut self, plr: f64, burst: f64) {
        self.plr = plr.clamp(0.0, 0.999);
        self.burst = burst.max(1.0);
    }

    /// Picks the joint operating point for the next GOP.
    /// `expected_damage` is the encoder's `C^k` forecast in `[0, 1]` —
    /// how much of the picture a loss is expected to corrupt given the
    /// current refresh state (`1 − mean σ^{k−1}`).
    ///
    /// Every `(Intra_Th, parity)` pair on the grid is priced three ways:
    /// wire bytes `norm_bytes(th) · (1 + r/k)` (hard budget), predicted
    /// residual damage `damage · (1 − SLOPE·th) · residual(plr, burst)`
    /// (intra refresh shrinks what a lost block corrupts; parity shrinks
    /// how often a block is lost), and a small normalized energy term
    /// (intra MBs skip motion estimation, so high `Intra_Th` *saves*
    /// encode energy; GF(256) parity work costs more than XOR parity).
    /// The feasible minimizer wins; if nothing on the grid fits the
    /// budget the previous decision stays in force.
    pub fn decide(&mut self, expected_damage: f64) -> RedundancyDecision {
        let damage = DAMAGE_FLOOR + (1.0 - DAMAGE_FLOOR) * expected_damage.clamp(0.0, 1.0);
        let k = self.cfg.family.k();
        let budget = self.cfg.budget_ratio * norm_bytes(self.base_th);
        let mut best = (f64::INFINITY, self.decision);
        for &th in TH_GRID.iter() {
            for r in 0..=self.cfg.max_parity {
                let spec = (r > 0).then(|| self.cfg.family.with_parity(r));
                // XOR is structurally r = 1: higher candidates collapse
                // onto the same spec and can only tie, never win.
                let eff_r = spec.map_or(0, |s| s.r());
                if eff_r != r {
                    continue;
                }
                let wire = norm_bytes(th) * (1.0 + eff_r as f64 / k as f64);
                if wire > budget + 1e-9 {
                    continue;
                }
                let n = k + eff_r;
                let cap = spec.map_or(0, erasure_capability);
                let residual = residual_block_loss(self.plr, self.burst, n, cap);
                let predicted = damage * (1.0 - PROPAGATION_SLOPE * th) * residual;
                let energy =
                    (1.0 - 0.5 * th) + per_parity_cost(&self.cfg.family) * eff_r as f64 / k as f64;
                let score = predicted + ENERGY_LAMBDA * energy;
                if score < best.0 {
                    best = (
                        score,
                        RedundancyDecision {
                            intra_th: th,
                            parity: eff_r,
                        },
                    );
                }
            }
        }
        self.decision = best.1;
        self.decision
    }
}

/// Encoded-frame bytes as a function of `Intra_Th`, normalized so the
/// number is comparable across candidates (intra MBs cost roughly twice
/// the bits of predicted MBs in this codec, so bytes grow ≈linearly in
/// the intra fraction).
fn norm_bytes(th: f64) -> f64 {
    0.6 + 0.6 * th
}

/// Erasures per block the family is guaranteed (RS, interleaved-XOR
/// against *any* pattern of that weight; XOR) or likely (LT, which pays
/// fountain overhead) to repair.
fn erasure_capability(spec: FecSpec) -> usize {
    match spec {
        FecSpec::Rs { r, .. } | FecSpec::Interleaved { r, .. } => r,
        FecSpec::Xor { .. } => 1,
        FecSpec::Lt { r, .. } => r.saturating_sub(1),
    }
}

/// Normalized per-parity-shard processing cost (GF(256) families pay
/// table-lookup MACs; XOR families pay single-cycle XORs).
fn per_parity_cost(family: &FecSpec) -> f64 {
    match family {
        FecSpec::Rs { .. } | FecSpec::Lt { .. } => 0.25,
        FecSpec::Xor { .. } | FecSpec::Interleaved { .. } => 0.05,
    }
}

/// Probability that more than `cap` of a block's `n` packets are erased,
/// under a two-state Markov (Gilbert) erasure chain with stationary loss
/// `plr` and mean burst length `burst` packets. `burst = 1` degenerates
/// to (slightly anti-correlated) near-independent losses; larger values
/// cluster erasures, which is exactly what defeats shallow parity.
pub fn residual_block_loss(plr: f64, burst: f64, n: usize, cap: usize) -> f64 {
    if plr <= 0.0 || cap >= n {
        return 0.0;
    }
    if plr >= 1.0 {
        return 1.0;
    }
    let l = burst.max(1.0);
    let p_bg = 1.0 / l;
    let p_gb = (plr / (l * (1.0 - plr))).min(1.0);
    // dp[c][s]: after t packets, probability of c erasures (saturated at
    // cap + 1) with the chain in state s (0 = good, 1 = bad). Start from
    // the stationary distribution.
    let sat = cap + 1;
    let mut dp = vec![[0.0f64; 2]; sat + 1];
    dp[0][0] = 1.0 - plr;
    dp[0][1] = plr;
    for _ in 0..n {
        let mut next = vec![[0.0f64; 2]; sat + 1];
        for (c, states) in dp.iter().enumerate() {
            for (s, &p) in states.iter().enumerate() {
                if p == 0.0 {
                    continue;
                }
                let c2 = if s == 1 { (c + 1).min(sat) } else { c };
                let (to_good, to_bad) = if s == 1 {
                    (p_bg, 1.0 - p_bg)
                } else {
                    (1.0 - p_gb, p_gb)
                };
                next[c2][0] += p * to_good;
                next[c2][1] += p * to_bad;
            }
        }
        dp = next;
    }
    dp[sat][0] + dp[sat][1]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rs8() -> RedundancyConfig {
        RedundancyConfig {
            max_parity: 4,
            budget_ratio: 1.5,
            ..RedundancyConfig::new(FecSpec::Rs { k: 8, r: 2 })
        }
    }

    #[test]
    fn residual_is_monotone_in_capability_and_burst() {
        let a = residual_block_loss(0.10, 1.0, 10, 0);
        let b = residual_block_loss(0.10, 1.0, 10, 1);
        let c = residual_block_loss(0.10, 1.0, 10, 2);
        assert!(a > b && b > c, "{a} {b} {c}");
        // Clustered losses defeat shallow parity more often.
        assert!(residual_block_loss(0.10, 4.0, 10, 2) > residual_block_loss(0.10, 1.0, 10, 2));
        // Boundary behaviour.
        assert_eq!(residual_block_loss(0.0, 1.0, 10, 0), 0.0);
        assert_eq!(residual_block_loss(0.10, 2.0, 10, 10), 0.0);
        assert_eq!(residual_block_loss(1.0, 1.0, 10, 2), 1.0);
        // A probability, whatever the inputs.
        let p = residual_block_loss(0.37, 2.5, 12, 3);
        assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn decisions_are_deterministic() {
        let mut a = RedundancyController::new(rs8(), 0.10, 0.9).unwrap();
        let mut b = RedundancyController::new(rs8(), 0.10, 0.9).unwrap();
        a.on_feedback(0.12, 3.0);
        b.on_feedback(0.12, 3.0);
        assert_eq!(a.decide(0.6), b.decide(0.6));
    }

    #[test]
    fn lossy_channels_keep_protection_engaged() {
        for burst in [1.1, 4.0] {
            let mut ctl = RedundancyController::new(rs8(), 0.10, 0.9).unwrap();
            ctl.on_feedback(0.10, burst);
            let d = ctl.decide(0.6);
            assert!(d.parity >= 1, "burst {burst}: parity {}", d.parity);
        }
        // Heavy clustered loss with a hot damage forecast buys depth.
        let mut ctl = RedundancyController::new(rs8(), 0.25, 0.9).unwrap();
        ctl.on_feedback(0.25, 3.0);
        assert!(ctl.decide(0.9).parity >= 2);
    }

    #[test]
    fn damage_forecast_scales_protection() {
        let mut ctl = RedundancyController::new(rs8(), 0.10, 0.9).unwrap();
        ctl.on_feedback(0.10, 2.0);
        let hot = ctl.decide(0.9);
        let cold = ctl.decide(0.02);
        assert!(hot.parity >= cold.parity);
    }

    #[test]
    fn plr_scales_protection() {
        let mut light = RedundancyController::new(rs8(), 0.02, 0.9).unwrap();
        light.on_feedback(0.02, 1.2);
        let mut heavy = RedundancyController::new(rs8(), 0.25, 0.9).unwrap();
        heavy.on_feedback(0.25, 1.2);
        assert!(heavy.decide(0.9).parity >= light.decide(0.9).parity);
    }

    #[test]
    fn clean_channel_turns_fec_off_and_relaxes_nothing_it_needs() {
        let mut ctl = RedundancyController::new(rs8(), 0.10, 0.9).unwrap();
        ctl.on_feedback(0.0, 1.0);
        let d = ctl.decide(0.8);
        assert_eq!(d.parity, 0, "no loss, no parity");
        // With damage moot, energy decides: the cheapest (highest) th.
        assert_eq!(d.intra_th, 0.99);
    }

    #[test]
    fn no_byte_headroom_means_no_parity() {
        let mut cfg = rs8();
        cfg.budget_ratio = 1.0;
        let mut ctl = RedundancyController::new(cfg, 0.2, 0.9).unwrap();
        ctl.on_feedback(0.2, 4.0);
        // Even under heavy clustered loss: the grid cannot drop Intra_Th
        // far enough below base to pay for a single parity shard.
        assert_eq!(ctl.decide(0.9).parity, 0);
    }

    #[test]
    fn every_decision_respects_the_wire_budget() {
        for (plr, burst, damage, ratio) in [
            (0.02, 1.0, 0.1, 1.2),
            (0.10, 1.5, 0.6, 1.25),
            (0.25, 4.0, 0.9, 1.2),
            (0.40, 6.0, 1.0, 1.5),
        ] {
            let mut cfg = rs8();
            cfg.budget_ratio = ratio;
            let mut ctl = RedundancyController::new(cfg, plr, 0.9).unwrap();
            ctl.on_feedback(plr, burst);
            let d = ctl.decide(damage);
            let wire = (0.6 + 0.6 * d.intra_th) * (1.0 + d.parity as f64 / 8.0);
            let budget = ratio * (0.6 + 0.6 * 0.9);
            assert!(
                wire <= budget + 1e-9,
                "plr {plr} burst {burst}: wire {wire} over budget {budget}"
            );
        }
    }

    #[test]
    fn parity_is_paid_for_by_lowering_intra_th() {
        // With headroom for parity only below base Intra_Th, choosing
        // protection must come with a lower operating point.
        let mut cfg = rs8();
        cfg.budget_ratio = 1.2; // r=2 at k=8 needs th ≤ 0.82 on the grid
        let mut ctl = RedundancyController::new(cfg, 0.25, 0.9).unwrap();
        ctl.on_feedback(0.25, 1.2);
        let d = ctl.decide(0.9);
        if d.parity >= 2 {
            assert!(d.intra_th <= 0.85, "th {} with r {}", d.intra_th, d.parity);
        }
        assert!(d.parity >= 1, "heavy loss must buy some protection");
    }

    #[test]
    fn xor_family_never_exceeds_its_single_parity() {
        let cfg = RedundancyConfig {
            budget_ratio: 2.0,
            ..RedundancyConfig::new(FecSpec::Xor { k: 4 })
        };
        let mut ctl = RedundancyController::new(cfg, 0.2, 0.9).unwrap();
        ctl.on_feedback(0.2, 3.0);
        assert!(ctl.decide(0.9).parity <= 1);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut cfg = RedundancyConfig::new(FecSpec::Rs { k: 8, r: 2 });
        cfg.gop = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = RedundancyConfig::new(FecSpec::Rs { k: 8, r: 2 });
        cfg.budget_ratio = 0.5;
        assert!(cfg.validate().is_err());
        let cfg = RedundancyConfig::new(FecSpec::Rs { k: 254, r: 1 });
        assert!(cfg.validate().is_err());
        assert!(RedundancyConfig::new(FecSpec::Xor { k: 0 })
            .validate()
            .is_err());
    }
}
