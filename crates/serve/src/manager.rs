//! The session manager: N concurrent streaming sessions on a
//! work-stealing pool, with admission control in the loop.
//!
//! Execution is round-based. A round submits one job per live session —
//! "advance this session by one frame slot" — with the session id as the
//! worker-affinity hint, waits for the fleet to drain (the scheduler
//! balances uneven per-session cost by stealing), then feeds the round's
//! deterministic energy ledger to the [`AdmissionController`] and
//! applies its decision: raise/lift the fleet `Intra_Th` floor, drop
//! frames, or shed a session.
//!
//! Because every session is internally seeded and sessions never share
//! mutable state, the *results* of a run are a pure function of the
//! [`ServeConfig`]; worker count and scheduling order only move the
//! wall-clock numbers in [`FleetTiming`]. The round barrier is what
//! keeps admission decisions on that deterministic side of the line:
//! the controller always observes complete rounds in session-id order.

use crate::admission::{AdmissionConfig, AdmissionController, SessionRoundCost};
use crate::chaos::ChaosPlan;
use crate::health::WatchdogConfig;
use crate::observe::{
    firing_events, fleet_health_json, Observability, ObservabilityConfig, ObserveState,
};
use crate::redundancy::RedundancyConfig;
use crate::report::{quantile_ms, FleetHealth, FleetTiming, ServeReport, SessionReport};
use crate::sched::WorkStealingPool;
use crate::session::{DeviceKind, FrameOutcome, Session, SessionConfig, SessionScheme};
use crate::trace::{FleetTrace, TraceState};
use pbpair_codec::RdeConfig;
use pbpair_media::synth::MotionClass;
use pbpair_netsim::{ChannelSpec, FecSpec, RetryConfig};
use pbpair_telemetry::Telemetry;
use serde::{Deserialize, Serialize};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// How encode-energy device profiles are assigned across the fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeviceMix {
    /// Every session uses the same device.
    Uniform(DeviceKind),
    /// Sessions alternate iPAQ / Zaurus by id — the paper's two λ
    /// profiles side by side in one fleet.
    Alternating,
}

impl DeviceMix {
    /// The device for session `id`.
    pub fn device_for(&self, id: u32) -> DeviceKind {
        match self {
            DeviceMix::Uniform(d) => *d,
            DeviceMix::Alternating => {
                if id.is_multiple_of(2) {
                    DeviceKind::Ipaq
                } else {
                    DeviceKind::Zaurus
                }
            }
        }
    }
}

/// Fleet-level configuration of one serving run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeConfig {
    /// Concurrent sessions admitted at start.
    pub sessions: usize,
    /// Rounds to run (frame slots per session).
    pub frames: usize,
    /// Worker threads.
    pub workers: usize,
    /// In-flight job bound of the scheduler; 0 → `2 × workers`.
    pub queue_capacity: usize,
    /// Master seed; every session derives its own streams from it.
    pub seed: u64,
    /// Forward-channel per-packet loss rate for every session.
    pub plr: f64,
    /// Payload corruption intensity in `[0, 1]`.
    pub corruption: f64,
    /// XOR-FEC group size applied to every session (`None` = off).
    /// Legacy spelling of `fec: Some(FecSpec::Xor { k })`; exclusive
    /// with [`ServeConfig::fec`].
    pub fec_group: Option<usize>,
    /// FEC codec applied to every session's packet path (`None` = off).
    pub fec: Option<FecSpec>,
    /// Joint intra/FEC redundancy controller for every session. Carries
    /// its own codec family, so `fec`/`fec_group` must be `None`.
    pub redundancy: Option<RedundancyConfig>,
    /// Payload MTU.
    pub mtu: usize,
    /// Anchor `Intra_Th` operating point every session starts from
    /// (the degradation controller moves around it).
    pub base_intra_th: f64,
    /// Per-frame transmission/pacing wait in microseconds (wall-clock
    /// only; see [`SessionConfig::pacing_us`]). Waits overlap across
    /// workers, so this is what makes added workers pay off even when
    /// the encode work itself saturates the cores.
    pub pacing_us: u64,
    /// Admission-control thresholds and capacity.
    pub admission: AdmissionConfig,
    /// Forward-channel scenario for every session; `None` keeps classic
    /// uniform loss at [`ServeConfig::plr`].
    pub channel: Option<ChannelSpec>,
    /// Content class for every session; `None` keeps the default
    /// per-session rotation through all classes (diverse load).
    pub clip: Option<MotionClass>,
    /// Refresh scheme every session encodes with.
    pub scheme: SessionScheme,
    /// Joint rate–distortion–energy controller for every session's
    /// encoder (`None` or zero λ weights leave the fleet's bitstreams —
    /// and every committed digest — unchanged).
    #[serde(default)]
    pub rde: Option<RdeConfig>,
    /// Device-profile assignment across sessions.
    pub device_mix: DeviceMix,
    /// Feedback-report staleness window (frames); `None` disables expiry.
    pub feedback_staleness: Option<u64>,
    /// Feedback retry/backoff policy (`max_retries == 0` disables).
    pub retry: RetryConfig,
    /// Per-session staleness-watchdog thresholds.
    pub watchdog: WatchdogConfig,
    /// Fault-injection schedule.
    pub chaos: ChaosPlan,
    /// Live observability plane (time-series, SLO alerting, scrape
    /// endpoint). Off by default.
    pub observability: ObservabilityConfig,
}

impl Default for ServeConfig {
    /// A small, healthy fleet: 4 sessions, ample capacity, no FEC.
    fn default() -> Self {
        ServeConfig {
            sessions: 4,
            frames: 16,
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            queue_capacity: 0,
            seed: 2005,
            plr: 0.10,
            corruption: 0.2,
            fec_group: None,
            fec: None,
            redundancy: None,
            mtu: pbpair_netsim::DEFAULT_MTU,
            base_intra_th: 0.9,
            pacing_us: 3000,
            admission: AdmissionConfig::default(),
            channel: None,
            clip: None,
            scheme: SessionScheme::Pbpair,
            rde: None,
            device_mix: DeviceMix::Uniform(DeviceKind::Ipaq),
            feedback_staleness: None,
            retry: RetryConfig::default(),
            watchdog: WatchdogConfig::default(),
            chaos: ChaosPlan::none(),
            observability: ObservabilityConfig::default(),
        }
    }
}

impl ServeConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a message naming the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.sessions == 0 {
            return Err("at least one session required".into());
        }
        if self.frames == 0 {
            return Err("at least one frame required".into());
        }
        if self.workers == 0 {
            return Err("at least one worker required".into());
        }
        if !(0.0..1.0).contains(&self.plr) {
            return Err(format!("plr {} outside [0,1)", self.plr));
        }
        if let Some(chan) = &self.channel {
            chan.validate()?;
        }
        if self.fec.is_some() && self.fec_group.is_some() {
            return Err("set fec or fec_group, not both".into());
        }
        if self.redundancy.is_some() && (self.fec.is_some() || self.fec_group.is_some()) {
            return Err("redundancy carries its own fec family; leave fec/fec_group unset".into());
        }
        if let Some(spec) = &self.fec {
            spec.validate()?;
        }
        if let Some(rc) = &self.redundancy {
            rc.validate()?;
        }
        self.watchdog.validate()?;
        self.observability.validate()?;
        self.admission.validate()
    }

    /// Builds the per-session configuration for session `id`.
    fn session_config(&self, id: u32) -> SessionConfig {
        let mut cfg = SessionConfig::standard(
            id,
            self.seed
                .wrapping_add((id as u64 + 1).wrapping_mul(0x2545_f491_4f6c_dd1d)),
        );
        cfg.plr = self.plr;
        cfg.corruption = self.corruption;
        cfg.fec_group = self.fec_group;
        cfg.fec = self.fec;
        cfg.redundancy = self.redundancy;
        cfg.mtu = self.mtu;
        cfg.base_intra_th = self.base_intra_th;
        cfg.pacing_us = self.pacing_us;
        cfg.channel = self.channel.clone();
        if let Some(class) = self.clip {
            cfg.class = class;
        }
        cfg.scheme = self.scheme;
        cfg.rde = self.rde;
        cfg.device = self.device_mix.device_for(id);
        cfg.feedback_staleness = self.feedback_staleness;
        cfg.retry = self.retry;
        cfg.watchdog = self.watchdog;
        cfg
    }
}

/// One session plus its per-round scratch, shared with the pool.
struct Slot {
    session: Session,
    outcome: Option<FrameOutcome>,
}

/// Runs the fleet to completion. This is the serving subsystem's main
/// entry point.
///
/// # Errors
///
/// Returns an error for invalid configuration; the run itself is total.
pub fn run(cfg: &ServeConfig) -> Result<ServeReport, String> {
    run_instrumented(cfg, &Telemetry::disabled())
}

/// Like [`run`], but with every pipeline stage reporting into `tel`:
/// the codec (`enc.*`/`dec.*`), the channels (`net.*`), the sessions and
/// scheduler (`serve.*`), plus a `serve.frame_latency_ms` timing
/// histogram. Each session writes through `tel.shard(id)` so concurrent
/// flushes touch disjoint cache lines; the report's deterministic
/// section is identical for any worker count (the counter sums commute).
///
/// # Errors
///
/// Returns an error for invalid configuration; the run itself is total.
pub fn run_instrumented(cfg: &ServeConfig, tel: &Telemetry) -> Result<ServeReport, String> {
    run_internal(cfg, tel, None).map(|(report, _, _)| report)
}

/// Like [`run_instrumented`], but with a causal tracer attached to every
/// session: the encoder records per-MB coding provenance, the channel
/// per-packet loss/corruption, the decoder concealment/resync — and the
/// run replays the joined log into per-event blast radii plus a fleet
/// `C^k` calibration score. Flight-recorder rings are dumped whenever
/// the admission controller raises the service-degradation level or a
/// decoder resync fires. The returned [`FleetTrace`]'s deterministic
/// report is byte-identical for any worker count.
///
/// # Errors
///
/// Returns an error for invalid configuration; the run itself is total.
pub fn run_traced(cfg: &ServeConfig, tel: &Telemetry) -> Result<(ServeReport, FleetTrace), String> {
    let (report, trace, _) = run_internal(cfg, tel, Some(TraceState::new(cfg.sessions)))?;
    Ok((report, trace.expect("tracing was enabled")))
}

/// Like [`run_instrumented`], but with the observability plane active:
/// the manager maintains `slo.*` counters at every round barrier, ticks
/// the time-series ring, evaluates the configured burn-rate SLOs, and —
/// when [`ObservabilityConfig::expose_port`] is set — serves `/metrics`,
/// `/health` and `/timeseries` for the duration of the run. The
/// returned [`Observability`] keeps the endpoint alive until dropped,
/// so callers can hold it open for scrapers after the run finishes.
///
/// # Errors
///
/// Returns an error for invalid configuration, when
/// [`ServeConfig::observability`] is fully disabled, or when the
/// telemetry context is disabled (the plane would export zeros).
pub fn run_observed(
    cfg: &ServeConfig,
    tel: &Telemetry,
) -> Result<(ServeReport, Observability), String> {
    if !cfg.observability.enabled() {
        return Err("observability is disabled; set tick_every or expose_port".into());
    }
    let (report, _, obs) = run_internal(cfg, tel, None)?;
    Ok((report, obs.expect("observability was enabled")))
}

/// [`run_traced`] and [`run_observed`] combined: causal tracing plus the
/// observability plane, with firing SLO alerts dumping flight-recorder
/// rings (reason `"slo"`).
///
/// # Errors
///
/// Same contract as [`run_observed`].
pub fn run_traced_observed(
    cfg: &ServeConfig,
    tel: &Telemetry,
) -> Result<(ServeReport, FleetTrace, Observability), String> {
    if !cfg.observability.enabled() {
        return Err("observability is disabled; set tick_every or expose_port".into());
    }
    let (report, trace, obs) = run_internal(cfg, tel, Some(TraceState::new(cfg.sessions)))?;
    Ok((
        report,
        trace.expect("tracing was enabled"),
        obs.expect("observability was enabled"),
    ))
}

fn run_internal(
    cfg: &ServeConfig,
    tel: &Telemetry,
    mut tracing: Option<TraceState>,
) -> Result<(ServeReport, Option<FleetTrace>, Option<Observability>), String> {
    cfg.validate()?;
    let mut obs = ObserveState::build(&cfg.observability, tel)?;
    let mut controller = AdmissionController::new(cfg.admission)?;
    let slots: Vec<Arc<Mutex<Slot>>> = (0..cfg.sessions)
        .map(|id| {
            Session::new(cfg.session_config(id as u32)).map(|mut session| {
                session.set_telemetry(&tel.shard(id));
                session.set_chaos(cfg.chaos.for_session(id as u32));
                if let Some(ts) = &tracing {
                    session.set_tracer(ts.tracer(id));
                }
                Arc::new(Mutex::new(Slot {
                    session,
                    outcome: None,
                }))
            })
        })
        .collect::<Result<_, _>>()?;

    let capacity = if cfg.queue_capacity == 0 {
        2 * cfg.workers
    } else {
        cfg.queue_capacity
    };
    let pool = WorkStealingPool::with_telemetry(cfg.workers, capacity, tel);
    let rounds_counter = tel.counter("serve.rounds");
    let shed_counter = tel.counter("serve.shed_sessions");
    let latency_hist = tel.timing_histogram(
        "serve.frame_latency_ms",
        &[1, 2, 5, 10, 20, 50, 100, 250, 1000],
    );
    let latencies: Arc<Mutex<Vec<f64>>> = Arc::new(Mutex::new(Vec::new()));

    let started = Instant::now();
    let mut floor_th = 0.0f64;
    let mut drop_frames = false;
    let stride = cfg.admission.rate_drop_stride;
    let mut final_lag = 0.0;

    for round in 0..cfg.frames {
        let rate_dropping = drop_frames && (round as u64 + 1).is_multiple_of(stride);
        for (id, slot) in slots.iter().enumerate() {
            if slot.lock().expect("slot lock").session.is_shed() {
                continue;
            }
            let slot = Arc::clone(slot);
            let latencies = Arc::clone(&latencies);
            let latency_hist = latency_hist.clone();
            let submitted = Instant::now();
            pool.submit_to(
                id,
                Box::new(move || {
                    let mut slot = slot.lock().expect("slot lock");
                    slot.session.set_load_floor(floor_th);
                    let outcome = if rate_dropping {
                        slot.session.drop_frame();
                        None
                    } else {
                        Some(slot.session.step_frame())
                    };
                    slot.outcome = outcome;
                    let elapsed_ms = submitted.elapsed().as_secs_f64() * 1e3;
                    latency_hist.record(elapsed_ms as u64);
                    latencies.lock().expect("latency lock").push(elapsed_ms);
                }),
            );
        }
        pool.wait_idle();
        rounds_counter.inc(1);

        // Deterministic post-round ledger, in session-id order.
        let mut round_cost = Vec::with_capacity(slots.len());
        for (id, slot) in slots.iter().enumerate() {
            let mut slot = slot.lock().expect("slot lock");
            let outcome = slot.outcome.take();
            if let Some(outcome) = &outcome {
                // FEC processing is session compute too; the admission
                // controller budgets the sum (identical when FEC is off).
                // The quality term is displayed dB discounted by the
                // session's C^k expected-damage forecast: fragile quality
                // counts for less, so under the energy-per-quality
                // ranking a fragile expensive session sheds first. It is
                // ignored entirely unless that ranking is enabled.
                let s = &slot.session;
                round_cost.push(SessionRoundCost {
                    id: id as u32,
                    joules: outcome.encode_joules + outcome.fec_joules,
                    quality: (s.last_psnr_mdb() as f64 / 1000.0) * (1.0 - s.expected_damage()),
                });
            }
            if let Some(obs) = &obs {
                // Live sessions only: a shed slot carries no traffic and
                // would dilute every per-slot SLO ratio.
                if !slot.session.is_shed() {
                    let s = &slot.session;
                    obs.note_session(
                        outcome.as_ref(),
                        s.lost_streak(),
                        s.feedback_dark().unwrap_or(0),
                        s.last_psnr_mdb(),
                    );
                }
            }
        }
        let decision = controller.observe_round_ranked(&round_cost);
        floor_th = decision.floor_th;
        drop_frames = decision.drop_frames;
        final_lag = decision.lag;
        if let Some(id) = decision.shed {
            slots[id as usize].lock().expect("slot lock").session.shed();
            shed_counter.inc(1);
        }
        if let Some(ts) = tracing.as_mut() {
            // Deterministic: derived from the admission decision and
            // per-session decode counters, both seed-pure.
            let level = if decision.shed.is_some() {
                3
            } else if drop_frames {
                2
            } else if floor_th > 0.0 {
                1
            } else {
                0
            };
            let affected: Vec<bool> = slots
                .iter()
                .enumerate()
                .map(|(id, slot)| {
                    decision.shed == Some(id as u32)
                        || !slot.lock().expect("slot lock").session.is_shed()
                })
                .collect();
            ts.note_degrade(round as u32, level, &affected);
            for (id, slot) in slots.iter().enumerate() {
                let resyncs = slot
                    .lock()
                    .expect("slot lock")
                    .session
                    .stats()
                    .decode
                    .resyncs;
                ts.note_resyncs(round as u32, id, resyncs);
            }
        }
        if let Some(obs) = obs.as_mut() {
            if obs.tick_due(round as u64) {
                // Snapshot → delta frame → SLO evaluation, all on the
                // deterministic side of the registry. A firing alert
                // escalates every live session's watchdog one step
                // (reason `slo:<name>`) and dumps its flight recorder.
                let events = obs.tick(round as u64, tel);
                let firing = firing_events(&events);
                if !firing.is_empty() {
                    let mut affected = vec![false; slots.len()];
                    for (id, slot) in slots.iter().enumerate() {
                        let mut slot = slot.lock().expect("slot lock");
                        if slot.session.is_shed() {
                            continue;
                        }
                        affected[id] = true;
                        for e in &firing {
                            slot.session.on_slo_alert(round as u64, &e.slo);
                        }
                    }
                    if let Some(ts) = tracing.as_mut() {
                        ts.note_slo(round as u32, &affected);
                    }
                }
            }
            if obs.has_expose() {
                obs.publish(health_body(round as u64 + 1, &slots, obs));
            }
        }
    }
    let wall_s = started.elapsed().as_secs_f64();
    let migrations = pool.migrations();
    drop(pool);
    if let Some(obs) = &obs {
        // Final publish so a scraper holding the endpoint open after the
        // run sees the completed-run state.
        if obs.has_expose() {
            obs.publish(health_body(cfg.frames as u64, &slots, obs));
        }
    }

    // Assemble the report.
    let mut sessions = Vec::with_capacity(slots.len());
    let mut total_frames = 0u64;
    let mut total_sent = 0u64;
    let mut total_joules = 0.0;
    let mut total_fec_joules = 0.0;
    let mut psnr_sum = 0.0;
    let mut psnr_n = 0usize;
    let mut health = FleetHealth::default();
    for slot in &slots {
        let slot = slot.lock().expect("slot lock");
        let s = &slot.session;
        let stats = s.stats();
        health.count(s.health());
        let report = SessionReport {
            id: s.config().id,
            class: s.config().class.label().to_string(),
            scheme: s.config().scheme.label(),
            device: s.config().device.label().to_string(),
            frames_encoded: stats.frames_encoded,
            frames_rate_dropped: stats.frames_rate_dropped,
            frames_lost: stats.frames_lost,
            frames_damaged: stats.frames_damaged,
            frames_stalled: stats.frames_stalled,
            chaos_injected: stats.chaos_injected,
            fec_recoveries: stats.fec_recoveries,
            fec: stats.fec,
            fec_joules: stats.fec_joules,
            fec_codec: s.fec_label().unwrap_or_default(),
            avg_psnr_db: s.quality().average_psnr(),
            encoded_bytes: stats.encoded_bytes,
            sent_bytes: stats.sent_bytes,
            encode_joules: stats.encode_joules,
            plr_estimate: s.plr_estimate(),
            final_intra_th: s.current_intra_th(),
            shed: s.is_shed(),
            health: s.health(),
            health_log: s.health_ledger().transitions().to_vec(),
            decode: stats.decode,
        };
        total_frames += report.frames_encoded;
        total_sent += report.sent_bytes;
        total_joules += report.encode_joules;
        total_fec_joules += report.fec_joules;
        if !report.shed {
            psnr_sum += report.avg_psnr_db;
            psnr_n += 1;
        }
        sessions.push(report);
    }
    let lat = latencies.lock().expect("latency lock");
    let timing = FleetTiming {
        wall_s,
        throughput_fps: if wall_s > 0.0 {
            total_frames as f64 / wall_s
        } else {
            0.0
        },
        p50_frame_ms: quantile_ms(&lat, 0.50),
        p99_frame_ms: quantile_ms(&lat, 0.99),
        migrations,
    };

    let report = ServeReport {
        workers: cfg.workers,
        rounds: cfg.frames,
        sessions,
        shed_count: controller.shed_count(),
        degraded_rounds: controller.degraded_rounds(),
        final_lag,
        total_frames,
        total_sent_bytes: total_sent,
        mean_psnr_db: if psnr_n > 0 {
            psnr_sum / psnr_n as f64
        } else {
            0.0
        },
        total_encode_joules: total_joules,
        total_fec_joules,
        health,
        alerts: obs
            .as_ref()
            .map(|o| o.alerts().to_vec())
            .unwrap_or_default(),
        timing,
    };
    Ok((
        report,
        tracing.map(|ts| ts.finish(cfg)),
        obs.map(ObserveState::finish),
    ))
}

/// Renders the `/health` body for the scrape endpoint: per-session
/// health snapshot plus the firing SLO set.
fn health_body(rounds_done: u64, slots: &[Arc<Mutex<Slot>>], obs: &ObserveState) -> String {
    let entries: Vec<(u32, &'static str, usize, bool)> = slots
        .iter()
        .enumerate()
        .map(|(id, slot)| {
            let slot = slot.lock().expect("slot lock");
            let s = &slot.session;
            (
                id as u32,
                s.health().label(),
                s.health_ledger().transitions().len(),
                s.is_shed(),
            )
        })
        .collect();
    fleet_health_json(rounds_done, &entries, &obs.firing())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(sessions: usize, frames: usize, workers: usize) -> ServeConfig {
        ServeConfig {
            sessions,
            frames,
            workers,
            ..ServeConfig::default()
        }
    }

    #[test]
    fn fleet_runs_and_reports() {
        let r = run(&small(3, 6, 2)).unwrap();
        assert_eq!(r.sessions.len(), 3);
        assert_eq!(r.rounds, 6);
        assert_eq!(r.total_frames, 18, "no shedding under default capacity");
        assert!(r.mean_psnr_db > 10.0);
        assert!(r.timing.throughput_fps > 0.0);
        assert!(r.timing.p99_frame_ms >= r.timing.p50_frame_ms);
        assert_eq!(r.shed_count, 0);
    }

    #[test]
    fn single_worker_single_session() {
        let r = run(&small(1, 4, 1)).unwrap();
        assert_eq!(r.total_frames, 4);
        assert_eq!(r.timing.migrations, 0, "one worker cannot steal");
    }

    #[test]
    fn overload_degrades_and_sheds_deterministically() {
        let mut cfg = small(6, 24, 2);
        // Starvation-level capacity: a fraction of one frame's energy.
        cfg.admission.capacity_j_per_round = 1e-4;
        cfg.admission.degrade_lag = 1.0;
        cfg.admission.rate_drop_lag = 2.0;
        cfg.admission.shed_lag = 4.0;
        let a = run(&cfg).unwrap();
        assert!(a.degraded_rounds > 0, "overload must degrade");
        assert!(a.shed_count > 0, "overload must shed");
        assert!(
            a.sessions.iter().any(|s| s.frames_rate_dropped > 0),
            "overload must drop frames"
        );
        // Shed sessions stop encoding.
        let shed: Vec<_> = a.sessions.iter().filter(|s| s.shed).collect();
        assert!(!shed.is_empty());
        assert!(shed
            .iter()
            .all(|s| s.frames_encoded + s.frames_rate_dropped < a.rounds as u64));
        // And the whole trajectory replays identically.
        let b = run(&cfg).unwrap();
        assert_eq!(a.deterministic_digest(), b.deterministic_digest());
    }

    #[test]
    fn degraded_fleet_spends_less_energy_per_frame() {
        let healthy = run(&small(4, 16, 2)).unwrap();
        let mut tight = small(4, 16, 2);
        tight.admission.capacity_j_per_round = 1e-4;
        tight.admission.degrade_lag = 0.5;
        tight.admission.rate_drop_lag = 1e6; // isolate the Intra_Th lever
        tight.admission.shed_lag = 1e6;
        let degraded = run(&tight).unwrap();
        let per_frame = |r: &ServeReport| r.total_encode_joules / r.total_frames as f64;
        assert!(
            per_frame(&degraded) < per_frame(&healthy),
            "the Intra_Th floor must cut per-frame energy: {} vs {}",
            per_frame(&degraded),
            per_frame(&healthy)
        );
    }

    #[test]
    fn rejects_bad_configs() {
        assert!(run(&small(0, 4, 1)).is_err());
        assert!(run(&small(1, 0, 1)).is_err());
        assert!(run(&small(1, 4, 0)).is_err());
        let mut bad = small(1, 1, 1);
        bad.plr = 1.5;
        assert!(run(&bad).is_err());
    }
}
