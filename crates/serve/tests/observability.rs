//! Observability-plane contract tests: the frame-indexed time-series
//! and the SLO alert stream are deterministic (byte-identical across
//! worker counts), a burst-kill incident drives the full
//! metric → alert → health-ledger → flight-recorder chain, and a fleet
//! that calms down after an alert walks the ledger back to recovered.

use pbpair_serve::{
    run_observed, run_traced_observed, standard_slos, ChaosEvent, ChaosFault, ChaosPlan,
    HealthState, ObservabilityConfig, ServeConfig,
};
use pbpair_telemetry::slo::AlertState;
use pbpair_telemetry::Telemetry;

/// A small fleet with a header-aligned whole-frame burst kill on every
/// session early in the run: residual frame loss saturates during the
/// burst, then the channel goes quiet so alerts clear and sessions heal.
fn burst_cfg(frames: usize) -> ServeConfig {
    let mut cfg = ServeConfig {
        sessions: 2,
        frames,
        workers: 2,
        seed: 919,
        plr: 0.01,
        corruption: 0.05,
        ..ServeConfig::default()
    };
    cfg.chaos = ChaosPlan::new(
        (0..cfg.sessions)
            .map(|id| ChaosEvent {
                session: id as u32,
                at_frame: 4,
                fault: ChaosFault::BurstKill { frames: 8 },
            })
            .collect(),
    )
    .expect("valid plan");
    cfg.observability = ObservabilityConfig {
        tick_every: 1,
        ring_capacity: 256,
        expose_port: None,
        slos: standard_slos(),
    };
    cfg
}

/// Observed run at `workers`, returning the deterministic series JSON
/// and the alert stream as comparable tuples.
fn observed(cfg: &ServeConfig, workers: usize) -> (String, Vec<(u64, String, &'static str)>) {
    let mut cfg = cfg.clone();
    cfg.workers = workers;
    let tel = Telemetry::with_shards(cfg.sessions);
    let (report, obs) = run_observed(&cfg, &tel).expect("valid config");
    let alerts = report
        .alerts
        .iter()
        .map(|a| (a.round, a.slo.clone(), a.state.label()))
        .collect();
    (obs.series.deterministic_json(), alerts)
}

#[test]
fn time_series_and_alert_stream_identical_across_worker_counts() {
    let cfg = burst_cfg(24);
    let (s1, a1) = observed(&cfg, 1);
    let (s2, a2) = observed(&cfg, 2);
    let (s8, a8) = observed(&cfg, 8);
    assert!(!a1.is_empty(), "the burst must produce alerts");
    assert_eq!(s1, s2, "series must not depend on worker count");
    assert_eq!(s2, s8, "series must not depend on worker count");
    assert_eq!(a1, a2, "alert stream must not depend on worker count");
    assert_eq!(a2, a8, "alert stream must not depend on worker count");
    // The ring actually carries per-round deltas of the slo counters.
    assert!(s1.contains("\"slo.frame_slots\":"));
}

#[test]
fn burst_kill_fires_residual_loss_and_dumps_the_flight_recorder() {
    let cfg = burst_cfg(24);
    let tel = Telemetry::with_shards(cfg.sessions);
    let (report, trace, obs) = run_traced_observed(&cfg, &tel).expect("valid config");

    // The SLO fires…
    let fired: Vec<_> = report
        .alerts
        .iter()
        .filter(|a| a.slo == "residual_loss" && a.state == AlertState::Firing)
        .collect();
    assert!(!fired.is_empty(), "burst kill must fire residual_loss");
    assert_eq!(report.alerts, obs.alerts, "report and plane must agree");

    // …escalates the health ledger with the new reason…
    let slo_reasons: Vec<_> = report
        .sessions
        .iter()
        .flat_map(|s| &s.health_log)
        .filter(|t| t.reason.starts_with("slo:"))
        .collect();
    assert!(
        slo_reasons
            .iter()
            .any(|t| t.reason == "slo:residual_loss" && t.to == HealthState::Degraded),
        "an slo:residual_loss transition must reach the ledger: {slo_reasons:?}"
    );

    // …and dumps the flight recorder with the dedicated reason.
    assert!(
        trace.dumps.iter().any(|d| d.reason == "slo"),
        "a firing alert must dump the flight recorder"
    );
    assert!(trace.deterministic_json().contains("\"reason\":\"slo\""));
}

#[test]
fn alerts_clear_and_sessions_recover_after_the_burst() {
    // Long calm tail: the burst ends at frame 12, leaving 36 quiet
    // rounds — enough for every burn window to drain and the watchdog's
    // fresh streak to reach its recovery threshold.
    let cfg = burst_cfg(48);
    let tel = Telemetry::with_shards(cfg.sessions);
    let (report, _) = run_observed(&cfg, &tel).expect("valid config");

    let residual: Vec<_> = report
        .alerts
        .iter()
        .filter(|a| a.slo == "residual_loss")
        .collect();
    assert!(
        residual.iter().any(|a| a.state == AlertState::Cleared),
        "residual_loss must clear once the channel calms: {residual:?}"
    );
    let fired_at = residual[0].round;
    let cleared_at = residual
        .iter()
        .find(|a| a.state == AlertState::Cleared)
        .unwrap()
        .round;
    assert!(cleared_at > fired_at);

    // Every session that the alert degraded walks back to recovered.
    for s in &report.sessions {
        assert!(
            s.health_log.iter().any(|t| t.reason.starts_with("slo:")),
            "session {} must carry an slo transition",
            s.id
        );
        assert_eq!(
            s.health,
            HealthState::Recovered,
            "session {} must heal after the burst: {:?}",
            s.id,
            s.health_log
        );
    }
}

#[test]
fn observed_run_requires_enabled_config_and_telemetry() {
    let cfg = ServeConfig::default();
    assert!(
        run_observed(&cfg, &Telemetry::with_shards(1)).is_err(),
        "fully-off observability must be rejected"
    );
    let mut on = burst_cfg(8);
    on.workers = 1;
    assert!(
        run_observed(&on, &Telemetry::disabled()).is_err(),
        "observability over a disabled registry must be rejected"
    );
}
