//! Chaos-fault acceptance: every injected fault class must demonstrably
//! walk the watchdog → degradation → recovery path, with the
//! [`HealthLedger`] recording the full state transition — and the whole
//! trajectory must stay deterministic at any worker count.

use pbpair_netsim::ChannelSpec;
use pbpair_serve::{
    run, ChaosEvent, ChaosFault, ChaosPlan, HealthState, ServeConfig, Session, SessionConfig,
    WatchdogConfig,
};

/// A session with a quiet baseline (near-lossless forward channel,
/// lossless feedback) so the only impairment is the injected fault.
fn quiet_config(seed: u64) -> SessionConfig {
    let mut cfg = SessionConfig::standard(0, seed);
    cfg.plr = 0.01;
    cfg.corruption = 0.0;
    cfg.feedback_plr = 0.0;
    cfg
}

/// Runs one session with the fault schedule and returns it for
/// inspection.
fn run_with_faults(cfg: SessionConfig, faults: Vec<(u64, ChaosFault)>, frames: u64) -> Session {
    let mut s = Session::new(cfg).expect("valid config");
    s.set_chaos(
        faults
            .into_iter()
            .map(|(at_frame, fault)| ChaosEvent {
                session: 0,
                at_frame,
                fault,
            })
            .collect(),
    );
    for _ in 0..frames {
        s.step_frame();
    }
    s
}

/// Asserts the ledger shows the complete escalation-and-recovery path:
/// healthy → degraded → quarantined → recovered, in frame order.
fn assert_full_path(s: &Session, fault: &str) {
    let log = s.health_ledger().transitions();
    let path: Vec<(HealthState, HealthState)> = log.iter().map(|t| (t.from, t.to)).collect();
    assert!(
        path.windows(1).next().is_some(),
        "{fault}: ledger must not be empty"
    );
    assert_eq!(
        path[0],
        (HealthState::Healthy, HealthState::Degraded),
        "{fault}: first transition must degrade: {log:?}"
    );
    assert_eq!(
        path[1],
        (HealthState::Degraded, HealthState::Quarantined),
        "{fault}: second transition must quarantine: {log:?}"
    );
    assert_eq!(
        path[2].1,
        HealthState::Recovered,
        "{fault}: third transition must recover: {log:?}"
    );
    assert!(
        log.windows(2).all(|w| w[0].frame < w[1].frame),
        "{fault}: transitions must be in frame order: {log:?}"
    );
    assert_eq!(
        s.health(),
        HealthState::Recovered,
        "{fault}: session must end recovered"
    );
}

#[test]
fn feedback_blackout_walks_the_full_recovery_path() {
    let s = run_with_faults(
        quiet_config(11),
        vec![(10, ChaosFault::FeedbackBlackout { frames: 60 })],
        120,
    );
    assert_full_path(&s, "feedback_blackout");
    let log = s.health_ledger().transitions();
    assert!(
        log[0].reason.starts_with("dark="),
        "blackout impairs via feedback darkness: {log:?}"
    );
    assert_eq!(s.stats().chaos_injected, 1);
}

#[test]
fn decoder_stall_walks_the_full_recovery_path() {
    let s = run_with_faults(
        quiet_config(12),
        vec![(10, ChaosFault::DecoderStall { frames: 12 })],
        60,
    );
    assert_full_path(&s, "decoder_stall");
    let log = s.health_ledger().transitions();
    assert_eq!(log[0].reason, "stall");
    assert_eq!(s.stats().frames_stalled, 12);
}

#[test]
fn burst_kill_walks_the_full_recovery_path() {
    let s = run_with_faults(
        quiet_config(13),
        vec![(10, ChaosFault::BurstKill { frames: 12 })],
        60,
    );
    assert_full_path(&s, "burst_kill");
    let log = s.health_ledger().transitions();
    assert!(
        log[0].reason.starts_with("starved="),
        "burst kill impairs via display starvation: {log:?}"
    );
    assert!(s.stats().frames_lost >= 12, "the kill window erases frames");
}

#[test]
fn mid_gop_channel_swap_walks_the_full_recovery_path() {
    // Swap to a saturated channel mid-stream, then hand back to a clean
    // one: the PLR estimate in flight is invalidated, the display
    // starves, and the watchdog must see the session back to recovered.
    let s = run_with_faults(
        quiet_config(14),
        vec![
            (
                10,
                ChaosFault::ChannelSwap {
                    spec: ChannelSpec::Uniform { plr: 1.0 },
                },
            ),
            (
                30,
                ChaosFault::ChannelSwap {
                    spec: ChannelSpec::Uniform { plr: 0.0 },
                },
            ),
        ],
        80,
    );
    assert_full_path(&s, "channel_swap");
    let log = s.health_ledger().transitions();
    assert!(
        log[0].reason.starts_with("starved="),
        "saturated swap impairs via display starvation: {log:?}"
    );
    assert_eq!(s.stats().chaos_injected, 2);
}

#[test]
fn quarantine_imposes_the_intra_th_floor() {
    let mut cfg = quiet_config(15);
    cfg.watchdog = WatchdogConfig {
        quarantine_floor_th: 0.97,
        ..WatchdogConfig::default()
    };
    let mut s = Session::new(cfg).unwrap();
    s.set_chaos(vec![ChaosEvent {
        session: 0,
        at_frame: 5,
        fault: ChaosFault::BurstKill { frames: 15 },
    }]);
    let mut floor_seen = false;
    for _ in 0..25 {
        let out = s.step_frame();
        if s.health() == HealthState::Quarantined {
            assert!(
                out.intra_th >= 0.97,
                "quarantine must force the Intra_Th floor, got {}",
                out.intra_th
            );
            floor_seen = true;
        }
    }
    assert!(floor_seen, "the session must actually reach quarantine");
}

#[test]
fn chaotic_fleet_replays_across_worker_counts() {
    // The whole point of deterministic chaos: a fleet under injected
    // faults must still produce byte-identical digests at any worker
    // count, with the health ledger included in the digest.
    let mut cfg = ServeConfig {
        sessions: 4,
        frames: 120,
        seed: 99,
        plr: 0.02,
        ..ServeConfig::default()
    };
    cfg.chaos = ChaosPlan::new(vec![
        ChaosEvent {
            session: 0,
            at_frame: 10,
            fault: ChaosFault::FeedbackBlackout { frames: 60 },
        },
        ChaosEvent {
            session: 2,
            at_frame: 12,
            fault: ChaosFault::BurstKill { frames: 12 },
        },
    ])
    .unwrap();

    let digest = |workers: usize| {
        let mut c = cfg.clone();
        c.workers = workers;
        run(&c).expect("valid config").deterministic_digest()
    };
    let one = digest(1);
    assert_eq!(one, digest(2), "digest must not depend on worker count");
    assert_eq!(one, digest(8), "digest must not depend on worker count");
    assert!(
        one.contains("health_transition"),
        "the ledger must be part of the deterministic digest:\n{one}"
    );

    let report = run(&cfg).unwrap();
    assert!(
        report.health.recovered >= 2,
        "both faulted sessions must end recovered: {:?}",
        report.health
    );
    assert_eq!(
        report.health.healthy
            + report.health.degraded
            + report.health.quarantined
            + report.health.recovered,
        4,
        "every session is tallied exactly once"
    );
    for id in [0usize, 2] {
        let log = &report.sessions[id].health_log;
        assert!(
            log.iter().any(|t| t.to == HealthState::Quarantined),
            "session {id} must have been quarantined: {log:?}"
        );
        assert_eq!(
            report.sessions[id].health,
            HealthState::Recovered,
            "session {id} must end recovered"
        );
    }
}
