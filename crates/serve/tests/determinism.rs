//! Deterministic-replay contract: the schedule-independent portion of a
//! [`ServeReport`] is a pure function of the [`ServeConfig`]. Running
//! the same fleet on 2 workers and on 8 workers must produce
//! byte-identical deterministic digests, even while admission control is
//! actively degrading, rate-dropping, and shedding sessions.

use pbpair_serve::{run, run_instrumented, ServeConfig};
use pbpair_telemetry::Telemetry;

fn digest(cfg: &ServeConfig, workers: usize) -> String {
    let mut cfg = cfg.clone();
    cfg.workers = workers;
    run(&cfg).expect("valid config").deterministic_digest()
}

/// The deterministic telemetry export for a run at `workers` workers.
fn telemetry_json(cfg: &ServeConfig, workers: usize) -> String {
    let mut cfg = cfg.clone();
    cfg.workers = workers;
    let tel = Telemetry::with_shards(cfg.sessions);
    run_instrumented(&cfg, &tel).expect("valid config");
    tel.report().deterministic_json()
}

#[test]
fn telemetry_counters_identical_across_worker_counts() {
    // The instrumented counters are sums of per-session deterministic
    // quantities; addition commutes, so the deterministic JSON must be
    // byte-identical for 1, 2 and 8 workers — even under overload.
    let mut cfg = ServeConfig {
        sessions: 6,
        frames: 12,
        seed: 77,
        ..ServeConfig::default()
    };
    cfg.admission.capacity_j_per_round = 1e-4;
    cfg.admission.degrade_lag = 1.0;
    cfg.admission.rate_drop_lag = 2.0;
    cfg.admission.shed_lag = 4.0;

    let one = telemetry_json(&cfg, 1);
    let two = telemetry_json(&cfg, 2);
    let eight = telemetry_json(&cfg, 8);
    assert_eq!(one, two, "telemetry must not depend on worker count");
    assert_eq!(two, eight, "telemetry must not depend on worker count");
    // Sanity: the export carries real counts, not an empty registry.
    assert!(one.contains("\"enc.frames\":"));
    assert!(one.contains("\"serve.rounds\":12"));
}

#[test]
fn instrumented_run_matches_uninstrumented_report() {
    // Instrumentation must observe, not perturb: the deterministic
    // digest of an instrumented run equals the plain run's.
    let cfg = ServeConfig {
        sessions: 4,
        frames: 8,
        seed: 31,
        ..ServeConfig::default()
    };
    let tel = Telemetry::with_shards(cfg.sessions);
    let instrumented = run_instrumented(&cfg, &tel)
        .expect("valid config")
        .deterministic_digest();
    assert_eq!(instrumented, digest(&cfg, cfg.workers));
}

#[test]
fn healthy_fleet_replays_across_worker_counts() {
    let cfg = ServeConfig {
        sessions: 6,
        frames: 12,
        seed: 77,
        ..ServeConfig::default()
    };
    let two = digest(&cfg, 2);
    let eight = digest(&cfg, 8);
    assert_eq!(two, eight, "digest must not depend on worker count");
    // And replaying the same worker count is also stable.
    assert_eq!(two, digest(&cfg, 2));
}

#[test]
fn overloaded_fleet_replays_across_worker_counts() {
    // Capacity far below demand so the full escalation path runs:
    // Intra_Th floor, stride frame drops, and at least one shed. All of
    // it must replay identically regardless of parallelism.
    let mut cfg = ServeConfig {
        sessions: 8,
        frames: 20,
        seed: 4242,
        ..ServeConfig::default()
    };
    cfg.admission.capacity_j_per_round = 1e-4;
    cfg.admission.degrade_lag = 1.0;
    cfg.admission.rate_drop_lag = 2.0;
    cfg.admission.shed_lag = 4.0;

    let two = digest(&cfg, 2);
    let eight = digest(&cfg, 8);
    assert_eq!(two, eight);
    assert!(
        two.contains("shed=") && !two.contains("shed=0 "),
        "test must actually exercise shedding: {}",
        two.lines().next().unwrap_or("")
    );
}

#[test]
fn fec_fleet_replays_across_worker_counts() {
    let cfg = ServeConfig {
        sessions: 4,
        frames: 10,
        seed: 9,
        plr: 0.15,
        fec_group: Some(4),
        mtu: 300, // small MTU → many fragments → FEC actually exercised
        ..ServeConfig::default()
    };
    assert_eq!(digest(&cfg, 2), digest(&cfg, 8));
}
