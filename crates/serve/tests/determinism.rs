//! Deterministic-replay contract: the schedule-independent portion of a
//! [`ServeReport`] is a pure function of the [`ServeConfig`]. Running
//! the same fleet on 2 workers and on 8 workers must produce
//! byte-identical deterministic digests, even while admission control is
//! actively degrading, rate-dropping, and shedding sessions.

use pbpair_netsim::FecSpec;
use pbpair_serve::{run, run_instrumented, RedundancyConfig, ServeConfig};
use pbpair_telemetry::Telemetry;

fn digest(cfg: &ServeConfig, workers: usize) -> String {
    let mut cfg = cfg.clone();
    cfg.workers = workers;
    run(&cfg).expect("valid config").deterministic_digest()
}

/// The deterministic telemetry export for a run at `workers` workers.
fn telemetry_json(cfg: &ServeConfig, workers: usize) -> String {
    let mut cfg = cfg.clone();
    cfg.workers = workers;
    let tel = Telemetry::with_shards(cfg.sessions);
    run_instrumented(&cfg, &tel).expect("valid config");
    tel.report().deterministic_json()
}

#[test]
fn telemetry_counters_identical_across_worker_counts() {
    // The instrumented counters are sums of per-session deterministic
    // quantities; addition commutes, so the deterministic JSON must be
    // byte-identical for 1, 2 and 8 workers — even under overload.
    let mut cfg = ServeConfig {
        sessions: 6,
        frames: 12,
        seed: 77,
        ..ServeConfig::default()
    };
    cfg.admission.capacity_j_per_round = 1e-4;
    cfg.admission.degrade_lag = 1.0;
    cfg.admission.rate_drop_lag = 2.0;
    cfg.admission.shed_lag = 4.0;

    let one = telemetry_json(&cfg, 1);
    let two = telemetry_json(&cfg, 2);
    let eight = telemetry_json(&cfg, 8);
    assert_eq!(one, two, "telemetry must not depend on worker count");
    assert_eq!(two, eight, "telemetry must not depend on worker count");
    // Sanity: the export carries real counts, not an empty registry.
    assert!(one.contains("\"enc.frames\":"));
    assert!(one.contains("\"serve.rounds\":12"));
}

#[test]
fn instrumented_run_matches_uninstrumented_report() {
    // Instrumentation must observe, not perturb: the deterministic
    // digest of an instrumented run equals the plain run's.
    let cfg = ServeConfig {
        sessions: 4,
        frames: 8,
        seed: 31,
        ..ServeConfig::default()
    };
    let tel = Telemetry::with_shards(cfg.sessions);
    let instrumented = run_instrumented(&cfg, &tel)
        .expect("valid config")
        .deterministic_digest();
    assert_eq!(instrumented, digest(&cfg, cfg.workers));
}

#[test]
fn healthy_fleet_replays_across_worker_counts() {
    let cfg = ServeConfig {
        sessions: 6,
        frames: 12,
        seed: 77,
        ..ServeConfig::default()
    };
    let two = digest(&cfg, 2);
    let eight = digest(&cfg, 8);
    assert_eq!(two, eight, "digest must not depend on worker count");
    // And replaying the same worker count is also stable.
    assert_eq!(two, digest(&cfg, 2));
}

#[test]
fn overloaded_fleet_replays_across_worker_counts() {
    // Capacity far below demand so the full escalation path runs:
    // Intra_Th floor, stride frame drops, and at least one shed. All of
    // it must replay identically regardless of parallelism.
    let mut cfg = ServeConfig {
        sessions: 8,
        frames: 20,
        seed: 4242,
        ..ServeConfig::default()
    };
    cfg.admission.capacity_j_per_round = 1e-4;
    cfg.admission.degrade_lag = 1.0;
    cfg.admission.rate_drop_lag = 2.0;
    cfg.admission.shed_lag = 4.0;

    let two = digest(&cfg, 2);
    let eight = digest(&cfg, 8);
    assert_eq!(two, eight);
    assert!(
        two.contains("shed=") && !two.contains("shed=0 "),
        "test must actually exercise shedding: {}",
        two.lines().next().unwrap_or("")
    );
}

#[test]
fn fec_fleet_replays_across_worker_counts() {
    let cfg = ServeConfig {
        sessions: 4,
        frames: 10,
        seed: 9,
        plr: 0.15,
        fec_group: Some(4),
        mtu: 300, // small MTU → many fragments → FEC actually exercised
        ..ServeConfig::default()
    };
    assert_eq!(digest(&cfg, 2), digest(&cfg, 8));
}

#[test]
fn adaptive_fec_fleet_replays_across_worker_counts() {
    // The joint controller re-decides (Intra_Th, parity) every GOP from
    // fed-back channel state. All of that state is per-session, so the
    // digest — including the fec sub-lines — must be byte-identical at
    // 1, 2 and 8 workers.
    let mut cfg = ServeConfig {
        sessions: 4,
        frames: 24,
        seed: 2005,
        plr: 0.12,
        mtu: 300,
        ..ServeConfig::default()
    };
    cfg.redundancy = Some(RedundancyConfig {
        budget_ratio: 1.4,
        gop: 6,
        ..RedundancyConfig::new(FecSpec::Rs { k: 4, r: 2 })
    });
    let one = digest(&cfg, 1);
    let two = digest(&cfg, 2);
    let eight = digest(&cfg, 8);
    assert_eq!(one, two, "digest must not depend on worker count");
    assert_eq!(two, eight, "digest must not depend on worker count");
    assert!(
        one.contains("fec session="),
        "adaptive run must surface fec sub-lines in the digest:\n{one}"
    );
}

#[test]
fn fec_counters_merge_commutatively_across_worker_counts() {
    // fec.* telemetry counters are sums of per-session FecOps deltas;
    // the shard merge must commute, so the deterministic JSON export is
    // identical no matter how sessions were spread over workers.
    let cfg = ServeConfig {
        sessions: 6,
        frames: 16,
        seed: 123,
        plr: 0.18,
        mtu: 300,
        fec: Some(FecSpec::Rs { k: 4, r: 2 }),
        ..ServeConfig::default()
    };
    let one = telemetry_json(&cfg, 1);
    let two = telemetry_json(&cfg, 2);
    let eight = telemetry_json(&cfg, 8);
    assert_eq!(one, two, "fec telemetry must not depend on worker count");
    assert_eq!(two, eight, "fec telemetry must not depend on worker count");
    assert!(one.contains("\"fec.parity_bytes\":"));
    assert!(one.contains("\"fec.blocks_repaired\":"));
}
