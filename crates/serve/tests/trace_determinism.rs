//! Tracing contract tests: the causal-trace report (blast radii,
//! calibration, incident dumps) is schedule-independent — byte-identical
//! for any worker count — and attaching a tracer never perturbs the
//! deterministic outcome of the run itself.

use pbpair_serve::{run, run_traced, FleetTrace, ServeConfig};
use pbpair_telemetry::Telemetry;

fn overload_cfg() -> ServeConfig {
    let mut cfg = ServeConfig {
        sessions: 6,
        frames: 12,
        seed: 77,
        plr: 0.25,
        mtu: 400, // multi-fragment frames → real packet-level losses
        ..ServeConfig::default()
    };
    // Starvation-level capacity so the full escalation path runs while
    // tracing: Intra_Th floor, stride frame drops, and shedding.
    cfg.admission.capacity_j_per_round = 1e-4;
    cfg.admission.degrade_lag = 1.0;
    cfg.admission.rate_drop_lag = 2.0;
    cfg.admission.shed_lag = 4.0;
    cfg
}

fn traced(cfg: &ServeConfig, workers: usize) -> (String, FleetTrace) {
    let mut cfg = cfg.clone();
    cfg.workers = workers;
    let (report, trace) = run_traced(&cfg, &Telemetry::disabled()).expect("valid config");
    (report.deterministic_digest(), trace)
}

#[test]
fn trace_report_identical_across_worker_counts() {
    let cfg = overload_cfg();
    let (_, one) = traced(&cfg, 1);
    let (_, two) = traced(&cfg, 2);
    let (_, eight) = traced(&cfg, 8);
    let a = one.deterministic_json();
    let b = two.deterministic_json();
    let c = eight.deterministic_json();
    assert_eq!(a, b, "trace report must not depend on worker count");
    assert_eq!(b, c, "trace report must not depend on worker count");
    // Sanity: the report carries real content, not empty sections.
    assert!(one.calibration.count > 0, "calibration must score MBs");
    assert!(
        one.sessions.iter().any(|s| !s.analysis.blasts.is_empty()),
        "a 10% PLR fleet must record loss events with blast radii"
    );
    assert!(
        one.dumps.iter().any(|d| d.reason == "degraded"),
        "overload must trigger degrade dumps"
    );
}

#[test]
fn calibration_json_is_integer_only_and_merges_in_id_order() {
    let cfg = overload_cfg();
    let (_, trace) = traced(&cfg, 2);
    let json = trace.calibration.deterministic_json();
    assert!(
        !json.contains('.'),
        "calibration JSON must be fixed-point integers: {json}"
    );
    // The fleet score is the id-ordered merge of the per-session ones.
    let mut merged = pbpair_trace::Calibration::default();
    for s in &trace.sessions {
        merged.merge(&s.analysis.calibration);
    }
    assert_eq!(merged.deterministic_json(), json);
}

#[test]
fn tracing_does_not_perturb_the_run() {
    let cfg = ServeConfig {
        sessions: 4,
        frames: 8,
        seed: 31,
        ..ServeConfig::default()
    };
    let plain = run(&cfg).expect("valid config").deterministic_digest();
    let (traced_digest, _) = traced(&cfg, cfg.workers);
    assert_eq!(traced_digest, plain, "tracers must observe, not perturb");
}

/// A healthy (no-overload) fleet under heavy channel stress: losses,
/// mid-frame corruption, multi-fragment frames. This is the config the
/// attribution and resync-dump properties are checked against.
fn lossy_cfg() -> ServeConfig {
    ServeConfig {
        sessions: 4,
        frames: 20,
        seed: 77,
        plr: 0.20,
        corruption: 0.6,
        mtu: 300,
        ..ServeConfig::default()
    }
}

#[test]
fn provenance_dags_are_acyclic_and_bad_mbs_are_attributed() {
    let (_, trace) = traced(&lossy_cfg(), 2);
    for s in &trace.sessions {
        assert!(s.analysis.dag.is_acyclic(), "session {} DAG cyclic", s.id);
        // Every decoder-reported bad MB must be reachable from at least
        // one recorded transport event.
        for (frame, bad) in &s.analysis.decoder_bad {
            let reach = s.analysis.loss_reach.get(frame);
            for (mb, &is_bad) in bad.iter().enumerate() {
                if is_bad {
                    let covered = reach.is_some_and(|r| r[mb]);
                    assert!(
                        covered,
                        "session {} frame {frame} MB {mb} bad but unattributed",
                        s.id
                    );
                }
            }
        }
    }
    // Mid-frame corruption at this intensity must fire resync dumps.
    assert!(trace.dumps.iter().any(|d| d.reason == "resync"));
}

#[test]
fn chrome_trace_export_is_well_formed() {
    let (_, trace) = traced(&lossy_cfg(), 2);
    let json = trace.chrome_trace_json();
    assert!(json.starts_with("{\"traceEvents\":["));
    assert!(json.ends_with("]}"));
    assert!(json.contains("\"ph\":\"i\""), "instant events expected");
    assert!(json.contains("\"name\":\"packet_lost\""));
}
