//! The joint RDE controller layered over the *PBPAIR refresh policy*
//! (the paper's scheme, not the natural encoder): the zero-λ gate keeps
//! PBPAIR's probability-based decisions bit-identical, and active λ
//! points reprice those decisions exactly as they do the natural ones.
//! This is the cross-crate half of the metamorphic battery — the codec
//! suite proves the λ-plane properties under `NaturalPolicy`; here the
//! baseline candidates come from PBPAIR's correctness-matrix early
//! decisions and σ-biased motion search.

use pbpair_repro::codec::policy::RefreshPolicy;
use pbpair_repro::codec::{Encoder, EncoderConfig, MbMode, RdeConfig};
use pbpair_repro::media::synth::SyntheticSequence;
use pbpair_repro::media::VideoFormat;
use pbpair_repro::schemes::{PbpairConfig, PbpairPolicy};

fn encode_pbpair(rde: Option<RdeConfig>, frames: usize) -> Vec<(Vec<u8>, Vec<MbMode>, u64)> {
    let mut enc = Encoder::new(EncoderConfig {
        rde,
        ..EncoderConfig::default()
    });
    let mut policy = PbpairPolicy::new(VideoFormat::QCIF, PbpairConfig::default())
        .expect("default PBPAIR config is valid");
    let mut seq = SyntheticSequence::foreman_class(2005);
    (0..frames)
        .map(|_| {
            let e = enc.encode_frame(&seq.next_frame(), &mut policy as &mut dyn RefreshPolicy);
            (e.data, e.mb_modes, e.stats.bits)
        })
        .collect()
}

/// `rde: None` and `rde: Some(zero λ)` produce byte-identical PBPAIR
/// streams over eight frames: the gate bypasses trial coding entirely,
/// so the paper's probability-based refresh decisions — including the
/// σ-biased search and the early-intra path — are untouched.
#[test]
fn zero_lambda_reproduces_pbpair_decisions_bit_identically() {
    let plain = encode_pbpair(None, 8);
    let gated = encode_pbpair(Some(RdeConfig::default()), 8);
    for (i, (p, g)) in plain.iter().zip(&gated).enumerate() {
        assert_eq!(p.0, g.0, "frame {i}: PBPAIR bitstream diverged at zero λ");
        assert_eq!(p.1, g.1, "frame {i}: PBPAIR mode map diverged at zero λ");
    }
}

/// An active λ1 reprices PBPAIR's decisions without breaking the rate
/// direction: the P-frame bits under a heavy bit price never exceed the
/// unpriced PBPAIR stream's, and the saturated price strictly reduces
/// them — i.e. the controller genuinely perturbs the scheme's
/// `Intra_Th`-style choices rather than being inert on top of PBPAIR.
#[test]
fn rate_price_never_inflates_pbpair_frames() {
    let plain = encode_pbpair(None, 4);
    let priced = encode_pbpair(Some(RdeConfig::rate_weighted(u32::MAX)), 4);
    let plain_bits: u64 = plain.iter().skip(1).map(|f| f.2).sum();
    let priced_bits: u64 = priced.iter().skip(1).map(|f| f.2).sum();
    assert!(
        priced_bits < plain_bits,
        "saturated λ1 left PBPAIR P-frame bits unchanged ({plain_bits})"
    );
}

/// Saturated λ2 reaches the all-skip floor even against PBPAIR's forced
/// intra refreshes: the controller may overrule the policy's baseline
/// when the energy price demands it, which is exactly the authority the
/// joint control design gives it.
#[test]
fn saturated_energy_price_overrules_pbpair_refreshes() {
    let clip = encode_pbpair(Some(RdeConfig::energy_weighted(u32::MAX)), 4);
    for (i, (_, modes, _)) in clip.iter().enumerate().skip(1) {
        assert!(
            modes.iter().all(|&m| m == MbMode::Skip),
            "frame {i}: PBPAIR refresh survived a saturated energy price"
        );
    }
}
