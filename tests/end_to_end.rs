//! Cross-crate integration: the full encode → packetize → channel →
//! decode → measure path, for every scheme, across crate boundaries.

use pbpair_repro::codec::{Decoder, Encoder, EncoderConfig, NaturalPolicy};
use pbpair_repro::eval::pipeline::{run, LossSpec, RunConfig, SequenceSpec};
use pbpair_repro::media::metrics::psnr_y;
use pbpair_repro::media::synth::{MotionClass, SyntheticSequence};
use pbpair_repro::media::VideoFormat;
use pbpair_repro::netsim::{LossyChannel, NoLoss, Packetizer};
use pbpair_repro::schemes::{PbpairConfig, SchemeSpec};

fn all_schemes() -> Vec<SchemeSpec> {
    vec![
        SchemeSpec::No,
        SchemeSpec::Gop(4),
        SchemeSpec::Air(12),
        SchemeSpec::Pgop(2),
        SchemeSpec::Pbpair(PbpairConfig::default()),
    ]
}

#[test]
fn every_scheme_survives_the_full_pipeline_losslessly() {
    for scheme in all_schemes() {
        let result = run(&RunConfig {
            scheme,
            sequence: SequenceSpec::Synthetic {
                class: MotionClass::MediumForeman,
                seed: 1,
            },
            frames: 10,
            encoder: EncoderConfig::default(),
            loss: LossSpec::None,
            mtu: 1400,
        })
        .unwrap();
        assert_eq!(result.quality.frames(), 10, "{}", result.scheme_label);
        assert!(
            result.quality.average_psnr() > 28.0,
            "{}: lossless PSNR {}",
            result.scheme_label,
            result.quality.average_psnr()
        );
        assert_eq!(result.channel.frames_lost, 0);
        assert_eq!(result.ops.frames, 10);
    }
}

#[test]
fn every_scheme_degrades_gracefully_under_loss() {
    for scheme in all_schemes() {
        let clean = run(&RunConfig {
            scheme,
            sequence: SequenceSpec::Synthetic {
                class: MotionClass::LowAkiyo,
                seed: 2,
            },
            frames: 15,
            encoder: EncoderConfig::default(),
            loss: LossSpec::None,
            mtu: 1400,
        })
        .unwrap();
        let lossy = run(&RunConfig {
            scheme,
            sequence: SequenceSpec::Synthetic {
                class: MotionClass::LowAkiyo,
                seed: 2,
            },
            frames: 15,
            encoder: EncoderConfig::default(),
            loss: LossSpec::Uniform { rate: 0.2, seed: 3 },
            mtu: 1400,
        })
        .unwrap();
        assert!(lossy.channel.frames_lost > 0);
        assert!(
            lossy.quality.average_psnr() <= clean.quality.average_psnr(),
            "{}: loss cannot improve quality",
            clean.scheme_label
        );
        // Encoded bits are channel-independent (no rate feedback).
        assert_eq!(clean.frame_bits, lossy.frame_bits);
    }
}

#[test]
fn decoder_tracks_encoder_reconstruction_through_real_packets() {
    // Tiny MTU forces multi-fragment frames; the decoder must still be
    // bit-identical to the encoder's reconstruction loop.
    let mut encoder = Encoder::new(EncoderConfig::default());
    let mut decoder = Decoder::new(VideoFormat::QCIF);
    let mut policy = NaturalPolicy::new();
    let mut packetizer = Packetizer::new(100);
    let mut channel = LossyChannel::new(Box::new(NoLoss));
    let mut seq = SyntheticSequence::garden_class(4);
    for _ in 0..6 {
        let frame = seq.next_frame();
        let encoded = encoder.encode_frame(&frame, &mut policy);
        let packets = packetizer.packetize(encoded.index, &encoded.data);
        assert!(
            packets.len() > 1,
            "garden frames must exceed a 100-byte MTU"
        );
        let bytes = channel.transmit_frame(&packets).expect("lossless channel");
        let (decoded, info) = decoder.decode_frame(&bytes).unwrap();
        assert_eq!(&decoded, encoder.reconstructed());
        assert_eq!(info.mb_modes, encoded.mb_modes);
    }
}

#[test]
fn pipeline_is_deterministic_across_schemes_and_seeds() {
    for scheme in all_schemes() {
        let cfg = RunConfig {
            scheme,
            sequence: SequenceSpec::Synthetic {
                class: MotionClass::HighGarden,
                seed: 77,
            },
            frames: 8,
            encoder: EncoderConfig::default(),
            loss: LossSpec::Uniform {
                rate: 0.15,
                seed: 5,
            },
            mtu: 500,
        };
        let a = run(&cfg).unwrap();
        let b = run(&cfg).unwrap();
        assert_eq!(a.quality.psnr_series(), b.quality.psnr_series());
        assert_eq!(a.frame_bits, b.frame_bits);
        assert_eq!(a.ops, b.ops);
        assert_eq!(a.channel, b.channel);
    }
}

#[test]
fn concealment_then_recovery_round_trip() {
    // Lose one mid-stream frame and verify the decoder output equals the
    // previous frame (copy concealment), then keeps decoding.
    let mut encoder = Encoder::new(EncoderConfig::default());
    let mut decoder = Decoder::new(VideoFormat::QCIF);
    let mut policy = NaturalPolicy::new();
    let mut seq = SyntheticSequence::foreman_class(6);
    let mut last_shown = None;
    for i in 0..5u64 {
        let frame = seq.next_frame();
        let encoded = encoder.encode_frame(&frame, &mut policy);
        let shown = if i == 2 {
            let concealed = decoder.conceal_lost_frame();
            assert_eq!(Some(concealed.clone()), last_shown, "copy concealment");
            concealed
        } else {
            decoder.decode_frame(&encoded.data).unwrap().0
        };
        // Quality of the concealed frame is worse but bounded (consecutive
        // frames are correlated).
        let p = psnr_y(&frame, &shown);
        assert!(p > 15.0, "frame {i}: psnr {p}");
        last_shown = Some(shown);
    }
}
