//! Feature-interaction matrix: the optional codec features (half-pel
//! motion, in-loop deblocking, rate control) must compose with each other
//! and with every refresh scheme without breaking the bit-exact
//! encoder/decoder contract.

use pbpair_repro::codec::{Decoder, Encoder, EncoderConfig, Qp, RateController, RefreshPolicy};
use pbpair_repro::media::metrics::psnr_y;
use pbpair_repro::media::synth::SyntheticSequence;
use pbpair_repro::media::VideoFormat;
use pbpair_repro::schemes::{build_policy, PbpairConfig, SchemeSpec};

fn roundtrip(cfg: EncoderConfig, policy: &mut dyn RefreshPolicy, rate: Option<u64>) -> f64 {
    let mut enc = Encoder::new(cfg);
    let mut dec = Decoder::new(cfg.format);
    let mut rc = rate.map(|bps| RateController::new(bps, 15.0, cfg.qp));
    let mut seq = SyntheticSequence::foreman_class(44);
    let mut worst_psnr = f64::INFINITY;
    for _ in 0..8 {
        if let Some(rc) = rc.as_mut() {
            enc.set_qp(rc.qp());
        }
        let frame = seq.next_frame();
        let e = enc.encode_frame(&frame, policy);
        if let Some(rc) = rc.as_mut() {
            rc.frame_encoded(e.stats.bits);
        }
        let (decoded, info) = dec.decode_frame(&e.data).expect("valid stream");
        assert_eq!(
            &decoded,
            enc.reconstructed(),
            "bit-exactness violated by feature combination {cfg:?}"
        );
        assert_eq!(info.mb_modes, e.mb_modes);
        worst_psnr = worst_psnr.min(psnr_y(&frame, &decoded));
    }
    worst_psnr
}

#[test]
fn all_feature_combinations_roundtrip_bit_exactly() {
    for half_pel in [false, true] {
        for deblock in [false, true] {
            for rate in [None, Some(64_000u64)] {
                let cfg = EncoderConfig {
                    half_pel,
                    deblock,
                    ..EncoderConfig::default()
                };
                let mut policy = build_policy(
                    SchemeSpec::Pbpair(PbpairConfig::default()),
                    VideoFormat::QCIF,
                )
                .unwrap();
                let worst = roundtrip(cfg, policy.as_mut(), rate);
                assert!(
                    worst > 25.0,
                    "half_pel={half_pel} deblock={deblock} rate={rate:?}: worst PSNR {worst}"
                );
            }
        }
    }
}

#[test]
fn every_scheme_composes_with_the_full_feature_set() {
    let cfg = EncoderConfig {
        half_pel: true,
        deblock: true,
        qp: Qp::new(10).unwrap(),
        ..EncoderConfig::default()
    };
    for spec in [
        SchemeSpec::No,
        SchemeSpec::Gop(4),
        SchemeSpec::Air(12),
        SchemeSpec::Pgop(2),
        SchemeSpec::Pbpair(PbpairConfig::default()),
    ] {
        let mut policy = build_policy(spec, VideoFormat::QCIF).unwrap();
        let worst = roundtrip(cfg, policy.as_mut(), Some(96_000));
        assert!(worst > 24.0, "{}: worst PSNR {worst}", spec.name());
    }
}

#[test]
fn rate_control_reacts_to_gop_i_frames() {
    // The controller must raise QP after each I-frame overshoot and relax
    // afterwards — visible as QP oscillation with period N+1.
    let mut enc = Encoder::new(EncoderConfig::default());
    let mut rc = RateController::new(48_000, 15.0, Qp::new(8).unwrap());
    let mut policy = build_policy(SchemeSpec::Gop(4), VideoFormat::QCIF).unwrap();
    let mut seq = SyntheticSequence::foreman_class(2);
    let mut qps = Vec::new();
    for _ in 0..20 {
        enc.set_qp(rc.qp());
        qps.push(rc.qp().get());
        let e = enc.encode_frame(&seq.next_frame(), policy.as_mut());
        rc.frame_encoded(e.stats.bits);
    }
    // QP right after an I-frame (frames 1, 6, 11, 16) must not be lower
    // than right before it.
    for i in [6usize, 11, 16] {
        assert!(
            qps[i] >= qps[i - 1],
            "I-frame overshoot must not lower QP: {:?}",
            &qps
        );
    }
    // The controller must actually move at least once.
    assert!(qps.iter().any(|&q| q != qps[0]), "QP never moved: {qps:?}");
}
