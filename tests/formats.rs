//! Format generality: the codec and the schemes are not QCIF-specific.
//! The paper evaluates on QCIF only; these tests exercise SQCIF, CIF and
//! a custom 64×48 format end to end.

use pbpair_repro::codec::{Decoder, Encoder, EncoderConfig, NaturalPolicy};
use pbpair_repro::media::metrics::psnr_y;
use pbpair_repro::media::synth::{SynthParams, SyntheticSequence};
use pbpair_repro::media::VideoFormat;
use pbpair_repro::schemes::{AirPolicy, PbpairConfig, PbpairPolicy, PgopPolicy};

fn roundtrip_at(format: VideoFormat) {
    let cfg = EncoderConfig {
        format,
        ..EncoderConfig::default()
    };
    let mut enc = Encoder::new(cfg);
    let mut dec = Decoder::new(format);
    let mut policy = NaturalPolicy::new();
    let mut seq = SyntheticSequence::new(format, SynthParams::foreman(), 9);
    for i in 0..4 {
        let f = seq.next_frame();
        let e = enc.encode_frame(&f, &mut policy);
        let (decoded, _) = dec.decode_frame(&e.data).unwrap();
        assert_eq!(&decoded, enc.reconstructed(), "{format}: drift at {i}");
        assert!(
            psnr_y(&f, &decoded) > 26.0,
            "{format}: PSNR {}",
            psnr_y(&f, &decoded)
        );
    }
}

#[test]
fn sqcif_roundtrips() {
    roundtrip_at(VideoFormat::SQCIF);
}

#[test]
fn cif_roundtrips() {
    roundtrip_at(VideoFormat::CIF);
}

#[test]
fn tiny_custom_format_roundtrips() {
    roundtrip_at(VideoFormat::custom(64, 48).unwrap());
}

#[test]
fn schemes_scale_to_other_formats() {
    // PBPAIR / PGOP / AIR derive their geometry from the format, not
    // from QCIF constants.
    let format = VideoFormat::CIF; // 22×18 macroblocks
    let cfg = EncoderConfig {
        format,
        ..EncoderConfig::default()
    };
    let mut seq = SyntheticSequence::new(format, SynthParams::foreman(), 4);
    let frames: Vec<_> = (0..4).map(|_| seq.next_frame()).collect();

    let mut pbpair = PbpairPolicy::new(format, PbpairConfig::default()).unwrap();
    let mut pgop = PgopPolicy::new(format, 4);
    let mut air = AirPolicy::new(format, 50);
    for policy in [
        &mut pbpair as &mut dyn pbpair_repro::codec::RefreshPolicy,
        &mut pgop,
        &mut air,
    ] {
        let mut enc = Encoder::new(cfg);
        for f in &frames {
            let e = enc.encode_frame(f, policy);
            assert_eq!(e.stats.total_mbs(), 22 * 18);
        }
    }
    // PGOP at CIF refreshes 4 columns × 18 rows per P-frame.
    let mut enc = Encoder::new(cfg);
    let mut pgop = PgopPolicy::new(format, 4);
    let _ = enc.encode_frame(&frames[0], &mut pgop);
    let e = enc.encode_frame(&frames[1], &mut pgop);
    assert!(e.stats.intra_mbs >= 4 * 18);
}

#[test]
fn half_pel_roundtrips_at_cif() {
    let format = VideoFormat::CIF;
    let cfg = EncoderConfig {
        format,
        half_pel: true,
        ..EncoderConfig::default()
    };
    let mut enc = Encoder::new(cfg);
    let mut dec = Decoder::new(format);
    let mut policy = NaturalPolicy::new();
    let mut seq = SyntheticSequence::new(format, SynthParams::garden(), 2);
    for _ in 0..3 {
        let f = seq.next_frame();
        let e = enc.encode_frame(&f, &mut policy);
        let (decoded, _) = dec.decode_frame(&e.data).unwrap();
        assert_eq!(&decoded, enc.reconstructed());
    }
}
