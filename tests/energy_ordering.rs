//! Integration tests of the paper's energy claims under the paper
//! configuration (full-search motion estimation): the scheme energy
//! ordering, ME-skip accounting, and device-profile scaling.

use pbpair_repro::codec::EncoderConfig;
use pbpair_repro::energy::{EnergyModel, IPAQ_H5555, ZAURUS_SL5600};
use pbpair_repro::eval::pipeline::{calibrate_intra_th, run, LossSpec, RunConfig, SequenceSpec};
use pbpair_repro::media::synth::MotionClass;
use pbpair_repro::schemes::{PbpairConfig, SchemeSpec};

const FRAMES: usize = 24;

fn cell(scheme: SchemeSpec) -> pbpair_repro::eval::RunResult {
    run(&RunConfig {
        scheme,
        sequence: SequenceSpec::Synthetic {
            class: MotionClass::MediumForeman,
            seed: 2005,
        },
        frames: FRAMES,
        encoder: EncoderConfig::paper(),
        loss: LossSpec::Uniform { rate: 0.1, seed: 7 },
        mtu: 1400,
    })
    .unwrap()
}

#[test]
fn scheme_energy_ordering_matches_the_paper() {
    // Size-match PBPAIR to PGOP-3 as in Figure 5, then check the Figure
    // 5(d) ordering: PBPAIR < PGOP ≤ GOP < NO ≤ AIR.
    let seq = SequenceSpec::Synthetic {
        class: MotionClass::MediumForeman,
        seed: 2005,
    };
    let pgop = cell(SchemeSpec::Pgop(3));
    let th = calibrate_intra_th(
        PbpairConfig::default(),
        seq,
        EncoderConfig::paper(),
        FRAMES,
        pgop.total_bytes,
    )
    .unwrap();
    let pbpair = cell(SchemeSpec::Pbpair(PbpairConfig {
        intra_th: th,
        ..PbpairConfig::default()
    }));
    let no = cell(SchemeSpec::No);
    let gop = cell(SchemeSpec::Gop(3));
    let air = cell(SchemeSpec::Air(24));

    let model = EnergyModel::new(IPAQ_H5555);
    let e = |r: &pbpair_repro::eval::RunResult| r.encoding_energy(&model).get();

    assert!(
        e(&pbpair) < e(&gop),
        "PBPAIR {} must beat GOP {}",
        e(&pbpair),
        e(&gop)
    );
    assert!(
        e(&pbpair) < e(&air),
        "PBPAIR {} must beat AIR {}",
        e(&pbpair),
        e(&air)
    );
    assert!(
        e(&pbpair) <= e(&pgop) * 1.02,
        "PBPAIR {} must not exceed PGOP {}",
        e(&pbpair),
        e(&pgop)
    );
    assert!(e(&gop) < e(&no), "GOP {} must beat NO {}", e(&gop), e(&no));
    // AIR pays full ME on every P-frame MB: essentially NO-level energy
    // plus the extra intra coding.
    assert!(
        e(&air) > e(&no) * 0.97,
        "AIR {} should be at NO level {}",
        e(&air),
        e(&no)
    );
    // The headline direction, at reduced scale: a clear double-digit gap
    // vs AIR.
    let saving = (e(&air) - e(&pbpair)) / e(&air);
    assert!(
        saving > 0.10,
        "PBPAIR must save >10% vs AIR at matched size: {saving}"
    );
}

#[test]
fn me_invocations_explain_the_energy_gaps() {
    let no = cell(SchemeSpec::No);
    let air = cell(SchemeSpec::Air(24));
    let pgop = cell(SchemeSpec::Pgop(3));
    let pbpair = cell(SchemeSpec::Pbpair(PbpairConfig::default()));

    // AIR searches exactly as often as NO (decision after ME).
    assert_eq!(air.ops.me_invocations, no.ops.me_invocations);
    // PGOP skips the swept columns.
    assert!(pgop.ops.me_invocations < no.ops.me_invocations);
    // PBPAIR skips its below-threshold macroblocks.
    assert!(pbpair.ops.me_invocations < no.ops.me_invocations);
    // Under full search, energy ranks exactly as ME invocations do.
    let model = EnergyModel::new(IPAQ_H5555);
    let pairs = [(&no, &pgop), (&air, &pbpair), (&no, &pbpair)];
    for (hi, lo) in pairs {
        assert!(
            hi.ops.me_invocations > lo.ops.me_invocations
                && hi.encoding_energy(&model) > lo.encoding_energy(&model),
            "ME ordering must imply energy ordering"
        );
    }
}

#[test]
fn full_search_makes_me_the_overwhelming_cost() {
    let no = cell(SchemeSpec::No);
    let b = EnergyModel::new(IPAQ_H5555).breakdown(&no.ops);
    assert!(
        b.me_fraction() > 0.85,
        "paper-config ME fraction {}",
        b.me_fraction()
    );
}

#[test]
fn both_devices_agree_on_the_ordering() {
    let no = cell(SchemeSpec::No);
    let pbpair = cell(SchemeSpec::Pbpair(PbpairConfig::default()));
    for profile in [IPAQ_H5555, ZAURUS_SL5600] {
        let model = EnergyModel::new(profile);
        assert!(
            pbpair.encoding_energy(&model) < no.encoding_energy(&model),
            "{}",
            profile.name
        );
    }
    // Zaurus compute is cheaper per op, so absolute energy is lower.
    assert!(
        pbpair.encoding_energy(&EnergyModel::new(ZAURUS_SL5600))
            < pbpair.encoding_energy(&EnergyModel::new(IPAQ_H5555))
    );
}

#[test]
fn intra_th_boundaries_hit_the_energy_extremes() {
    // Intra_Th = 1 (all intra): no ME at all after frame 0; the cheapest
    // encode. Intra_Th = 0: no forced refresh; the most expensive.
    let all_intra = cell(SchemeSpec::Pbpair(PbpairConfig {
        intra_th: 1.0,
        ..PbpairConfig::default()
    }));
    let none = cell(SchemeSpec::Pbpair(PbpairConfig {
        intra_th: 0.0,
        ..PbpairConfig::default()
    }));
    assert_eq!(all_intra.ops.me_invocations, 0);
    let model = EnergyModel::new(IPAQ_H5555);
    assert!(all_intra.encoding_energy(&model) < none.encoding_energy(&model));
    // But all-intra pays in bits — the §4.3 trade-off.
    assert!(all_intra.total_bytes > none.total_bytes);
}
