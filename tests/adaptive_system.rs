//! Integration tests of the §3.2 adaptive loop: receiver feedback, the
//! controllers, and the battery tracker working together against live
//! encoder state.

use pbpair_repro::codec::{Encoder, EncoderConfig};
use pbpair_repro::energy::{Battery, EnergyModel, Joules, IPAQ_H5555};
use pbpair_repro::media::synth::SyntheticSequence;
use pbpair_repro::media::VideoFormat;
use pbpair_repro::netsim::{LossModel, UniformLoss, WindowPlrEstimator};
use pbpair_repro::schemes::adapt::{EnergyBudgetController, IntraRatioController};
use pbpair_repro::schemes::{PbpairConfig, PbpairPolicy};

#[test]
fn plr_feedback_raises_the_intra_ratio_during_loss() {
    // Drive PBPAIR with α taken from a live estimator; when the channel
    // turns lossy, the intra ratio must increase.
    let mut policy = PbpairPolicy::new(
        VideoFormat::QCIF,
        PbpairConfig {
            intra_th: 0.9,
            plr: 0.01,
            ..PbpairConfig::default()
        },
    )
    .unwrap();
    let mut encoder = Encoder::new(EncoderConfig::default());
    let mut seq = SyntheticSequence::foreman_class(1);
    let mut estimator = WindowPlrEstimator::new(20);
    let mut calm_ratio = 0.0;
    let mut lossy_ratio = 0.0;
    for f in 0..60 {
        let lossy_phase = f >= 30;
        let mut coin = UniformLoss::new(if lossy_phase { 0.35 } else { 0.0 }, 100 + f);
        let lost = coin.next_lost();
        estimator.record(lost);
        if estimator.observations() >= 10 {
            policy.set_plr(estimator.estimate().clamp(0.0, 0.9));
        }
        let e = encoder.encode_frame(&seq.next_frame(), &mut policy);
        if (20..30).contains(&f) {
            calm_ratio += e.stats.intra_ratio();
        }
        if f >= 50 {
            lossy_ratio += e.stats.intra_ratio();
        }
    }
    assert!(
        lossy_ratio / 10.0 > calm_ratio / 10.0,
        "loss must raise the intra ratio: calm {} vs lossy {}",
        calm_ratio / 10.0,
        lossy_ratio / 10.0
    );
}

#[test]
fn intra_ratio_controller_holds_its_target_on_the_real_encoder() {
    let target = 0.30;
    let mut controller = IntraRatioController::new(target, 0.9, 0.08);
    let mut policy = PbpairPolicy::new(VideoFormat::QCIF, PbpairConfig::default()).unwrap();
    let mut encoder = Encoder::new(EncoderConfig::default());
    let mut seq = SyntheticSequence::foreman_class(3);
    let mut tail = Vec::new();
    for f in 0..80 {
        policy.set_intra_th(controller.intra_th());
        let e = encoder.encode_frame(&seq.next_frame(), &mut policy);
        controller.update(e.stats.intra_ratio());
        if f >= 55 {
            tail.push(e.stats.intra_ratio());
        }
    }
    let mean = tail.iter().sum::<f64>() / tail.len() as f64;
    assert!(
        (mean - target).abs() < 0.12,
        "controller should hold ~{target}: settled at {mean}"
    );
}

#[test]
fn budget_controller_keeps_a_session_inside_its_battery() {
    // Identical setup twice: a static threshold overdraws the battery; a
    // budget-controlled threshold completes the session.
    let frames = 120usize;
    let capacity = Joules(0.45);
    let model = EnergyModel::new(IPAQ_H5555);

    let run_session = |adaptive: bool| -> (usize, f64) {
        let mut policy = PbpairPolicy::new(
            VideoFormat::QCIF,
            PbpairConfig {
                intra_th: 0.85,
                ..PbpairConfig::default()
            },
        )
        .unwrap();
        let mut encoder = Encoder::new(EncoderConfig::default());
        let mut seq = SyntheticSequence::foreman_class(5);
        let mut battery = Battery::new(capacity);
        let mut controller =
            EnergyBudgetController::new(capacity.get() / frames as f64, 0.85, 0.01);
        let mut encoded = 0usize;
        for f in 0..frames {
            if battery.is_empty() {
                break;
            }
            if adaptive {
                policy.set_intra_th(controller.intra_th());
            }
            let before = *encoder.ops();
            let _ = encoder.encode_frame(&seq.next_frame(), &mut policy);
            let delta = *encoder.ops() - before;
            let cost = model.total_energy(&delta);
            battery.drain(cost);
            encoded += 1;
            let left = (frames - f - 1).max(1) as u64;
            if let Some(b) = battery.per_frame_budget(left) {
                controller.set_budget(b.get());
            }
            controller.update(cost.get());
        }
        (encoded, battery.remaining().get())
    };

    let (static_frames, _) = run_session(false);
    let (adaptive_frames, _) = run_session(true);
    assert!(
        adaptive_frames >= static_frames,
        "adaptation cannot finish fewer frames: {adaptive_frames} vs {static_frames}"
    );
    assert_eq!(
        adaptive_frames, frames,
        "the controlled session must complete all frames"
    );
}

#[test]
fn estimator_and_policy_agree_on_plr_units() {
    // The estimator returns a probability; set_plr must accept the whole
    // estimator range without panicking.
    let mut estimator = WindowPlrEstimator::new(5);
    let mut policy = PbpairPolicy::new(VideoFormat::QCIF, PbpairConfig::default()).unwrap();
    for pattern in [[true; 5], [false; 5]] {
        for lost in pattern {
            estimator.record(lost);
        }
        policy.set_plr(estimator.estimate());
        assert!((0.0..=1.0).contains(&policy.plr()));
    }
}
