//! Integration tests of the error-resilience behaviours the paper's
//! Figure 6 demonstrates: propagation without refresh, bounded recovery
//! with each scheme, and the GOP I-frame-loss catastrophe.

use pbpair_repro::codec::EncoderConfig;
use pbpair_repro::eval::experiments::fig6::recovery_times;
use pbpair_repro::eval::pipeline::{run, LossSpec, RunConfig, SequenceSpec};
use pbpair_repro::media::synth::MotionClass;
use pbpair_repro::schemes::{PbpairConfig, SchemeSpec};

fn run_with_loss(scheme: SchemeSpec, lost_frames: Vec<u64>, frames: usize) -> Vec<f64> {
    run(&RunConfig {
        scheme,
        sequence: SequenceSpec::Synthetic {
            class: MotionClass::MediumForeman,
            seed: 2005,
        },
        frames,
        encoder: EncoderConfig::default(),
        loss: LossSpec::Scripted { lost_frames },
        mtu: 1400,
    })
    .unwrap()
    .quality
    .psnr_series()
    .to_vec()
}

#[test]
fn without_refresh_errors_propagate_to_the_end() {
    // NO: a single early loss leaves quality depressed for the entire
    // remainder (only natural intra and skips attenuate it slowly).
    let psnr = run_with_loss(SchemeSpec::No, vec![3], 30);
    let before = psnr[2];
    // Every subsequent frame stays clearly below the pre-loss level.
    let recovered = psnr[4..].iter().filter(|&&p| p >= before - 0.5).count();
    assert!(
        recovered < 5,
        "NO should not recover from frame 3's loss ({recovered} frames at pre-loss level)"
    );
}

#[test]
fn pbpair_recovers_while_no_does_not() {
    let frames = 30;
    let events = vec![3u64];
    let no = run_with_loss(SchemeSpec::No, events.clone(), frames);
    let pb = run_with_loss(
        SchemeSpec::Pbpair(PbpairConfig {
            intra_th: 0.93,
            plr: 0.10,
            ..PbpairConfig::default()
        }),
        events.clone(),
        frames,
    );
    let r_no = recovery_times(&no, &events)[0];
    let r_pb = recovery_times(&pb, &events)[0];
    match (r_pb, r_no) {
        (Some(pb_frames), Some(no_frames)) => assert!(
            pb_frames <= no_frames,
            "PBPAIR ({pb_frames}) must recover no slower than NO ({no_frames})"
        ),
        (Some(_), None) => {} // PBPAIR recovered, NO never did — the expected case
        (None, _) => panic!("PBPAIR must recover within the horizon: {pb:?}"),
    }
    // Tail quality: the mean PSNR of the last 10 frames must be clearly
    // higher under PBPAIR.
    let tail = |s: &[f64]| s[frames - 10..].iter().sum::<f64>() / 10.0;
    assert!(
        tail(&pb) > tail(&no) + 1.0,
        "PBPAIR tail {} vs NO tail {}",
        tail(&pb),
        tail(&no)
    );
}

#[test]
fn every_refresh_scheme_bounds_recovery() {
    let frames = 40;
    let events = vec![5u64];
    for scheme in [
        SchemeSpec::Gop(4),
        SchemeSpec::Air(24),
        SchemeSpec::Pgop(2),
        SchemeSpec::Pbpair(PbpairConfig {
            intra_th: 0.93,
            ..PbpairConfig::default()
        }),
    ] {
        let psnr = run_with_loss(scheme, events.clone(), frames);
        let rec = recovery_times(&psnr, &events)[0];
        assert!(
            rec.is_some(),
            "{}: must recover within the horizon",
            scheme.name()
        );
        assert!(
            rec.unwrap() <= 25,
            "{}: recovery took {:?} frames",
            scheme.name(),
            rec
        );
    }
}

#[test]
fn losing_a_gop_i_frame_is_catastrophic_for_the_whole_gop() {
    // GOP-8: I-frames at 0, 9, 18, 27... Losing frame 18 (an I-frame)
    // must depress quality until the next I-frame at 27; PBPAIR suffers
    // no such cliff for the same loss position.
    let frames = 36;
    let events = vec![18u64];
    let gop = run_with_loss(SchemeSpec::Gop(8), events.clone(), frames);
    let pb = run_with_loss(
        SchemeSpec::Pbpair(PbpairConfig {
            intra_th: 0.93,
            ..PbpairConfig::default()
        }),
        events.clone(),
        frames,
    );
    // Depth × duration of the dip between the loss and the next refresh.
    let dip = |s: &[f64]| -> f64 {
        let base = s[17];
        s[18..27].iter().map(|p| (base - p).max(0.0)).sum()
    };
    assert!(
        dip(&gop) > dip(&pb),
        "GOP I-frame loss dip {} must exceed PBPAIR dip {}",
        dip(&gop),
        dip(&pb)
    );
    // GOP must bounce back at its next I-frame (frame 27).
    assert!(
        gop[27] > gop[26] + 1.0,
        "the next I-frame must snap GOP back: {} vs {}",
        gop[27],
        gop[26]
    );
}

#[test]
fn pbpair_is_stable_across_channel_realizations_where_air_is_not() {
    // Regression anchor for the replication finding in EXPERIMENTS.md:
    // AIR ranks refresh candidates by encoder-side activity, so damage
    // that lands on low-activity regions can persist for the rest of the
    // clip — its quality depends heavily on *which* frames the channel
    // happens to drop. PBPAIR's σ decays for every macroblock, so its
    // quality is nearly realization-independent.
    use pbpair_repro::eval::pipeline::run_replicated;
    let run_scheme = |scheme: SchemeSpec| {
        run_replicated(
            &RunConfig {
                scheme,
                sequence: SequenceSpec::Synthetic {
                    class: pbpair_repro::media::synth::MotionClass::MediumForeman,
                    seed: 2005,
                },
                frames: 100,
                encoder: EncoderConfig::default(),
                loss: LossSpec::Uniform {
                    rate: 0.10,
                    seed: 77,
                },
                mtu: 1400,
            },
            4,
        )
        .unwrap()
    };
    let air = run_scheme(SchemeSpec::Air(24));
    let pb = run_scheme(SchemeSpec::Pbpair(PbpairConfig {
        intra_th: 0.95,
        ..PbpairConfig::default()
    }));
    assert!(
        pb.psnr_std < air.psnr_std,
        "PBPAIR must be more realization-stable: ±{} vs ±{}",
        pb.psnr_std,
        air.psnr_std
    );
    assert!(
        pb.bad_pixels_mean < air.bad_pixels_mean,
        "PBPAIR must accumulate less damage: {} vs {}",
        pb.bad_pixels_mean,
        air.bad_pixels_mean
    );
}

#[test]
fn pbpair_recovers_faster_than_air_on_average() {
    // AIR decides after ME and targets activity, but its refresh is not
    // loss-aware; over several events PBPAIR's mean recovery must not be
    // worse. (This mirrors Figure 6(a)'s "PBPAIR recovers faster" claim.)
    let frames = 48;
    let events = vec![6u64, 16, 26, 38];
    let air = run_with_loss(SchemeSpec::Air(10), events.clone(), frames);
    let pb = run_with_loss(
        SchemeSpec::Pbpair(PbpairConfig {
            intra_th: 0.95,
            ..PbpairConfig::default()
        }),
        events.clone(),
        frames,
    );
    let mean = |s: &[f64]| {
        recovery_times(s, &events)
            .iter()
            .map(|r| r.unwrap_or(frames as u64) as f64)
            .sum::<f64>()
            / events.len() as f64
    };
    assert!(
        mean(&pb) <= mean(&air) + 0.5,
        "PBPAIR mean recovery {} vs AIR {}",
        mean(&pb),
        mean(&air)
    );
}
