#!/usr/bin/env python3
"""Validates the schema and invariants of a perf-benchmark JSON file.
The schema is selected by `meta.bench`:

  * `pr5-encode-hot-path` (`BENCH_PR5.json`, `perf [--smoke]`);
  * `pr8_kernels` (`BENCH_PR8.json`, `perf --kernels [--smoke]`).

Usage: python3 ci/validate_bench.py <bench.json> [--detected <tier>]

PR5 checks:
  * schema: meta block + per-result field names and types;
  * every (clip, variant) cell present: naive/fast at 1 thread plus
    slice-parallel at 2 and 4 threads;
  * the optimized single-thread path actually saves SAD work, and its
    measured speedup clears a floor (1.2x here — a soft CI gate; the
    committed BENCH_PR5.json records ~1.8x on a quiet machine);
  * single-thread steady state performs zero allocations per frame;
  * slice-parallel SAD work is identical for 2 and 4 threads (the
    determinism argument in DESIGN.md depends on it).

PR8 checks:
  * schema: meta block (arch, detected-best tier, per-arch pins) +
    per-result field names and types;
  * every kernel is measured on every tier the run reported, with the
    scalar baseline pinned at exactly 1.0x;
  * the best tier clears a 2.0x floor on the SAD and fused-transform
    microbenches (the PR8 acceptance claim);
  * `--detected <tier>`: the tier the running host detects as best
    (from `perf --kernels-info`) matches the committed per-arch pin, so
    a silently broken dispatch chain fails CI instead of benching
    scalar everywhere.
"""

import json
import sys

SPEEDUP_FLOOR = 1.2

KERNEL_SPEEDUP_FLOORS = {"sad16": 2.0, "fused_transform": 2.0}
KERNEL_META_FIELDS = {"bench", "arch", "detected_best", "pins", "scale"}
KERNEL_RESULT_FIELDS = {
    "kernel": str,
    "tier": str,
    "ns_per_call": (int, float),
    "speedup_vs_scalar": (int, float),
}
KERNELS = {"sad16", "sad16_bounded", "fused_transform", "idct8", "halfpel16"}

META_FIELDS = {"bench", "config", "warmup_frames", "measured_frames_per_clip"}
RESULT_FIELDS = {
    "name": str,
    "threads": int,
    "clip": str,
    "frames": int,
    "fps": (int, float),
    "sad_ops_per_frame": (int, float),
    "allocs_per_frame": (int, float),
    "speedup_vs_naive": (int, float),
}
EXPECTED_VARIANTS = {
    ("naive", 1),
    ("fast", 1),
    ("fast-2slices", 2),
    ("fast-4slices", 4),
}


def fail(msg):
    print(f"bench validation FAILED: {msg}", file=sys.stderr)
    sys.exit(1)


def validate_kernels(doc, detected):
    if set(doc["meta"]) != KERNEL_META_FIELDS:
        fail(f"meta keys {sorted(doc['meta'])} != {sorted(KERNEL_META_FIELDS)}")
    meta = doc["meta"]
    pins = meta["pins"]
    if not isinstance(pins, dict) or not pins:
        fail("meta.pins must be a non-empty arch -> tier map")
    if meta["scale"] not in ("full", "smoke"):
        fail(f"meta.scale {meta['scale']!r} not full/smoke")
    results = doc["results"]
    if not results:
        fail("empty results")

    by_kernel = {}
    tiers = []
    for r in results:
        if set(r) != set(KERNEL_RESULT_FIELDS):
            fail(f"result keys {sorted(r)} != {sorted(KERNEL_RESULT_FIELDS)}")
        for field, ty in KERNEL_RESULT_FIELDS.items():
            if not isinstance(r[field], ty):
                fail(f"{r['kernel']}/{r['tier']}: {field} is {type(r[field]).__name__}")
        if r["ns_per_call"] <= 0:
            fail(f"{r['kernel']}/{r['tier']}: non-positive ns_per_call")
        by_kernel.setdefault(r["kernel"], {})[r["tier"]] = r
        if r["tier"] not in tiers:
            tiers.append(r["tier"])

    if set(by_kernel) != KERNELS:
        fail(f"kernels {sorted(by_kernel)} != {sorted(KERNELS)}")
    if tiers[0] != "scalar":
        fail("the scalar baseline must be measured first")
    for kernel, cells in sorted(by_kernel.items()):
        if set(cells) != set(tiers):
            fail(f"{kernel}: tiers {sorted(cells)} != {sorted(tiers)}")
        if cells["scalar"]["speedup_vs_scalar"] != 1.0:
            fail(f"{kernel}: scalar speedup {cells['scalar']['speedup_vs_scalar']} != 1.0")
    if len(tiers) > 1:
        for kernel, floor in sorted(KERNEL_SPEEDUP_FLOORS.items()):
            best = max(r["speedup_vs_scalar"] for r in by_kernel[kernel].values())
            if best < floor:
                fail(f"{kernel}: best speedup {best} below floor {floor}")

    if detected is not None:
        pin = pins.get(meta["arch"])
        if pin is None:
            fail(f"no pin committed for arch {meta['arch']}")
        if detected != pin:
            fail(
                f"host detects best tier {detected!r} but the committed pin"
                f" for {meta['arch']} is {pin!r} — dispatch regressed"
            )

    best = {
        kernel: max(r["speedup_vs_scalar"] for r in cells.values())
        for kernel, cells in sorted(by_kernel.items())
    }
    print(
        f"bench OK: {len(results)} kernel results over tiers {tiers}, best "
        + ", ".join(f"{k}={v:.2f}x" for k, v in best.items())
        + (f", detected={detected} matches pin" if detected is not None else "")
    )


def main(path, detected=None):
    with open(path) as f:
        doc = json.load(f)

    if set(doc) != {"meta", "results"}:
        fail(f"top-level keys {sorted(doc)} != ['meta', 'results']")
    if doc.get("meta", {}).get("bench") == "pr8_kernels":
        validate_kernels(doc, detected)
        return
    if detected is not None:
        fail("--detected only applies to pr8_kernels benches")
    if set(doc["meta"]) != META_FIELDS:
        fail(f"meta keys {sorted(doc['meta'])} != {sorted(META_FIELDS)}")
    results = doc["results"]
    if not results:
        fail("empty results")

    by_clip = {}
    for r in results:
        if set(r) != set(RESULT_FIELDS):
            fail(f"result keys {sorted(r)} != {sorted(RESULT_FIELDS)}")
        for field, ty in RESULT_FIELDS.items():
            if not isinstance(r[field], ty):
                fail(f"{r['name']}: {field} is {type(r[field]).__name__}")
        if r["frames"] != doc["meta"]["measured_frames_per_clip"]:
            fail(f"{r['name']}: frames != meta.measured_frames_per_clip")
        if r["fps"] <= 0:
            fail(f"{r['name']}: non-positive fps")
        variant = r["name"].rsplit("/", 1)[0]
        by_clip.setdefault(r["clip"], {})[variant] = r

    for clip, cells in sorted(by_clip.items()):
        have = {(v, r["threads"]) for v, r in cells.items()}
        if have != EXPECTED_VARIANTS:
            fail(f"{clip}: variants {sorted(have)} != {sorted(EXPECTED_VARIANTS)}")
        naive, fast = cells["naive"], cells["fast"]
        if fast["sad_ops_per_frame"] >= naive["sad_ops_per_frame"]:
            fail(f"{clip}: fast path saved no SAD work")
        if fast["speedup_vs_naive"] < SPEEDUP_FLOOR:
            fail(
                f"{clip}: fast single-thread speedup {fast['speedup_vs_naive']}"
                f" below floor {SPEEDUP_FLOOR}"
            )
        for v in ("naive", "fast"):
            if cells[v]["allocs_per_frame"] != 0:
                fail(f"{clip}: {v} steady state allocates")
        if cells["fast-2slices"]["sad_ops_per_frame"] != cells["fast-4slices"]["sad_ops_per_frame"]:
            fail(f"{clip}: slice-parallel SAD work depends on the thread count")

    print(
        f"bench OK: {len(results)} results over {sorted(by_clip)}, "
        "speedups "
        + ", ".join(
            f"{clip}={cells['fast']['speedup_vs_naive']:.2f}x"
            for clip, cells in sorted(by_clip.items())
        )
    )


if __name__ == "__main__":
    if len(sys.argv) == 2:
        main(sys.argv[1])
    elif len(sys.argv) == 4 and sys.argv[2] == "--detected":
        main(sys.argv[1], sys.argv[3])
    else:
        fail("usage: validate_bench.py <bench.json> [--detected <tier>]")
