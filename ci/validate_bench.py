#!/usr/bin/env python3
"""Validates the schema and invariants of a perf-benchmark JSON file
(`BENCH_PR5.json` or a CI `--smoke` run).

Usage: python3 ci/validate_bench.py <bench.json>

Checks:
  * schema: meta block + per-result field names and types;
  * every (clip, variant) cell present: naive/fast at 1 thread plus
    slice-parallel at 2 and 4 threads;
  * the optimized single-thread path actually saves SAD work, and its
    measured speedup clears a floor (1.2x here — a soft CI gate; the
    committed BENCH_PR5.json records ~1.8x on a quiet machine);
  * single-thread steady state performs zero allocations per frame;
  * slice-parallel SAD work is identical for 2 and 4 threads (the
    determinism argument in DESIGN.md depends on it).
"""

import json
import sys

SPEEDUP_FLOOR = 1.2

META_FIELDS = {"bench", "config", "warmup_frames", "measured_frames_per_clip"}
RESULT_FIELDS = {
    "name": str,
    "threads": int,
    "clip": str,
    "frames": int,
    "fps": (int, float),
    "sad_ops_per_frame": (int, float),
    "allocs_per_frame": (int, float),
    "speedup_vs_naive": (int, float),
}
EXPECTED_VARIANTS = {
    ("naive", 1),
    ("fast", 1),
    ("fast-2slices", 2),
    ("fast-4slices", 4),
}


def fail(msg):
    print(f"bench validation FAILED: {msg}", file=sys.stderr)
    sys.exit(1)


def main(path):
    with open(path) as f:
        doc = json.load(f)

    if set(doc) != {"meta", "results"}:
        fail(f"top-level keys {sorted(doc)} != ['meta', 'results']")
    if set(doc["meta"]) != META_FIELDS:
        fail(f"meta keys {sorted(doc['meta'])} != {sorted(META_FIELDS)}")
    results = doc["results"]
    if not results:
        fail("empty results")

    by_clip = {}
    for r in results:
        if set(r) != set(RESULT_FIELDS):
            fail(f"result keys {sorted(r)} != {sorted(RESULT_FIELDS)}")
        for field, ty in RESULT_FIELDS.items():
            if not isinstance(r[field], ty):
                fail(f"{r['name']}: {field} is {type(r[field]).__name__}")
        if r["frames"] != doc["meta"]["measured_frames_per_clip"]:
            fail(f"{r['name']}: frames != meta.measured_frames_per_clip")
        if r["fps"] <= 0:
            fail(f"{r['name']}: non-positive fps")
        variant = r["name"].rsplit("/", 1)[0]
        by_clip.setdefault(r["clip"], {})[variant] = r

    for clip, cells in sorted(by_clip.items()):
        have = {(v, r["threads"]) for v, r in cells.items()}
        if have != EXPECTED_VARIANTS:
            fail(f"{clip}: variants {sorted(have)} != {sorted(EXPECTED_VARIANTS)}")
        naive, fast = cells["naive"], cells["fast"]
        if fast["sad_ops_per_frame"] >= naive["sad_ops_per_frame"]:
            fail(f"{clip}: fast path saved no SAD work")
        if fast["speedup_vs_naive"] < SPEEDUP_FLOOR:
            fail(
                f"{clip}: fast single-thread speedup {fast['speedup_vs_naive']}"
                f" below floor {SPEEDUP_FLOOR}"
            )
        for v in ("naive", "fast"):
            if cells[v]["allocs_per_frame"] != 0:
                fail(f"{clip}: {v} steady state allocates")
        if cells["fast-2slices"]["sad_ops_per_frame"] != cells["fast-4slices"]["sad_ops_per_frame"]:
            fail(f"{clip}: slice-parallel SAD work depends on the thread count")

    print(
        f"bench OK: {len(results)} results over {sorted(by_clip)}, "
        "speedups "
        + ", ".join(
            f"{clip}={cells['fast']['speedup_vs_naive']:.2f}x"
            for clip, cells in sorted(by_clip.items())
        )
    )


if __name__ == "__main__":
    if len(sys.argv) != 2:
        fail("usage: validate_bench.py <bench.json>")
    main(sys.argv[1])
