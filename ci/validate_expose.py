#!/usr/bin/env python3
"""Live-scrape validation of the observability plane's expose endpoint.

Usage: python3 ci/validate_expose.py <serve-binary> [--port N]

Spawns `<serve-binary> --smoke --expose <port> --expose-hold 60`, waits
for the run to finish and the endpoint to come up, then validates:

  * `/metrics` parses as Prometheus text exposition 0.0.4: every sample
    line belongs to a `# TYPE`-declared family, metric names carry the
    `pbpair_` prefix, values are numeric;
  * required families exist: `pbpair_enc_frames_total`,
    `pbpair_dec_frames_total`, `pbpair_serve_rounds_total`, and the
    `pbpair_serve_frame_latency_ms` histogram;
  * histogram integrity per family: cumulative `le` bucket counts are
    monotone nondecreasing, the `+Inf` bucket equals `_count`, and
    `_sum`/`_count` are present;
  * `/health` is valid JSON with a per-session state list and the
    firing-alert set;
  * `/timeseries` is valid JSON carrying the delta-frame ring.

Kills the serve process on exit, pass or fail.
"""

import json
import re
import subprocess
import sys
import time
import urllib.request

REQUIRED_COUNTERS = [
    "pbpair_enc_frames_total",
    "pbpair_dec_frames_total",
    "pbpair_serve_rounds_total",
]
REQUIRED_HISTOGRAMS = ["pbpair_serve_frame_latency_ms"]

SAMPLE_RE = re.compile(
    r'^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)'
    r'(?:\{(?P<labels>[^}]*)\})?'
    r'\s+(?P<value>[0-9.eE+\-]+|\+Inf|NaN)$'
)


def fail(msg):
    print(f"expose validation FAILED: {msg}", file=sys.stderr)
    sys.exit(1)


def fetch(port, path):
    with urllib.request.urlopen(f"http://127.0.0.1:{port}{path}", timeout=5) as r:
        return r.read().decode("utf-8"), r.headers.get("Content-Type", "")


def parse_exposition(body):
    """Returns ({family: type}, [(name, labels, value)])."""
    families, samples = {}, []
    for line in body.splitlines():
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                fail(f"malformed TYPE line: {line!r}")
            families[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue
        m = SAMPLE_RE.match(line)
        if not m:
            fail(f"unparseable sample line: {line!r}")
        value = m.group("value")
        samples.append((m.group("name"), m.group("labels") or "", value))
    return families, samples


def family_of(name):
    for suffix in ("_bucket", "_sum", "_count", "_max"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def le_of(labels):
    m = re.search(r'le="([^"]+)"', labels)
    return m.group(1) if m else None


def check_metrics(body, content_type):
    if "text/plain" not in content_type or "version=0.0.4" not in content_type:
        fail(f"unexpected /metrics content type: {content_type!r}")
    families, samples = parse_exposition(body)
    if not families:
        fail("no # TYPE families in /metrics")
    for name, labels, value in samples:
        if not name.startswith("pbpair_"):
            fail(f"metric {name} lacks the pbpair_ prefix")
        fam = family_of(name)
        # Gauge companions export their own family name; stage counters
        # share a labelled family. Every sample must trace to a TYPE.
        if fam not in families and name not in families:
            fail(f"sample {name} has no # TYPE declaration")
        if value != "+Inf":
            float(value)

    for required in REQUIRED_COUNTERS:
        if not any(n == required for n, _, _ in samples):
            fail(f"required counter {required} missing from /metrics")
        if families.get(required) != "counter":
            fail(f"{required} not declared as a counter")

    for hist in REQUIRED_HISTOGRAMS:
        if families.get(hist) != "histogram":
            fail(f"{hist} not declared as a histogram")
        buckets = [(le_of(labels), float(v))
                   for n, labels, v in samples
                   if n == f"{hist}_bucket"]
        if not buckets or buckets[-1][0] != "+Inf":
            fail(f"{hist}: bucket list missing or not ending at +Inf")
        counts = [v for _, v in buckets]
        if any(b > a for a, b in zip(counts[1:], counts)):
            fail(f"{hist}: cumulative le counts not monotone: {counts}")
        count = next(float(v) for n, _, v in samples if n == f"{hist}_count")
        if counts[-1] != count:
            fail(f"{hist}: +Inf bucket {counts[-1]} != _count {count}")
        if not any(n == f"{hist}_sum" for n, _, _ in samples):
            fail(f"{hist}: _sum missing")
    return len(families), len(samples)


def check_health(body):
    doc = json.loads(body)
    for key in ("rounds", "sessions", "alerts_firing"):
        if key not in doc:
            fail(f"/health missing {key!r}")
    if not doc["sessions"]:
        fail("/health reports no sessions")
    for s in doc["sessions"]:
        if set(s) != {"id", "health", "transitions", "shed"}:
            fail(f"/health session keys: {sorted(s)}")
    return len(doc["sessions"])


def check_timeseries(body):
    doc = json.loads(body)
    for key in ("every", "ticks", "dropped", "frames"):
        if key not in doc:
            fail(f"/timeseries missing {key!r}")
    if doc["ticks"] == 0 or not doc["frames"]:
        fail("/timeseries ring is empty")
    frame = doc["frames"][0]
    if "deterministic" not in frame or "round" not in frame["deterministic"]:
        fail(f"/timeseries frame shape: {sorted(frame)}")
    return doc["ticks"]


def main():
    args = sys.argv[1:]
    if not args:
        fail("usage: validate_expose.py <serve-binary> [--port N]")
    binary = args[0]
    port = 9184
    if "--port" in args:
        port = int(args[args.index("--port") + 1])

    proc = subprocess.Popen(
        [binary, "--smoke", "--expose", str(port), "--expose-hold", "60"],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        # Wait for the endpoint to come up AND for the time-series ring
        # to have published at least one tick (the run publishes per
        # round, so a scrape can land before the first barrier).
        deadline = time.time() + 120
        ready = False
        while time.time() < deadline:
            if proc.poll() is not None:
                fail(f"serve exited early with {proc.returncode}: "
                     f"{proc.stderr.read()}")
            try:
                probe = json.loads(fetch(port, "/timeseries")[0])
                if probe.get("ticks", 0) > 0:
                    ready = True
                    break
            except (OSError, ValueError):
                pass
            time.sleep(0.5)
        if not ready:
            fail("timed out waiting for the first published tick")

        body, ctype = fetch(port, "/metrics")
        nfam, nsamp = check_metrics(body, ctype)
        nsess = check_health(fetch(port, "/health")[0])
        nticks = check_timeseries(fetch(port, "/timeseries")[0])
        print(f"expose OK: {nfam} families / {nsamp} samples on /metrics, "
              f"{nsess} sessions on /health, {nticks} ticks on /timeseries")
    finally:
        proc.kill()
        proc.wait()


if __name__ == "__main__":
    main()
