#!/usr/bin/env python3
"""Validates a scenario-matrix JSON report against the committed
per-scenario resilience bounds, with trend tracking.

Usage: python3 ci/validate_scenarios.py <scenarios.json> [<bounds.json>]

Checks:
  * schema: 18 cells (3 scenarios x 2 clips x 3 schemes), every field
    present and integer-valued, nonzero digests and PSNR;
  * committed bounds per scenario: minimum PSNR, maximum per-cell
    energy, maximum C^k Brier score, maximum mean frames-to-heal —
    resilience regressions fail CI the same way bitstream goldens do;
  * trend: every gated quantity is reported as a drift percentage
    against the baseline recorded when the bound was committed, so a
    slow slide toward a bound is visible in CI logs long before it
    trips.
"""

import json
import sys

EXPECTED_CELLS = 18
EXPECTED_SCENARIOS = {"steady_burst", "handoff_ramp", "feedback_blackout"}
EXPECTED_CLIPS = {"akiyo", "foreman"}
EXPECTED_SCHEMES = {"PBPAIR", "GOP-4", "AIR-11"}
CELL_FIELDS = {
    "scenario": str,
    "clip": str,
    "scheme": str,
    "digest": str,
    "psnr_mdb": int,
    "energy_uj": int,
    "brier_e9": int,
    "heal_events": int,
    "heal_sum": int,
    "heal_max": int,
    "frames_lost": int,
    "impaired": int,
    "recovered": int,
}


def fail(msg):
    print(f"scenario validation FAILED: {msg}", file=sys.stderr)
    sys.exit(1)


def drift(observed, baseline):
    """Signed drift of observed vs baseline, as a percentage string."""
    if baseline == 0:
        return "n/a"
    return f"{100.0 * (observed - baseline) / baseline:+.1f}%"


def main(report_path, bounds_path):
    with open(report_path) as f:
        doc = json.load(f)
    with open(bounds_path) as f:
        bounds = json.load(f)["scenarios"]

    if set(doc) != {"frames", "sessions", "cells"}:
        fail(f"top-level keys {sorted(doc)}")
    cells = doc["cells"]
    if len(cells) != EXPECTED_CELLS:
        fail(f"{len(cells)} cells != {EXPECTED_CELLS}")

    seen = set()
    per_scenario = {}
    for c in cells:
        if set(c) != set(CELL_FIELDS):
            fail(f"cell keys {sorted(c)} != {sorted(CELL_FIELDS)}")
        for field, ty in CELL_FIELDS.items():
            if not isinstance(c[field], ty):
                fail(f"{c['scenario']}/{c['clip']}/{c['scheme']}: "
                     f"{field} is {type(c[field]).__name__}")
        if c["psnr_mdb"] == 0:
            fail(f"{c['scenario']}/{c['clip']}/{c['scheme']}: zero PSNR")
        if c["digest"] == "0" * 16:
            fail(f"{c['scenario']}/{c['clip']}/{c['scheme']}: zero digest")
        seen.add((c["scenario"], c["clip"], c["scheme"]))
        agg = per_scenario.setdefault(c["scenario"], {
            "psnr_min_mdb": 1 << 60,
            "energy_max_uj": 0,
            "brier_max_e9": 0,
            "heal_mean_max": 0.0,
        })
        agg["psnr_min_mdb"] = min(agg["psnr_min_mdb"], c["psnr_mdb"])
        agg["energy_max_uj"] = max(agg["energy_max_uj"], c["energy_uj"])
        agg["brier_max_e9"] = max(agg["brier_max_e9"], c["brier_e9"])
        if c["heal_events"] > 0:
            agg["heal_mean_max"] = max(
                agg["heal_mean_max"], c["heal_sum"] / c["heal_events"])

    expected_matrix = {
        (sc, cl, sch)
        for sc in EXPECTED_SCENARIOS
        for cl in EXPECTED_CLIPS
        for sch in EXPECTED_SCHEMES
    }
    if seen != expected_matrix:
        fail(f"matrix coverage mismatch: missing {sorted(expected_matrix - seen)}, "
             f"extra {sorted(seen - expected_matrix)}")
    if set(per_scenario) != set(bounds):
        fail(f"scenarios {sorted(per_scenario)} != bounded {sorted(bounds)}")

    # The gates: lower-is-better quantities against max bounds, PSNR
    # against its min bound, each with its drift vs committed baseline.
    for name in sorted(per_scenario):
        agg, b = per_scenario[name], bounds[name]
        base = b["baseline"]
        checks = [
            ("psnr_min_mdb", agg["psnr_min_mdb"], b["psnr_min_mdb"], "min", "mdB"),
            ("energy_max_uj", agg["energy_max_uj"], b["energy_max_uj"], "max", "uJ"),
            ("brier_max_e9", agg["brier_max_e9"], b["brier_max_e9"], "max", "/1e9"),
            ("heal_mean_max", agg["heal_mean_max"], b["heal_mean_max"], "max", "frames"),
        ]
        for key, observed, bound, kind, unit in checks:
            trend = drift(observed, base[key])
            print(f"{name}: {key} = {observed:.0f} {unit} "
                  f"(bound {kind} {bound}, drift vs baseline {trend})")
            if kind == "min" and observed < bound:
                fail(f"{name}: {key} {observed} below committed floor {bound}")
            if kind == "max" and observed > bound:
                fail(f"{name}: {key} {observed} above committed ceiling {bound}")

    print(f"scenarios OK: {len(cells)} cells, "
          f"{len(per_scenario)} scenarios within committed bounds")


if __name__ == "__main__":
    if len(sys.argv) not in (2, 3):
        fail("usage: validate_scenarios.py <scenarios.json> [<bounds.json>]")
    main(sys.argv[1], sys.argv[2] if len(sys.argv) == 3 else "ci/scenario_bounds.json")
