#!/usr/bin/env python3
"""Validates a scenario-matrix JSON report against the committed
per-scenario resilience bounds, with trend tracking.

Usage: python3 ci/validate_scenarios.py <scenarios.json> [<bounds.json>]
       python3 ci/validate_scenarios.py --fec <fec.json> [<bounds.json>]
       python3 ci/validate_scenarios.py --dashboard <dashboard.json> [<bounds.json>]
       python3 ci/validate_scenarios.py --rde <rde.json> [<rde_bounds.json>]

Checks (default scenario mode):
  * schema: 18 cells (3 scenarios x 2 clips x 3 schemes), every field
    present and integer-valued, nonzero digests and PSNR;
  * committed bounds per scenario: minimum PSNR, maximum per-cell
    energy, maximum C^k Brier score, maximum mean frames-to-heal —
    resilience regressions fail CI the same way bitstream goldens do;
  * trend: every gated quantity is reported as a drift percentage
    against the baseline recorded when the bound was committed, so a
    slow slide toward a bound is visible in CI logs long before it
    trips.

Checks (--fec mode, against the 'fec' section of the bounds file):
  * schema: 14 cells (2 channels x 7 arms), integer-only metrics,
    nonzero digests and PSNR; 'none' arms send no parity and charge no
    FEC energy, protected arms do both;
  * committed per-cell bounds: residual-frame-loss ceiling (ppm),
    PSNR floor (milli-dB), FEC-energy ceiling (uJ), each with drift
    reported against the committed baseline;
  * wire budget: every protected arm's parity overhead stays under the
    committed ceiling;
  * headline claim: on the committed burst channel the adaptive
    multi-erasure arms beat fixed XOR on residual frame loss at the
    same wire budget.

Checks (--rde mode, against ci/rde_bounds.json):
  * schema: 7 arms (baseline, zero gate, five lambda points),
    integer-only metrics, nonzero digests and PSNR;
  * zero-lambda gate: the rde-zero arm's digest is byte-identical to
    the pure-PBPAIR baseline's (the controller at lambda1=lambda2=0 is
    provably inert);
  * Pareto front: dominance is recomputed from the reported metrics,
    the on_front flags must match it, and front membership must match
    the committed list;
  * weak dominance: some front arm matches or beats pure PBPAIR on
    encode energy AND displayed quality simultaneously;
  * energy lever: some energy-priced arm encodes strictly cheaper than
    the baseline;
  * committed per-arm bounds: PSNR floor (milli-dB) and encode-energy
    ceiling (uJ), each with drift reported against the baseline.

Checks (--dashboard mode, against the 'dashboard' section):
  * schema: 4 cells (3 committed scenarios + burst_kill), integer alert
    tallies per SLO;
  * per scenario: total SLO firing transitions within the committed
    [fired_min, fired_max] band, with drift against the baseline;
  * the burst_kill incident drives the full observability chain:
    residual_loss fires, the flight recorder dumps (reason "slo"), and
    the health ledger records slo: transitions.
"""

import json
import sys

EXPECTED_CELLS = 18
EXPECTED_SCENARIOS = {"steady_burst", "handoff_ramp", "feedback_blackout"}
EXPECTED_CLIPS = {"akiyo", "foreman"}
EXPECTED_SCHEMES = {"PBPAIR", "GOP-4", "AIR-11"}
CELL_FIELDS = {
    "scenario": str,
    "clip": str,
    "scheme": str,
    "digest": str,
    "psnr_mdb": int,
    "energy_uj": int,
    "brier_e9": int,
    "heal_events": int,
    "heal_sum": int,
    "heal_max": int,
    "frames_lost": int,
    "impaired": int,
    "recovered": int,
}


EXPECTED_FEC_CELLS = 14
EXPECTED_FEC_CHANNELS = {"uniform", "markov_burst"}
EXPECTED_FEC_ARMS = {
    "none",
    "xor-fixed", "xor-adaptive",
    "rs-fixed", "rs-adaptive",
    "lt-fixed", "lt-adaptive",
}
FEC_CELL_FIELDS = {
    "channel": str,
    "arm": str,
    "codec": str,
    "digest": str,
    "frames": int,
    "frames_lost": int,
    "frames_damaged": int,
    "fec_recoveries": int,
    "blocks_failed": int,
    "residual_ppm": int,
    "overhead_ppm": int,
    "psnr_mdb": int,
    "encode_uj": int,
    "fec_uj": int,
    "sent_bytes": int,
    "parity_bytes": int,
}


def fail(msg):
    print(f"scenario validation FAILED: {msg}", file=sys.stderr)
    sys.exit(1)


def drift(observed, baseline):
    """Signed drift of observed vs baseline, as a percentage string."""
    if baseline == 0:
        return "n/a"
    return f"{100.0 * (observed - baseline) / baseline:+.1f}%"


def main(report_path, bounds_path):
    with open(report_path) as f:
        doc = json.load(f)
    with open(bounds_path) as f:
        bounds = json.load(f)["scenarios"]

    if set(doc) != {"frames", "sessions", "cells"}:
        fail(f"top-level keys {sorted(doc)}")
    cells = doc["cells"]
    if len(cells) != EXPECTED_CELLS:
        fail(f"{len(cells)} cells != {EXPECTED_CELLS}")

    seen = set()
    per_scenario = {}
    for c in cells:
        if set(c) != set(CELL_FIELDS):
            fail(f"cell keys {sorted(c)} != {sorted(CELL_FIELDS)}")
        for field, ty in CELL_FIELDS.items():
            if not isinstance(c[field], ty):
                fail(f"{c['scenario']}/{c['clip']}/{c['scheme']}: "
                     f"{field} is {type(c[field]).__name__}")
        if c["psnr_mdb"] == 0:
            fail(f"{c['scenario']}/{c['clip']}/{c['scheme']}: zero PSNR")
        if c["digest"] == "0" * 16:
            fail(f"{c['scenario']}/{c['clip']}/{c['scheme']}: zero digest")
        seen.add((c["scenario"], c["clip"], c["scheme"]))
        agg = per_scenario.setdefault(c["scenario"], {
            "psnr_min_mdb": 1 << 60,
            "energy_max_uj": 0,
            "brier_max_e9": 0,
            "heal_mean_max": 0.0,
        })
        agg["psnr_min_mdb"] = min(agg["psnr_min_mdb"], c["psnr_mdb"])
        agg["energy_max_uj"] = max(agg["energy_max_uj"], c["energy_uj"])
        agg["brier_max_e9"] = max(agg["brier_max_e9"], c["brier_e9"])
        if c["heal_events"] > 0:
            agg["heal_mean_max"] = max(
                agg["heal_mean_max"], c["heal_sum"] / c["heal_events"])

    expected_matrix = {
        (sc, cl, sch)
        for sc in EXPECTED_SCENARIOS
        for cl in EXPECTED_CLIPS
        for sch in EXPECTED_SCHEMES
    }
    if seen != expected_matrix:
        fail(f"matrix coverage mismatch: missing {sorted(expected_matrix - seen)}, "
             f"extra {sorted(seen - expected_matrix)}")
    if set(per_scenario) != set(bounds):
        fail(f"scenarios {sorted(per_scenario)} != bounded {sorted(bounds)}")

    # The gates: lower-is-better quantities against max bounds, PSNR
    # against its min bound, each with its drift vs committed baseline.
    for name in sorted(per_scenario):
        agg, b = per_scenario[name], bounds[name]
        base = b["baseline"]
        checks = [
            ("psnr_min_mdb", agg["psnr_min_mdb"], b["psnr_min_mdb"], "min", "mdB"),
            ("energy_max_uj", agg["energy_max_uj"], b["energy_max_uj"], "max", "uJ"),
            ("brier_max_e9", agg["brier_max_e9"], b["brier_max_e9"], "max", "/1e9"),
            ("heal_mean_max", agg["heal_mean_max"], b["heal_mean_max"], "max", "frames"),
        ]
        for key, observed, bound, kind, unit in checks:
            trend = drift(observed, base[key])
            print(f"{name}: {key} = {observed:.0f} {unit} "
                  f"(bound {kind} {bound}, drift vs baseline {trend})")
            if kind == "min" and observed < bound:
                fail(f"{name}: {key} {observed} below committed floor {bound}")
            if kind == "max" and observed > bound:
                fail(f"{name}: {key} {observed} above committed ceiling {bound}")

    print(f"scenarios OK: {len(cells)} cells, "
          f"{len(per_scenario)} scenarios within committed bounds")


def main_fec(report_path, bounds_path):
    with open(report_path) as f:
        doc = json.load(f)
    with open(bounds_path) as f:
        fec = json.load(f)["fec"]
    cell_bounds = fec["cells"]

    if set(doc) != {"frames", "sessions", "cells"}:
        fail(f"fec top-level keys {sorted(doc)}")
    cells = doc["cells"]
    if len(cells) != EXPECTED_FEC_CELLS:
        fail(f"{len(cells)} fec cells != {EXPECTED_FEC_CELLS}")

    seen = set()
    by_key = {}
    for c in cells:
        if set(c) != set(FEC_CELL_FIELDS):
            fail(f"fec cell keys {sorted(c)} != {sorted(FEC_CELL_FIELDS)}")
        key = f"{c['channel']}/{c['arm']}"
        for field, ty in FEC_CELL_FIELDS.items():
            if not isinstance(c[field], ty):
                fail(f"{key}: {field} is {type(c[field]).__name__}")
        if c["psnr_mdb"] == 0:
            fail(f"{key}: zero PSNR")
        if c["digest"] == "0" * 16:
            fail(f"{key}: zero digest")
        if c["arm"] == "none":
            if c["parity_bytes"] != 0 or c["fec_uj"] != 0 or c["codec"]:
                fail(f"{key}: unprotected arm carries FEC state")
        else:
            if c["parity_bytes"] == 0 or c["fec_uj"] == 0 or not c["codec"]:
                fail(f"{key}: protected arm sent no parity or charged no energy")
            if c["overhead_ppm"] > fec["overhead_ppm_max"]:
                fail(f"{key}: overhead {c['overhead_ppm']} ppm above "
                     f"committed wire-budget ceiling {fec['overhead_ppm_max']}")
        seen.add((c["channel"], c["arm"]))
        by_key[key] = c

    expected_matrix = {
        (ch, arm) for ch in EXPECTED_FEC_CHANNELS for arm in EXPECTED_FEC_ARMS
    }
    if seen != expected_matrix:
        fail(f"fec matrix coverage mismatch: missing {sorted(expected_matrix - seen)}, "
             f"extra {sorted(seen - expected_matrix)}")
    if set(by_key) != set(cell_bounds):
        fail(f"fec cells {sorted(by_key)} != bounded {sorted(cell_bounds)}")

    # Per-cell gates: residual loss and FEC energy against ceilings,
    # PSNR against its floor, each with drift vs committed baseline.
    for key in sorted(by_key):
        c, b = by_key[key], cell_bounds[key]
        base = b["baseline"]
        checks = [
            ("residual_ppm", c["residual_ppm"], b["residual_ppm_max"], "max", "ppm"),
            ("psnr_mdb", c["psnr_mdb"], b["psnr_min_mdb"], "min", "mdB"),
            ("fec_uj", c["fec_uj"], b["fec_uj_max"], "max", "uJ"),
        ]
        for field, observed, bound, kind, unit in checks:
            trend = drift(observed, base[field])
            print(f"{key}: {field} = {observed} {unit} "
                  f"(bound {kind} {bound}, drift vs baseline {trend})")
            if kind == "min" and observed < bound:
                fail(f"{key}: {field} {observed} below committed floor {bound}")
            if kind == "max" and observed > bound:
                fail(f"{key}: {field} {observed} above committed ceiling {bound}")

    # The headline claim the matrix exists to demonstrate: adaptive
    # multi-erasure codecs beat fixed single-erasure XOR on residual
    # frame loss under the committed burst channel at equal wire budget.
    gate = fec["burst_gate"]
    ref = by_key[f"{gate['channel']}/{gate['reference_arm']}"]
    ref_residual = ref["frames_lost"] + ref["frames_damaged"]
    for arm in gate["better_arms"]:
        c = by_key[f"{gate['channel']}/{arm}"]
        residual = c["frames_lost"] + c["frames_damaged"]
        print(f"{gate['channel']}: {arm} residual {residual} frames "
              f"vs {gate['reference_arm']} {ref_residual}")
        if residual >= ref_residual:
            fail(f"{gate['channel']}: {arm} residual loss {residual} must beat "
                 f"{gate['reference_arm']} {ref_residual}")

    print(f"fec OK: {len(cells)} cells within committed bounds, "
          f"burst gate holds for {', '.join(gate['better_arms'])}")


EXPECTED_RDE_ARMS = {
    "pbpair", "rde-zero",
    "rde-r12", "rde-r20",
    "rde-e4", "rde-e8",
    "rde-r16-e4",
}
RDE_CELL_FIELDS = {
    "arm": str,
    "lambda1_q16": int,
    "lambda2_q16": int,
    "digest": str,
    "frames": int,
    "frames_lost": int,
    "frames_damaged": int,
    "psnr_mdb": int,
    "encode_uj": int,
    "sent_bytes": int,
    "on_front": int,
}


def rde_dominates(a, b):
    """Weak Pareto dominance: energy and bytes down, quality up."""
    no_worse = (a["encode_uj"] <= b["encode_uj"]
                and a["sent_bytes"] <= b["sent_bytes"]
                and a["psnr_mdb"] >= b["psnr_mdb"])
    better = (a["encode_uj"] < b["encode_uj"]
              or a["sent_bytes"] < b["sent_bytes"]
              or a["psnr_mdb"] > b["psnr_mdb"])
    return no_worse and better


def main_rde(report_path, bounds_path):
    with open(report_path) as f:
        doc = json.load(f)
    with open(bounds_path) as f:
        bounds = json.load(f)
    arm_bounds = bounds["arms"]

    if set(doc) != {"frames", "sessions", "cells"}:
        fail(f"rde top-level keys {sorted(doc)}")
    cells = doc["cells"]
    if len(cells) != len(EXPECTED_RDE_ARMS):
        fail(f"{len(cells)} rde arms != {len(EXPECTED_RDE_ARMS)}")

    by_arm = {}
    for c in cells:
        if set(c) != set(RDE_CELL_FIELDS):
            fail(f"rde cell keys {sorted(c)} != {sorted(RDE_CELL_FIELDS)}")
        for field, ty in RDE_CELL_FIELDS.items():
            if not isinstance(c[field], ty):
                fail(f"{c['arm']}: {field} is {type(c[field]).__name__}")
        if c["psnr_mdb"] == 0:
            fail(f"{c['arm']}: zero PSNR")
        if c["digest"] == "0" * 16:
            fail(f"{c['arm']}: zero digest")
        by_arm[c["arm"]] = c

    if set(by_arm) != EXPECTED_RDE_ARMS:
        fail(f"rde arms {sorted(by_arm)} != {sorted(EXPECTED_RDE_ARMS)}")
    if set(by_arm) != set(arm_bounds):
        fail(f"rde arms {sorted(by_arm)} != bounded {sorted(arm_bounds)}")

    # The inert gate: the controller at zero lambda must be invisible.
    base, zero = by_arm["pbpair"], by_arm["rde-zero"]
    if (base["lambda1_q16"], base["lambda2_q16"]) != (0, 0):
        fail("pbpair baseline carries nonzero lambda weights")
    if (zero["lambda1_q16"], zero["lambda2_q16"]) != (0, 0):
        fail("rde-zero gate carries nonzero lambda weights")
    if zero["digest"] != base["digest"]:
        fail(f"zero-lambda digest {zero['digest']} != pbpair {base['digest']}")
    print(f"rde zero gate: digest {zero['digest']} identical to baseline")

    # The Pareto front, recomputed from the reported metrics: the
    # report's flags must agree, and membership must match the
    # committed front exactly (the sweep is deterministic).
    for c in cells:
        dominated = any(rde_dominates(o, c) for o in cells)
        if bool(c["on_front"]) == dominated:
            fail(f"{c['arm']}: on_front={c['on_front']} contradicts "
                 f"recomputed dominance")
    observed_front = sorted(c["arm"] for c in cells if c["on_front"])
    committed_front = sorted(bounds["front"])
    if observed_front != committed_front:
        fail(f"Pareto front {observed_front} != committed {committed_front}")
    print(f"rde front: {', '.join(observed_front)}")

    # The headline claims: the front weakly dominates pure PBPAIR at
    # equal energy, and the energy price strictly cuts encode cost
    # somewhere on the plane.
    witnesses = [c["arm"] for c in cells if c["on_front"]
                 and c["encode_uj"] <= base["encode_uj"]
                 and c["psnr_mdb"] >= base["psnr_mdb"]]
    if not witnesses:
        fail("no front arm weakly dominates pure PBPAIR at equal energy")
    print(f"rde dominance: {', '.join(witnesses)} weakly dominate pbpair "
          f"({base['encode_uj']} uJ, {base['psnr_mdb']} mdB)")
    savers = [c["arm"] for c in cells
              if c["lambda2_q16"] > 0 and c["encode_uj"] < base["encode_uj"]]
    if not savers:
        fail("no energy-priced arm encoded cheaper than baseline")

    # Per-arm gates: PSNR floor and encode-energy ceiling with drift.
    for arm in sorted(by_arm):
        c, b = by_arm[arm], arm_bounds[arm]
        base_b = b["baseline"]
        checks = [
            ("psnr_mdb", c["psnr_mdb"], b["psnr_min_mdb"], "min", "mdB"),
            ("encode_uj", c["encode_uj"], b["encode_uj_max"], "max", "uJ"),
        ]
        for field, observed, bound, kind, unit in checks:
            trend = drift(observed, base_b[field])
            print(f"{arm}: {field} = {observed} {unit} "
                  f"(bound {kind} {bound}, drift vs baseline {trend})")
            if kind == "min" and observed < bound:
                fail(f"{arm}: {field} {observed} below committed floor {bound}")
            if kind == "max" and observed > bound:
                fail(f"{arm}: {field} {observed} above committed ceiling {bound}")

    print(f"rde OK: {len(cells)} arms within committed bounds, zero gate "
          f"holds, front dominates pure PBPAIR")


EXPECTED_DASHBOARD_SCENARIOS = EXPECTED_SCENARIOS | {"burst_kill"}
DASHBOARD_CELL_FIELDS = {
    "scenario": str,
    "alerts": dict,
    "slo_dumps": int,
    "slo_transitions": int,
    "impaired": int,
    "recovered": int,
}


def main_dashboard(report_path, bounds_path):
    with open(report_path) as f:
        doc = json.load(f)
    with open(bounds_path) as f:
        bounds = json.load(f)["dashboard"]["scenarios"]

    if set(doc) != {"frames", "sessions", "cells"}:
        fail(f"dashboard top-level keys {sorted(doc)}")
    cells = doc["cells"]
    if len(cells) != len(EXPECTED_DASHBOARD_SCENARIOS):
        fail(f"{len(cells)} dashboard cells != {len(EXPECTED_DASHBOARD_SCENARIOS)}")

    by_name = {}
    for c in cells:
        if set(c) != set(DASHBOARD_CELL_FIELDS):
            fail(f"dashboard cell keys {sorted(c)} != {sorted(DASHBOARD_CELL_FIELDS)}")
        for field, ty in DASHBOARD_CELL_FIELDS.items():
            if not isinstance(c[field], ty):
                fail(f"{c['scenario']}: {field} is {type(c[field]).__name__}")
        for slo, tally in c["alerts"].items():
            if set(tally) != {"fired", "cleared"} or not all(
                    isinstance(v, int) for v in tally.values()):
                fail(f"{c['scenario']}: malformed alert tally for {slo}: {tally}")
        by_name[c["scenario"]] = c

    if set(by_name) != EXPECTED_DASHBOARD_SCENARIOS:
        fail(f"dashboard scenarios {sorted(by_name)} != "
             f"{sorted(EXPECTED_DASHBOARD_SCENARIOS)}")
    if set(by_name) != set(bounds):
        fail(f"dashboard scenarios {sorted(by_name)} != bounded {sorted(bounds)}")

    for name in sorted(by_name):
        c, b = by_name[name], bounds[name]
        base = b["baseline"]
        fired = sum(t["fired"] for t in c["alerts"].values())
        trend = drift(fired, base["fired"])
        print(f"{name}: fired = {fired} "
              f"(band [{b['fired_min']}, {b['fired_max']}], "
              f"drift vs baseline {trend}); "
              f"slo_dumps = {c['slo_dumps']}, "
              f"slo_transitions = {c['slo_transitions']}")
        if fired < b["fired_min"]:
            fail(f"{name}: {fired} firing transitions below committed "
                 f"floor {b['fired_min']}")
        if fired > b["fired_max"]:
            fail(f"{name}: {fired} firing transitions above committed "
                 f"ceiling {b['fired_max']}")
        if "residual_loss_fired_min" in b:
            got = c["alerts"].get("residual_loss", {}).get("fired", 0)
            if got < b["residual_loss_fired_min"]:
                fail(f"{name}: residual_loss fired {got} times, committed "
                     f"floor {b['residual_loss_fired_min']}")
        if "slo_dumps_min" in b and c["slo_dumps"] < b["slo_dumps_min"]:
            fail(f"{name}: {c['slo_dumps']} flight-recorder dumps below "
                 f"committed floor {b['slo_dumps_min']}")
        if ("slo_transitions_min" in b
                and c["slo_transitions"] < b["slo_transitions_min"]):
            fail(f"{name}: {c['slo_transitions']} ledger transitions below "
                 f"committed floor {b['slo_transitions_min']}")

    print(f"dashboard OK: {len(cells)} scenarios within committed alert bounds; "
          f"burst_kill drives the full metric -> alert -> ledger -> trace chain")


if __name__ == "__main__":
    args = sys.argv[1:]
    fec_mode = "--fec" in args
    dashboard_mode = "--dashboard" in args
    rde_mode = "--rde" in args
    args = [a for a in args if a not in ("--fec", "--dashboard", "--rde")]
    if fec_mode + dashboard_mode + rde_mode > 1:
        fail("pick one of --fec / --dashboard / --rde")
    if len(args) not in (1, 2):
        fail("usage: validate_scenarios.py [--fec|--dashboard|--rde] "
             "<report.json> [<bounds.json>]")
    entry = (main_fec if fec_mode
             else main_dashboard if dashboard_mode
             else main_rde if rde_mode
             else main)
    default_bounds = "ci/rde_bounds.json" if rde_mode else "ci/scenario_bounds.json"
    entry(args[0], args[1] if len(args) == 2 else default_bounds)
