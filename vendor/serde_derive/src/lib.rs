//! No-op `#[derive(Serialize, Deserialize)]` macros for the offline
//! serde stand-in. The stub `serde` crate blanket-implements its marker
//! traits, so the derives only need to exist (and accept `#[serde(...)]`
//! attributes) — they emit nothing.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
