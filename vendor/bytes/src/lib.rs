//! Offline stand-in for the subset of the crates.io `bytes` API this
//! workspace uses: a cheaply-cloneable, immutable byte buffer backed by
//! `Arc<[u8]>`. Slicing copies instead of ref-counting a window — fine at
//! the packet sizes this simulator moves around.

use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

/// Cheaply-cloneable immutable byte buffer.
#[derive(Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
        }
    }

    /// Wraps a static slice (copied; the real crate borrows, but the
    /// observable behaviour is identical for immutable data).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            data: Arc::from(bytes),
        }
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::from(data),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Returns a new buffer holding the given sub-range.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.data.len(),
        };
        assert!(start <= end && end <= self.data.len(), "slice out of range");
        Bytes {
            data: Arc::from(&self.data[start..end]),
        }
    }

    /// Copies the contents into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes {
            data: Arc::from(v.into_boxed_slice()),
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl<const N: usize> From<[u8; N]> for Bytes {
    fn from(v: [u8; N]) -> Self {
        Bytes::copy_from_slice(&v)
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(v: Box<[u8]>) -> Self {
        Bytes { data: Arc::from(v) }
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self.data[..] == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        &self.data[..] == other.as_slice()
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        &self.data[..] == *other
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.data.len())
    }
}

#[cfg(test)]
mod tests {
    use super::Bytes;

    #[test]
    fn round_trips_and_slices() {
        let b = Bytes::copy_from_slice(&[1, 2, 3, 4, 5]);
        assert_eq!(b.len(), 5);
        assert_eq!(&b[..], &[1, 2, 3, 4, 5]);
        assert_eq!(&b.slice(1..4)[..], &[2, 3, 4]);
        assert_eq!(&b.slice(..)[..], &[1, 2, 3, 4, 5]);
        assert_eq!(b.to_vec(), vec![1, 2, 3, 4, 5]);
        let c = b.clone();
        assert_eq!(b, c);
    }

    #[test]
    #[should_panic(expected = "slice out of range")]
    fn slice_oob_panics() {
        Bytes::copy_from_slice(&[1, 2]).slice(0..3);
    }
}
