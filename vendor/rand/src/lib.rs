//! Offline stand-in for the subset of the crates.io `rand` 0.8 API this
//! workspace uses. The build environment has no network access to the
//! registry, so the workspace vendors a small, deterministic, seedable
//! generator with the same call surface (`StdRng`, `Rng::gen`,
//! `SeedableRng::seed_from_u64`, …). It is NOT a drop-in statistical or
//! stream-compatible replacement for the real crate — only the API shape
//! and "good enough for simulation" statistical quality are preserved.
//!
//! The generator is xoshiro256++ seeded via SplitMix64 — the exact
//! construction its authors recommend — so sequences are deterministic
//! per seed and pass the statistical checks the simulator's tests make
//! (loss rates within fractions of a percent over 10^5 draws).

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

mod sample {
    /// Types an [`super::Rng`] can produce via `gen::<T>()`.
    pub trait SampleUniform: Sized {
        /// Draws one value of `Self` from the full (or unit, for floats)
        /// range.
        fn sample<R: super::RngCore + ?Sized>(rng: &mut R) -> Self;
    }

    macro_rules! impl_int_sample {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample<R: super::RngCore + ?Sized>(rng: &mut R) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_int_sample!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl SampleUniform for u128 {
        fn sample<R: super::RngCore + ?Sized>(rng: &mut R) -> Self {
            ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
        }
    }

    impl SampleUniform for bool {
        fn sample<R: super::RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl SampleUniform for f64 {
        /// Uniform in `[0, 1)` with 53 bits of precision.
        fn sample<R: super::RngCore + ?Sized>(rng: &mut R) -> Self {
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl SampleUniform for f32 {
        /// Uniform in `[0, 1)` with 24 bits of precision.
        fn sample<R: super::RngCore + ?Sized>(rng: &mut R) -> Self {
            (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }
}

pub use sample::SampleUniform;

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value inside the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}
impl_int_range!(u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
                i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = <f64 as sample::SampleUniform>::sample(rng);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        let unit = <f64 as sample::SampleUniform>::sample(rng);
        lo + unit * (hi - lo)
    }
}

/// The user-facing convenience layer, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of `T` (full-range integers, unit-interval floats).
    fn gen<T: SampleUniform>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0,1]");
        self.gen::<f64>() < p
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++, seeded through SplitMix64 — deterministic, fast, and
    /// statistically solid for simulation workloads.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64_pub(), b.next_u64_pub());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64_pub(), c.next_u64_pub());
    }

    impl StdRng {
        fn next_u64_pub(&mut self) -> u64 {
            use super::RngCore;
            self.next_u64()
        }
    }

    #[test]
    fn unit_floats_are_uniform_enough() {
        let mut r = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        for _ in 0..1000 {
            let v: f64 = r.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = r.gen_range(3u32..10);
            assert!((3..10).contains(&v));
            let w = r.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(11);
        let hits = (0..50_000).filter(|_| r.gen_bool(0.3)).count() as f64 / 50_000.0;
        assert!((hits - 0.3).abs() < 0.01, "rate {hits}");
    }
}
