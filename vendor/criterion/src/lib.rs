//! Offline stand-in for the subset of the `criterion` benchmarking API
//! this workspace's benches use. It runs each benchmark closure for a
//! small fixed number of iterations, times them with `std::time`, and
//! prints mean per-iteration wall time — enough to exercise the bench
//! code paths and give rough numbers without the real crate's
//! statistics, warm-up, or plotting.

use std::time::Instant;

/// Prevents the optimizer from deleting a value or the work producing it.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Per-benchmark timing driver handed to `bench_function` closures.
pub struct Bencher {
    iters: u64,
    /// Mean wall time per iteration, in nanoseconds, filled by `iter`.
    mean_ns: f64,
}

impl Bencher {
    /// Times `routine` over a fixed number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed call to pay lazy-init costs before measuring.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / self.iters as f64;
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Top-level benchmark harness handle.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the per-benchmark iteration count (the real crate's sample
    /// count doubles as our iteration count).
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl AsRef<str>,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            iters: self.sample_size as u64,
            mean_ns: 0.0,
        };
        f(&mut b);
        println!(
            "bench {:<40} {:>12}/iter ({} iters)",
            id.as_ref(),
            format_ns(b.mean_ns),
            b.iters
        );
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl AsRef<str>) -> BenchmarkGroup<'_> {
        println!("group {}", name.as_ref());
        BenchmarkGroup {
            parent: self,
            sample_size: None,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the iteration count for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = Some(n);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl AsRef<str>,
        mut f: F,
    ) -> &mut Self {
        let iters = self.sample_size.unwrap_or(self.parent.sample_size) as u64;
        let mut b = Bencher {
            iters,
            mean_ns: 0.0,
        };
        f(&mut b);
        println!(
            "  {:<38} {:>12}/iter ({} iters)",
            id.as_ref(),
            format_ns(b.mean_ns),
            b.iters
        );
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring both criterion forms:
/// `criterion_group!(name, target, ...)` and
/// `criterion_group! { name = n; config = expr; targets = t, ... }`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench entry point running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
