//! Offline mini property-testing framework exposing the subset of the
//! `proptest` API this workspace's tests use: `proptest!` with an
//! optional `#![proptest_config(...)]` header, `any::<T>()`, numeric
//! range strategies, tuple strategies, `prop::collection::{vec,
//! btree_set}`, `prop::sample::select`, `Just`, `.prop_map`, and the
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!` macros.
//!
//! Unlike the real crate there is **no shrinking** and no persistence of
//! regression seeds: cases are generated from a deterministic per-test
//! seed sequence, so failures reproduce across runs but minimal
//! counterexamples are not searched for. Good enough to keep the
//! property suites running in an environment with no registry access.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Why a single generated case did not succeed.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the whole test fails.
    Fail(String),
    /// The case was filtered out by `prop_assume!`; try another one.
    Reject(String),
}

impl TestCaseError {
    /// Builds a failing-case error.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejected-case (assume) error.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Result of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration; only the case count is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Configuration requiring `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of values of type `Value`.
pub trait Strategy {
    /// The type this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Types with a whole-domain default strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_via_gen {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen::<$t>()
            }
        }
    )*};
}
impl_arbitrary_via_gen!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f32, f64);

/// Strategy produced by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Collection strategies (`prop::collection::*`).
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;

    /// Inclusive size bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty collection size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.lo..=self.hi)
        }
    }

    /// Strategy for `Vec<T>` of element strategy `S`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with sizes drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<T>` of element strategy `S`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `BTreeSet` strategy with target sizes drawn from `size`. If the
    /// element domain is too small to reach the target cardinality the
    /// set is returned at whatever size was reached.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let target = self.size.pick(rng);
            let mut set = std::collections::BTreeSet::new();
            let mut attempts = 0usize;
            while set.len() < target && attempts < target * 20 + 100 {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }
}

/// Sampling strategies (`prop::sample::*`).
pub mod sample {
    use super::{StdRng, Strategy};
    use rand::Rng;

    /// Strategy drawing uniformly from a fixed list.
    pub struct Select<T: Clone> {
        items: Vec<T>,
    }

    /// Uniform choice among `items` (must be non-empty).
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select requires at least one item");
        Select { items }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            self.items[rng.gen_range(0..self.items.len())].clone()
        }
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_0000_01b3);
    }
    h
}

/// Drives one property test: keeps generating cases until `config.cases`
/// succeed, panicking on the first failure. Called by the `proptest!`
/// macro expansion, not directly by user code.
pub fn run_proptest<F>(config: ProptestConfig, test_name: &str, mut f: F)
where
    F: FnMut(&mut StdRng) -> TestCaseResult,
{
    let base = fnv1a(test_name);
    let mut successes = 0u32;
    let mut rejects = 0u64;
    let max_rejects = config.cases as u64 * 20 + 1000;
    let mut case = 0u64;
    while successes < config.cases {
        let seed = base.wrapping_add(case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut rng = StdRng::seed_from_u64(seed);
        case += 1;
        match f(&mut rng) {
            Ok(()) => successes += 1,
            Err(TestCaseError::Reject(_)) => {
                rejects += 1;
                assert!(
                    rejects <= max_rejects,
                    "proptest '{test_name}': too many rejected cases ({rejects})"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest '{test_name}' failed at case {case} (seed {seed:#x}): {msg}")
            }
        }
    }
}

/// Declares property tests. Matches the real crate's surface forms:
/// an optional `#![proptest_config(expr)]` header followed by
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::run_proptest($cfg, stringify!($name), |__proptest_rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), __proptest_rng);)+
                $body
                ::std::result::Result::Ok(())
            });
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless both sides compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Fails the current case if both sides compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left
            )));
        }
    }};
}

/// Discards the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ranges_and_tuples((a, b) in (0u32..10, -4i16..=4), v in prop::collection::vec(any::<u8>(), 0..20)) {
            prop_assert!(a < 10);
            prop_assert!((-4..=4).contains(&b));
            prop_assert!(v.len() < 20);
        }

        #[test]
        fn assume_filters(x in 0u8..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn map_and_select(
            m in (0u8..10).prop_map(|x| x as u32 * 3),
            s in prop::sample::select(vec![1u8, 5, 9]),
            t in prop::collection::btree_set(0u64..50, 0..10)
        ) {
            prop_assert!(m % 3 == 0 && m < 30);
            prop_assert!([1u8, 5, 9].contains(&s));
            prop_assert!(t.len() < 10);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic() {
        crate::run_proptest(ProptestConfig::with_cases(4), "failures_panic", |_rng| {
            Err(TestCaseError::fail("boom"))
        });
    }
}
