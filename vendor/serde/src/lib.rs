//! Offline no-op stand-in for `serde`. The workspace derives
//! `Serialize`/`Deserialize` on result/report types for downstream JSON
//! export, but nothing in-tree actually serializes (there is no
//! serde_json here). These marker traits keep the derive attributes and
//! trait bounds compiling without the real crate. Swapping the real
//! serde back in requires only restoring the registry dependency.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de>: Sized {}

/// Marker trait standing in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

impl<T: ?Sized> Serialize for T {}
impl<'de, T> Deserialize<'de> for T {}

/// `serde::de` namespace subset.
pub mod de {
    pub use super::{Deserialize, DeserializeOwned};
}

/// `serde::ser` namespace subset.
pub mod ser {
    pub use super::Serialize;
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
