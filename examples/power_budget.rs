//! Stretching a battery across a recording session.
//!
//! The paper's §3.2 power-awareness scenario: a handheld with a fixed
//! residual energy budget must keep encoding until the end of a session,
//! maximizing error resilience *within* the budget. The
//! [`EnergyBudgetController`] walks `Intra_Th` against the measured
//! per-frame total energy (encoding + radio): more intra macroblocks cut
//! motion-estimation energy but inflate the bitstream and hence radio
//! energy, so the controller settles where the budget balances.
//!
//! Run with: `cargo run --release --example power_budget`

use pbpair_repro::codec::{Encoder, EncoderConfig};
use pbpair_repro::energy::{Battery, EnergyModel, Joules, IPAQ_H5555};
use pbpair_repro::media::synth::SyntheticSequence;
use pbpair_repro::media::VideoFormat;
use pbpair_repro::schemes::adapt::EnergyBudgetController;
use pbpair_repro::schemes::{PbpairConfig, PbpairPolicy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const FRAMES: usize = 240;
    // A deliberately tight budget: a static Intra_Th = 0.9 configuration
    // burns ~1.1 J over this session, so the controller must raise the
    // threshold (more intra, less motion estimation) to finish.
    let battery_capacity = Joules(0.9);

    let mut policy = PbpairPolicy::new(
        VideoFormat::QCIF,
        PbpairConfig {
            intra_th: 0.9,
            plr: 0.10,
            ..PbpairConfig::default()
        },
    )?;
    let mut encoder = Encoder::new(EncoderConfig::default());
    let mut clip = SyntheticSequence::foreman_class(9);
    let model = EnergyModel::new(IPAQ_H5555);
    let mut battery = Battery::new(battery_capacity);

    // Controller: user prefers Intra_Th = 0.85 (best compression at the
    // quality target); the controller raises it only when the rolling
    // per-frame budget is exceeded. The budget is re-derived every frame
    // by spreading the remaining charge over the remaining frames.
    let mut controller = EnergyBudgetController::new(
        battery.per_frame_budget(FRAMES as u64).unwrap().get(),
        0.85,
        0.01,
    );

    println!("frame | Intra_Th  frame energy (mJ)  battery left (%)");
    println!("------+-----------------------------------------------");
    let mut encoded_frames = 0usize;
    for f in 0..FRAMES {
        if battery.is_empty() {
            break;
        }
        policy.set_intra_th(controller.intra_th());
        let original = clip.next_frame();
        let before = *encoder.ops();
        let _encoded = encoder.encode_frame(&original, &mut policy);
        // Per-frame cost = delta of the cumulative counters.
        let delta = *encoder.ops() - before;
        let frame_energy = model.total_energy(&delta);
        battery.drain(frame_energy);
        encoded_frames += 1;

        // Re-target the controller to the *remaining* per-frame budget so
        // early overspend tightens later frames.
        let frames_left = (FRAMES - f - 1).max(1) as u64;
        if let Some(budget) = battery.per_frame_budget(frames_left) {
            controller.set_budget(budget.get());
        }
        controller.update(frame_energy.get());

        if f % 20 == 0 {
            println!(
                "{f:>5} | {:>8.3}  {:>17.3}  {:>15.1}",
                policy.intra_th(),
                frame_energy.millijoules(),
                battery.remaining_fraction() * 100.0
            );
        }
    }

    println!("\nsession result:");
    println!("  frames encoded : {encoded_frames} / {FRAMES}");
    println!("  battery left   : {}", battery.remaining());
    if encoded_frames == FRAMES {
        println!("  the controller stretched the budget across the whole session ✓");
    } else {
        println!("  battery exhausted early — tighten the initial threshold");
    }
    Ok(())
}
