//! Does the probability model track reality?
//!
//! PBPAIR's whole premise is that the encoder-side matrix `C^k` predicts
//! which decoder macroblocks are damaged. This example runs a lossy
//! session, then prints the encoder's *belief* (`1 − σ` as a heatmap)
//! next to the decoder's *actual* per-macroblock damage, and reports the
//! correlation between the two — the quantitative version of the paper's
//! Figure 3 intuition.
//!
//! Run with: `cargo run --release --example probability_map`

use pbpair_repro::codec::{Decoder, Encoder, EncoderConfig};
use pbpair_repro::media::metrics::{bad_pixel_map, render_mb_heatmap};
use pbpair_repro::media::synth::SyntheticSequence;
use pbpair_repro::media::VideoFormat;
use pbpair_repro::netsim::{LossModel, UniformLoss};
use pbpair_repro::schemes::{PbpairConfig, PbpairPolicy};

fn pearson(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len() as f64;
    let (ma, mb) = (a.iter().sum::<f64>() / n, b.iter().sum::<f64>() / n);
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (x, y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va == 0.0 || vb == 0.0 {
        0.0
    } else {
        cov / (va * vb).sqrt()
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const FRAMES: usize = 40;
    const PLR: f64 = 0.15;

    let mut policy = PbpairPolicy::new(
        VideoFormat::QCIF,
        PbpairConfig {
            intra_th: 0.55, // low threshold: let damage accumulate visibly
            plr: PLR,
            ..PbpairConfig::default()
        },
    )?;
    let mut encoder = Encoder::new(EncoderConfig::default());
    let mut decoder = Decoder::new(VideoFormat::QCIF);
    let mut loss = UniformLoss::new(PLR, 23);
    let mut seq = SyntheticSequence::foreman_class(2005);

    let mut last_belief = Vec::new();
    let mut last_truth = Vec::new();
    let mut all_belief = Vec::new();
    let mut all_truth = Vec::new();

    for f in 0..FRAMES {
        let original = seq.next_frame();
        let encoded = encoder.encode_frame(&original, &mut policy);
        let shown = if loss.next_lost() {
            decoder.conceal_lost_frame()
        } else {
            decoder.decode_frame(&encoded.data)?.0
        };

        // Encoder belief (1 − σ) vs measured damage (threshold 20).
        let belief: Vec<f64> = policy
            .matrix()
            .sigma_values()
            .iter()
            .map(|s| 1.0 - s)
            .collect();
        let truth = bad_pixel_map(&original, &shown, 20);
        if f >= 5 {
            all_belief.extend_from_slice(&belief);
            all_truth.extend_from_slice(&truth);
        }
        last_belief = belief;
        last_truth = truth;
    }

    // Normalize each map to its own maximum for display contrast.
    let normalize = |v: &[f64]| -> Vec<f64> {
        let max = v.iter().cloned().fold(0.0f64, f64::max);
        if max == 0.0 {
            v.to_vec()
        } else {
            v.iter().map(|x| x / max).collect()
        }
    };
    println!("frame {FRAMES} — encoder belief (1−σ)      vs      actual decoder damage");
    println!("(each map normalized to its own peak)\n");
    let left = render_mb_heatmap(&normalize(&last_belief), 11);
    let right = render_mb_heatmap(&normalize(&last_truth), 11);
    for (l, r) in left.lines().zip(right.lines()) {
        println!("   {l:<11}        {r}");
    }
    let mean_r = pearson(&all_belief, &all_truth);
    println!(
        "\npooled Pearson correlation, frames 5..{FRAMES} ({} MB samples): {mean_r:.3}",
        all_truth.len()
    );
    println!("(positive correlation = the probability model points toward the");
    println!(" macroblocks that are actually damaged. It is necessarily modest:");
    println!(" the encoder only knows the loss *rate*, never which frames were");
    println!(" actually lost — σ is a prior, not an observation. A blind sweep");
    println!(" like PGOP's has correlation 0 by construction.)");
    Ok(())
}
