//! Quickstart: encode a clip with PBPAIR, push it through a lossy
//! channel, decode with concealment, and report quality + energy.
//!
//! Run with: `cargo run --release --example quickstart`

use pbpair_repro::codec::{Decoder, Encoder, EncoderConfig};
use pbpair_repro::energy::{EnergyModel, IPAQ_H5555};
use pbpair_repro::media::metrics::QualityStats;
use pbpair_repro::media::synth::SyntheticSequence;
use pbpair_repro::media::VideoFormat;
use pbpair_repro::netsim::{LossyChannel, Packetizer, UniformLoss};
use pbpair_repro::schemes::{PbpairConfig, PbpairPolicy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const FRAMES: usize = 60;
    const PLR: f64 = 0.10;

    // 1. A deterministic "talking head" test clip (AKIYO-class, QCIF).
    let mut clip = SyntheticSequence::akiyo_class(42);

    // 2. The PBPAIR policy: refresh macroblocks whose probability of
    //    correctness drops below Intra_Th, given the expected loss rate.
    let mut policy = PbpairPolicy::new(
        VideoFormat::QCIF,
        PbpairConfig {
            intra_th: 0.93,
            plr: PLR,
            ..PbpairConfig::default()
        },
    )?;

    // 3. Codec + transport.
    let mut encoder = Encoder::new(EncoderConfig::default());
    let mut decoder = Decoder::new(VideoFormat::QCIF);
    let mut packetizer = Packetizer::default();
    let mut channel = LossyChannel::new(Box::new(UniformLoss::new(PLR, 7)));

    let mut quality = QualityStats::new();
    for _ in 0..FRAMES {
        let original = clip.next_frame();
        let encoded = encoder.encode_frame(&original, &mut policy);
        let packets = packetizer.packetize(encoded.index, &encoded.data);
        let shown = match channel.transmit_frame_atomic(&packets) {
            Some(bytes) => decoder.decode_frame(&bytes)?.0,
            None => decoder.conceal_lost_frame(), // copy-previous concealment
        };
        quality.record(&original, &shown);
    }

    // 4. Report.
    let ops = encoder.take_ops();
    let energy = EnergyModel::new(IPAQ_H5555).encoding_energy(&ops);
    println!("frames encoded        : {FRAMES}");
    println!("frames lost in transit: {}", channel.stats().frames_lost);
    println!("average PSNR          : {:.2} dB", quality.average_psnr());
    println!("bad pixels (total)    : {}", quality.total_bad_pixels());
    println!("encoded size          : {} KB", ops.bytes_emitted() / 1024);
    println!(
        "ME searches skipped   : {:.1}%",
        ops.me_skip_ratio() * 100.0
    );
    println!("encoding energy (iPAQ): {energy}");
    Ok(())
}
