//! A mobile video-conference segment over a bursty wireless channel.
//!
//! Models the paper's motivating scenario: a handheld device encoding a
//! moderate-motion talking head (FOREMAN-class) over an 802.11-like
//! channel with Gilbert–Elliott fading bursts. The receiver estimates the
//! loss rate over a sliding window and feeds it back; PBPAIR adopts the
//! estimate as its loss-rate assumption `α` (the §3.2 extension in
//! quality-priority mode), so robustness rises during fades and
//! compression recovers in calm periods.
//!
//! Run with: `cargo run --release --example lossy_conference`

use pbpair_repro::codec::{Decoder, Encoder, EncoderConfig};
use pbpair_repro::energy::{EnergyModel, IPAQ_H5555};
use pbpair_repro::media::metrics::{bad_pixels, psnr_y};
use pbpair_repro::media::synth::SyntheticSequence;
use pbpair_repro::media::VideoFormat;
use pbpair_repro::netsim::{GilbertElliott, LossyChannel, Packetizer, WindowPlrEstimator};
use pbpair_repro::schemes::{PbpairConfig, PbpairPolicy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const SECONDS: usize = 10;
    const FPS: usize = 15;

    let base = PbpairConfig {
        intra_th: 0.9,
        plr: 0.05,
        ..PbpairConfig::default()
    };
    let mut policy = PbpairPolicy::new(VideoFormat::QCIF, base)?;
    let mut encoder = Encoder::new(EncoderConfig::default());
    let mut decoder = Decoder::new(VideoFormat::QCIF);
    let mut packetizer = Packetizer::default();
    // Bursty channel: mostly clean, ~8 s⁻¹ chance of entering a fade with
    // 50% loss, mean fade length ~5 frames.
    let mut channel = LossyChannel::new(Box::new(GilbertElliott::new(0.04, 0.20, 0.01, 0.5, 11)));
    let mut clip = SyntheticSequence::foreman_class(2005);
    let mut estimator = WindowPlrEstimator::new(2 * FPS);

    println!("sec |  plr-est  Intra_Th  intra%  PSNR(dB)  bad-px  lost");
    println!("----+---------------------------------------------------");
    for sec in 0..SECONDS {
        let mut psnr_acc = 0.0;
        let mut bad_acc = 0u64;
        let mut intra_acc = 0.0;
        let lost_before = channel.stats().frames_lost;
        for _ in 0..FPS {
            // Feedback-driven adaptation (the §3.2 extension), in
            // quality-priority mode: the estimated loss rate becomes the
            // probability model's α, so during fades σ decays faster and
            // PBPAIR refreshes more aggressively. (The alternative,
            // bit-rate-priority mode, additionally lowers Intra_Th via
            // `adapt::compensated_intra_th` to hold the intra count.)
            if estimator.observations() >= FPS {
                policy.set_plr(estimator.estimate().clamp(0.0, 0.9));
            }
            let original = clip.next_frame();
            let encoded = encoder.encode_frame(&original, &mut policy);
            intra_acc += encoded.stats.intra_ratio();
            let packets = packetizer.packetize(encoded.index, &encoded.data);
            let shown = match channel.transmit_frame_atomic(&packets) {
                Some(bytes) => {
                    estimator.record(false);
                    decoder.decode_frame(&bytes)?.0
                }
                None => {
                    estimator.record(true);
                    decoder.conceal_lost_frame()
                }
            };
            psnr_acc += psnr_y(&original, &shown).min(99.0);
            bad_acc += bad_pixels(&original, &shown);
        }
        println!(
            "{sec:>3} |  {:>7.3}  {:>8.3}  {:>5.1}%  {:>8.2}  {:>6}  {:>4}",
            estimator.estimate(),
            policy.intra_th(),
            intra_acc / FPS as f64 * 100.0,
            psnr_acc / FPS as f64,
            bad_acc,
            channel.stats().frames_lost - lost_before,
        );
    }

    let ops = encoder.take_ops();
    let model = EnergyModel::new(IPAQ_H5555);
    println!("\ncall summary:");
    println!(
        "  channel loss     : {:.1}% of {} frames",
        channel.stats().frame_loss_ratio() * 100.0,
        SECONDS * FPS
    );
    println!("  encoding energy  : {}", model.encoding_energy(&ops));
    println!(
        "  radio energy     : {}",
        model.transmission_energy(ops.bits_emitted)
    );
    println!("  ME skip ratio    : {:.1}%", ops.me_skip_ratio() * 100.0);
    Ok(())
}
