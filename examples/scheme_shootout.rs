//! Compare every error-resilient coding scheme on one workload — a
//! miniature of the paper's Figure 5, runnable in seconds.
//!
//! Run with:
//! `cargo run --release --example scheme_shootout -- [akiyo|foreman|garden] [plr%]`

use pbpair_repro::codec::EncoderConfig;
use pbpair_repro::energy::{EnergyModel, IPAQ_H5555};
use pbpair_repro::eval::pipeline::{run, LossSpec, RunConfig, SequenceSpec};
use pbpair_repro::eval::report::{fmt_f, Table};
use pbpair_repro::media::synth::MotionClass;
use pbpair_repro::schemes::{PbpairConfig, SchemeSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let class = match args.next().as_deref() {
        Some("akiyo") => MotionClass::LowAkiyo,
        Some("garden") => MotionClass::HighGarden,
        _ => MotionClass::MediumForeman,
    };
    let plr: f64 = args
        .next()
        .and_then(|v| v.parse::<f64>().ok())
        .map(|p| (p / 100.0).clamp(0.0, 1.0))
        .unwrap_or(0.10);
    const FRAMES: usize = 90;

    let schemes = [
        SchemeSpec::No,
        SchemeSpec::Pbpair(PbpairConfig {
            intra_th: 0.93,
            plr,
            ..PbpairConfig::default()
        }),
        SchemeSpec::Pgop(3),
        SchemeSpec::Gop(3),
        SchemeSpec::Air(24),
    ];

    let model = EnergyModel::new(IPAQ_H5555);
    let mut table = Table::new(format!(
        "Scheme shootout: {} class, {FRAMES} frames, PLR {:.0}%",
        class.label(),
        plr * 100.0
    ));
    table.set_headers([
        "scheme",
        "PSNR (dB)",
        "bad pixels",
        "size (KB)",
        "energy (J)",
        "intra%",
        "ME skipped",
    ]);

    for scheme in schemes {
        let result = run(&RunConfig {
            scheme,
            sequence: SequenceSpec::Synthetic { class, seed: 2005 },
            frames: FRAMES,
            encoder: EncoderConfig::default(),
            loss: if plr == 0.0 {
                LossSpec::None
            } else {
                LossSpec::Uniform {
                    rate: plr,
                    seed: 77,
                }
            },
            mtu: 1400,
        })?;
        table.add_row([
            result.scheme_label.clone(),
            fmt_f(result.quality.average_psnr(), 2),
            result.quality.total_bad_pixels().to_string(),
            fmt_f(result.total_bytes as f64 / 1024.0, 1),
            fmt_f(result.encoding_energy(&model).get(), 3),
            fmt_f(result.mean_intra_ratio * 100.0, 1),
            format!("{:.1}%", result.ops.me_skip_ratio() * 100.0),
        ]);
    }
    println!("{table}");
    println!("(PBPAIR here uses a fixed Intra_Th; the fig5 binary size-calibrates it.)");
    Ok(())
}
